"""E5 — Table VI + Figure 7: parallel Eclat with bitvector.

(The paper's table numbering is inconsistent — the bitvector runtime table
is labelled "TABLE VI" while appearing between Tables III and V; we keep
the paper's label.)  Same layout and monotone-shape assertions as E4.

Benchmarked kernel: the 1024-thread replay of the chess trace.
"""

from conftest import emit, save_record

from repro.analysis import (
    render_runtime_table,
    render_speedup_series,
    speedup_chart,
)
from repro.parallel import runtime_table, simulate_eclat, speedup_series


def test_table4_fig7_eclat_bitvector(benchmark, studies):
    all_studies = studies.all_datasets("eclat", "bitvector")

    table = runtime_table(
        all_studies,
        "TABLE VI. RUNNING TIME FOR ECLAT WITH BITVECTOR (simulated seconds)",
    )
    series = speedup_series(all_studies)
    emit(
        "table4_fig7_eclat_bitvector",
        render_runtime_table(table)
        + "\n\n"
        + render_speedup_series(
            series, title="Figure 7. Scalability of Eclat with Bitvector"
        )
        + "\n\n"
        + speedup_chart(series, title="speedup curve"),
    )
    save_record("E5", "Eclat with bitvector", all_studies)

    for study in all_studies:
        ups = study.speedups()
        values = [ups[t] for t in study.thread_counts]
        for a, b in zip(values, values[1:]):
            assert b >= 0.80 * a, (study.label(), values)

    chess = next(s for s in all_studies if s.dataset == "chess")
    benchmark(simulate_eclat, chess.trace, 1024)
