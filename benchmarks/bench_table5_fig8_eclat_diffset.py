"""E6 — Table V + Figure 8: parallel Eclat with diffset.

Regenerates the runtime table and speedup series for Eclat over diffsets —
the configuration the paper calls Eclat's best.  Assertions: curves stay
monotone on the dense datasets, and diffset Eclat is the fastest Eclat in
absolute simulated time on chess (dense data, where the representation's
advantage is strongest).

Benchmarked kernel: the 1024-thread replay of the chess trace.
"""

from conftest import emit, save_record

from repro.analysis import (
    render_runtime_table,
    render_speedup_series,
    speedup_chart,
)
from repro.parallel import runtime_table, simulate_eclat, speedup_series


def test_table5_fig8_eclat_diffset(benchmark, studies):
    all_studies = studies.all_datasets("eclat", "diffset")

    table = runtime_table(
        all_studies,
        "TABLE V. RUNNING TIME FOR ECLAT WITH DIFFSET (simulated seconds)",
    )
    series = speedup_series(all_studies)
    emit(
        "table5_fig8_eclat_diffset",
        render_runtime_table(table)
        + "\n\n"
        + render_speedup_series(
            series, title="Figure 8. Scalability of Eclat with Diffset"
        )
        + "\n\n"
        + speedup_chart(series, title="speedup curve"),
    )
    save_record("E6", "Eclat with diffset", all_studies)

    # Dense datasets: monotone non-degrading curves.
    for study in all_studies:
        if study.dataset in ("chess", "mushroom"):
            ups = study.speedups()
            values = [ups[t] for t in study.thread_counts]
            for a, b in zip(values, values[1:]):
                assert b >= 0.80 * a, (study.label(), values)

    # Diffset is Eclat's fastest representation on dense chess, at every
    # thread count (the "best with diffset" conclusion, in absolute time).
    chess_diffset = next(s for s in all_studies if s.dataset == "chess")
    chess_tidset = studies.get("chess", "eclat", "tidset")
    for t in chess_diffset.thread_counts:
        assert chess_diffset.runtime(t) < chess_tidset.runtime(t)

    benchmark(simulate_eclat, chess_diffset.trace, 1024)
