"""E9 — Section V-A's memory claim, quantified.

"The size of tidset and bitvector is generally one order of magnitude
larger than the diffset's."  This bench measures, per generation of an
Apriori run on each dense dataset, the candidate-payload footprint of all
three representations and asserts the order-of-magnitude gap on the dense
sets.

Benchmarked kernel: one generation-footprint measurement over the chess
generation-1 payloads.
"""

from conftest import emit

from repro import paper
from repro.analysis import render_grid
from repro.engine import execute
from repro.datasets import get_dataset
from repro.parallel import AprioriTrace
from repro.representations import get_representation
from repro.representations.memory import measure_generation


def _per_generation_bytes(db, support, representation) -> dict[int, int]:
    trace = AprioriTrace()
    execute(db, algorithm="apriori", min_support=support,
            representation=representation, sink=trace)
    out = {1: int(trace.singletons.payload_bytes.sum())}
    for gen in trace.generations:
        out[gen.generation] = int(gen.payload_bytes.sum())
    return out


def test_ablation_memory_footprint(benchmark):
    rows = []
    ratios = {}
    for dataset in ("chess", "mushroom"):
        db = get_dataset(dataset)
        support = paper.PAPER_SUPPORTS[dataset]
        per_rep = {
            rep: _per_generation_bytes(db, support, rep)
            for rep in paper.REPRESENTATION_NAMES
        }
        generations = sorted(per_rep["tidset"])
        for gen in generations:
            rows.append(
                [f"{dataset} gen{gen}"]
                + [
                    f"{per_rep[rep].get(gen, 0) / 1024:.0f}K"
                    for rep in paper.REPRESENTATION_NAMES
                ]
            )
        total_tid = sum(per_rep["tidset"].values())
        total_dif = sum(per_rep["diffset"].values())
        ratios[dataset] = total_tid / max(total_dif, 1)
        rows.append(
            [f"{dataset} TOTAL"]
            + [
                f"{sum(per_rep[rep].values()) / 1024:.0f}K"
                for rep in paper.REPRESENTATION_NAMES
            ]
        )

    text = render_grid(
        ["generation"] + list(paper.REPRESENTATION_NAMES),
        rows,
        title=(
            "E9. Candidate payload bytes per Apriori generation "
            f"(tidset/diffset ratios: "
            + ", ".join(f"{k}={v:.0f}x" for k, v in ratios.items())
            + ")"
        ),
    )
    emit("e9_ablation_memory_footprint", text)

    # The order-of-magnitude claim holds on chess (the densest surrogate:
    # every generation's diffsets are ~12x smaller).  The mushroom
    # surrogate keeps a consistent but smaller stored-payload advantage
    # (its mid-support class items carry fat level-1/2 diffsets) — a
    # documented deviation recorded in EXPERIMENTS.md.
    assert ratios["chess"] >= 10
    assert ratios["mushroom"] >= 2

    chess = get_dataset("chess")
    rep = get_representation("tidset")
    singletons = rep.build_singletons(chess)
    benchmark(measure_generation, rep, singletons, 1)
