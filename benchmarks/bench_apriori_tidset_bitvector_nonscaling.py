"""E3 — Section V-A negative result: Apriori with tidset/bitvector stalls.

The paper reports that the tidset and bitvector implementations of Apriori
"did not show scalability beyond 16 threads, or one blade" and therefore
omits their tables.  This bench regenerates the evidence: runtime tables
for both representations plus a verdict line per curve, asserting that on
the census-scale datasets neither representation keeps scaling the way
diffset does (E2).

Benchmarked kernel: the 1024-thread replay of the pumsb tidset trace — the
most interconnect-stressed configuration in the suite.
"""

from conftest import emit, save_record

from repro.analysis import render_runtime_table, render_speedup_series
from repro.parallel import (
    runtime_table,
    scaling_verdict,
    simulate_apriori,
    speedup_series,
)


def test_apriori_tidset_bitvector_nonscaling(benchmark, studies):
    tidset = studies.all_datasets("apriori", "tidset")
    bitvector = studies.all_datasets("apriori", "bitvector")

    sections = []
    for label, group in [("TIDSET", tidset), ("BITVECTOR", bitvector)]:
        table = runtime_table(
            group, f"RUNNING TIME FOR APRIORI WITH {label} (simulated seconds)"
        )
        series = speedup_series(group)
        verdicts = "\n".join(
            f"  {s.label}: {scaling_verdict(s)}" for s in series
        )
        sections.append(
            render_runtime_table(table)
            + "\n\n"
            + render_speedup_series(
                series, title=f"Speedup of Apriori with {label}"
            )
            + "\nverdicts:\n"
            + verdicts
        )
    emit("e3_apriori_tidset_bitvector_nonscaling", "\n\n".join(sections))
    save_record("E3", "Apriori tidset/bitvector non-scaling", tidset + bitvector)

    # Paper shape, two forms of "not scalable beyond one blade":
    # (a) tidset plateaus on every dataset (its curve never grows well past
    #     the one-blade point);
    # (b) bitvector stalls on the census-scale rows (49,046 transactions =
    #     6.1 KB fixed-width payloads): pumsb plateaus outright and
    #     pumsb_star's curve has collapsed back to its one-blade level by
    #     1024 threads.  On the small-row datasets (chess: 400 B payloads)
    #     the bitvector is cache-resident and does scale in our model — a
    #     documented deviation from the paper's blanket statement (see
    #     EXPERIMENTS.md).
    for study in tidset:
        (series,) = speedup_series([study])
        assert scaling_verdict(series) in ("plateau", "degrades"), (
            study.label(),
            series.speedups,
        )
    pumsb_bitvector = next(s for s in bitvector if s.dataset == "pumsb")
    (series,) = speedup_series([pumsb_bitvector])
    assert scaling_verdict(series) in ("plateau", "degrades")
    star_bitvector = next(s for s in bitvector if s.dataset == "pumsb_star")
    ups = star_bitvector.speedups()
    assert ups[1024] <= 1.1 * ups[16], ups

    pumsb_tidset = next(s for s in tidset if s.dataset == "pumsb")
    benchmark(simulate_apriori, pumsb_tidset.trace, 1024)
