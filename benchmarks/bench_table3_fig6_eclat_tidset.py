"""E4 — Table III + Figure 6: parallel Eclat with tidset.

Regenerates the runtime table and speedup series for Eclat over tidsets.
Shape assertions encode Section V-B: every dataset's curve is monotone
non-decreasing (Eclat never loses ground as threads grow — its data is
task-private, so the interconnect cannot strangle it the way it does
Apriori).

Benchmarked kernel: the 1024-thread replay of the pumsb trace.
"""

from conftest import emit, save_record

from repro.analysis import (
    render_runtime_table,
    render_speedup_series,
    speedup_chart,
)
from repro.parallel import runtime_table, simulate_eclat, speedup_series


def _assert_monotone_non_degrading(study) -> None:
    ups = study.speedups()
    values = [ups[t] for t in study.thread_counts]
    for a, b in zip(values, values[1:]):
        assert b >= 0.80 * a, (study.label(), values)


def test_table3_fig6_eclat_tidset(benchmark, studies):
    all_studies = studies.all_datasets("eclat", "tidset")

    table = runtime_table(
        all_studies,
        "TABLE III. RUNNING TIME FOR ECLAT WITH TIDSET (simulated seconds)",
    )
    series = speedup_series(all_studies)
    emit(
        "table3_fig6_eclat_tidset",
        render_runtime_table(table)
        + "\n\n"
        + render_speedup_series(
            series, title="Figure 6. Scalability of Eclat with Tidset"
        )
        + "\n\n"
        + speedup_chart(series, title="speedup curve"),
    )
    save_record("E4", "Eclat with tidset", all_studies)

    for study in all_studies:
        _assert_monotone_non_degrading(study)

    pumsb = next(s for s in all_studies if s.dataset == "pumsb")
    benchmark(simulate_eclat, pumsb.trace, 1024)
