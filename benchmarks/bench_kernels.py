"""E10 — Wall-clock microbenchmarks of the real kernels.

Unlike E1-E9 (which report *simulated* Blacklight times), these timings are
real: the combine kernels of each representation on chess-scale operands,
and the three complete miners on the chess surrogate.  They document what
the pure-Python substrate actually costs and give pytest-benchmark
regression coverage over the hot paths.
"""

import numpy as np
import pytest

from repro import paper
from repro.core import apriori, eclat, fpgrowth
from repro.datasets import get_dataset
from repro.representations import get_representation


@pytest.fixture(scope="module")
def chess():
    return get_dataset("chess")


@pytest.fixture(scope="module")
def chess_support():
    return paper.PAPER_SUPPORTS["chess"]


@pytest.mark.parametrize("rep_name", ["tidset", "bitvector", "diffset"])
def test_combine_kernel(benchmark, chess, rep_name):
    rep = get_representation(rep_name)
    singletons = rep.build_singletons(chess)
    supports = np.array([v.support for v in singletons])
    dense = np.argsort(supports)[-2:]  # the two heaviest operands
    left, right = singletons[int(dense[0])], singletons[int(dense[1])]
    benchmark(rep.combine, left, right)


@pytest.mark.parametrize("rep_name", ["tidset", "bitvector", "diffset"])
def test_build_singletons(benchmark, chess, rep_name):
    rep = get_representation(rep_name)
    benchmark(rep.build_singletons, chess)


def test_miner_apriori_diffset(benchmark, chess, chess_support):
    result = benchmark(apriori, chess, chess_support, "diffset")
    assert len(result) > 100


def test_miner_eclat_diffset(benchmark, chess, chess_support):
    result = benchmark(eclat, chess, chess_support, "diffset")
    assert len(result) > 100


def test_miner_fpgrowth(benchmark, chess, chess_support):
    result = benchmark(fpgrowth, chess, chess_support)
    assert len(result) > 100
