"""E8 — Ablations on the paper's design choices.

Three knobs Sections III-IV fix by fiat are swept here on the chess
surrogate:

* Apriori's loop schedule (the paper: static) vs dynamic and guided;
* Eclat's task decomposition: the paper's depth-first top-level tasks vs
  the literal level-synchronous reading of Algorithm 2;
* base-data placement: serial-loader first touch (master blade) vs page
  interleaving — quantifying how much of Apriori-tidset's stall is the
  loader's NUMA placement.

Benchmarked kernel: the Apriori replay under the dynamic schedule (its
dispatch simulation is the most expensive path).
"""

from conftest import emit

from repro import paper
from repro.analysis import render_grid
from repro.datasets import get_dataset
from repro.openmp.schedule import ScheduleSpec
from repro.parallel import (
    run_scalability_study,
    simulate_apriori,
    simulate_eclat,
)

THREADS = [16, 128, 1024]


def test_ablation_scheduling_and_placement(benchmark):
    db = get_dataset("chess")
    support = paper.PAPER_SUPPORTS["chess"]

    base = run_scalability_study(
        db, "apriori", "tidset", support, thread_counts=[1] + THREADS
    )
    apriori_trace = base.trace
    eclat_trace = run_scalability_study(
        db, "eclat", "tidset", support, thread_counts=[1]
    ).trace

    rows = []

    # -- Apriori schedule sweep ------------------------------------------------
    for spec in (
        ScheduleSpec("static", 1),
        ScheduleSpec("static"),
        ScheduleSpec("dynamic", 8),
        ScheduleSpec("guided"),
    ):
        times = [
            simulate_apriori(apriori_trace, t, schedule=spec).total_seconds
            for t in THREADS
        ]
        rows.append([f"apriori {spec}"] + [f"{v * 1e3:.2f}" for v in times])

    # -- Apriori base placement -----------------------------------------------
    for placement in ("master", "interleaved"):
        times = [
            simulate_apriori(
                apriori_trace, t, base_placement=placement
            ).total_seconds
            for t in THREADS
        ]
        rows.append(
            [f"apriori placement={placement}"]
            + [f"{v * 1e3:.2f}" for v in times]
        )

    # -- Eclat task decomposition ------------------------------------------------
    toplevel, level = {}, {}
    for mode, store in (("toplevel", toplevel), ("level", level)):
        for t in THREADS:
            store[t] = simulate_eclat(eclat_trace, t, task_mode=mode).total_seconds
        rows.append(
            [f"eclat tasks={mode}"]
            + [f"{store[t] * 1e3:.2f}" for t in THREADS]
        )

    text = render_grid(
        ["configuration (chess)"] + [f"{t}T ms" for t in THREADS],
        rows,
        title="E8. Scheduling / placement / decomposition ablation",
    )
    emit("e8_ablation_scheduling", text)

    # Documented trade-off: the paper's top-level tasks are bounded by the
    # largest subtree (chess: ~12% of the work under one prefix), while the
    # level-synchronous decomposition exposes one task per frequent
    # d-itemset and wins on raw parallelism despite paying Apriori-style
    # interconnect traffic between levels.
    assert level[1024] < toplevel[1024], (level, toplevel)

    benchmark(
        simulate_apriori, apriori_trace, 1024, schedule=ScheduleSpec("dynamic", 8)
    )
