"""E12 — Extensions the paper leaves on the table.

Two ablations beyond the paper's configuration matrix:

* **Adaptive hybrid representation** (Zaki's dEclat switching): per
  candidate, store the smaller of tidset and diffset.  Measured on both a
  dense (chess) and a sparse (T10I4) dataset, the hybrid matches the best
  pure format on each — it is the dominant strategy the paper's pure-
  diffset choice approximates only on dense data.

* **Hyper-threading**: Section V states hyper-threading "does not improve
  our program performance".  Replaying the chess Apriori trace on an SMT
  variant of Blacklight (2 contexts/core, shared bandwidth) shows why: the
  counting loops are traffic-bound, and SMT adds contexts without adding
  bandwidth.

Benchmarked kernel: a hybrid-representation Eclat run on the T10I4 data.
"""

from conftest import emit

from repro import paper
from repro.analysis import render_grid
from repro.core import eclat
from repro.engine import execute
from repro.datasets import get_dataset
from repro.machine import BLACKLIGHT, smt_machine
from repro.parallel import run_scalability_study, simulate_apriori


def test_ablation_hybrid_and_smt(benchmark):
    rows = []

    # -- hybrid representation: read traffic per format x dataset ----------
    hybrid_wins = {}
    for name, support in (("chess", paper.PAPER_SUPPORTS["chess"]), ("T10I4", 0.02)):
        db = get_dataset(name)
        traffic = {}
        results = {}
        for rep in ("tidset", "diffset", "hybrid"):
            run = execute(db, algorithm="eclat", min_support=support,
                          representation=rep)
            traffic[rep] = run.total_cost.bytes_read
            results[rep] = run.result
        assert results["hybrid"].same_itemsets(results["tidset"])
        hybrid_wins[name] = traffic
        rows.append(
            [f"{name} read MB"]
            + [f"{traffic[r] / 1e6:.1f}" for r in ("tidset", "diffset", "hybrid")]
        )

    # -- SMT: chess Apriori trace on a hyper-threaded Blacklight -----------
    chess = get_dataset("chess")
    study = run_scalability_study(
        chess, "apriori", "tidset", paper.PAPER_SUPPORTS["chess"],
        thread_counts=[1, 16],
    )
    base16 = simulate_apriori(study.trace, 16, machine=BLACKLIGHT).total_seconds
    smt32 = simulate_apriori(
        study.trace, 32, machine=smt_machine(BLACKLIGHT)
    ).total_seconds
    rows.append(
        [
            "chess apriori ms",
            f"{base16 * 1e3:.2f} (16 threads)",
            f"{smt32 * 1e3:.2f} (32 SMT)",
            f"{base16 / smt32:.2f}x",
        ]
    )

    emit(
        "e12_ablation_hybrid_smt",
        render_grid(
            ["configuration", "tidset", "diffset", "hybrid"],
            rows,
            title="E12. Hybrid representation + SMT ablation",
        ),
    )

    # Hybrid is within 25% of the best pure format on BOTH regimes, while
    # each pure format loses an order of magnitude on its bad regime.
    for name, traffic in hybrid_wins.items():
        best_pure = min(traffic["tidset"], traffic["diffset"])
        worst_pure = max(traffic["tidset"], traffic["diffset"])
        assert traffic["hybrid"] <= 1.25 * best_pure, name
        assert worst_pure > 5 * best_pure, name

    # SMT's doubled contexts fail to improve the one-blade time materially
    # (the paper's observation).
    assert smt32 > 0.85 * base16

    benchmark(eclat, get_dataset("T10I4"), 0.02, "hybrid")
