"""E11 — Section II-B: "Vertical representation generally offers one order
of magnitude of performance gain since they reduce the volume of I/O
operations and avoid repetitive database scanning."

Measures horizontal (scan-based) Apriori against the vertical tidset
implementation on the chess surrogate: element operations, database scans,
and the shared-counter increments a parallel horizontal version would have
to lock.

Benchmarked kernel: one horizontal support-counting pass over the chess
generation-2 candidates.
"""

from conftest import emit

from repro import paper
from repro.analysis import render_grid
from repro.core import run_apriori_horizontal
from repro.engine import execute
from repro.core.candidate_gen import generate_candidates
from repro.datasets import get_dataset
from repro.representations import HorizontalCounter


def test_vertical_vs_horizontal(benchmark):
    db = get_dataset("chess")
    support = paper.PAPER_SUPPORTS["chess"]

    horizontal = run_apriori_horizontal(db, support)
    vertical = execute(db, algorithm="apriori", min_support=support,
                       representation="tidset")
    assert horizontal.result.same_itemsets(vertical.result)

    ratio = horizontal.total_cost.cpu_ops / vertical.total_cost.cpu_ops
    rows = [
        [
            "horizontal",
            f"{horizontal.total_cost.cpu_ops / 1e6:.1f}M",
            str(horizontal.n_database_scans),
            f"{horizontal.contended_increments:,}",
        ],
        [
            "vertical (tidset)",
            f"{vertical.total_cost.cpu_ops / 1e6:.1f}M",
            "1",
            "0",
        ],
    ]
    emit(
        "e11_vertical_vs_horizontal",
        render_grid(
            ["layout", "element ops", "DB scans", "racy increments"],
            rows,
            title=(
                "E11. Horizontal vs vertical Apriori on chess "
                f"(op ratio {ratio:.1f}x)"
            ),
        ),
    )

    # The Section II-B claim: an order of magnitude of work saved, plus
    # the parallel-poison counter races that vertical counting eliminates.
    assert ratio >= 10
    assert horizontal.contended_increments > 0

    frequent = [
        items for items in vertical.result.k_itemsets(1)
    ]
    candidates = [c.items for c in generate_candidates(sorted(frequent))]
    counter = HorizontalCounter(db)
    benchmark(counter.count, candidates[:64])
