"""E2 — Table II + Figure 5: parallel Apriori with diffset.

Regenerates the runtime table (rows = dataset@support, columns = thread
counts, simulated seconds on the Blacklight model) and the speedup series
behind Figure 5.  Shape assertions encode the paper's finding: Apriori with
diffset keeps scaling past one blade on the dense datasets.

The benchmarked kernel is one full-machine replay (1024 threads) of the
chess trace.
"""

from conftest import emit, save_record

from repro.analysis import (
    render_runtime_table,
    render_speedup_series,
    speedup_chart,
)
from repro.parallel import runtime_table, simulate_apriori, speedup_series


def test_table2_fig5_apriori_diffset(benchmark, studies):
    all_studies = studies.all_datasets("apriori", "diffset")

    table = runtime_table(all_studies, "TABLE II. RUNNING TIME FOR APRIORI WITH DIFFSET (simulated seconds)")
    series = speedup_series(all_studies)
    emit(
        "table2_fig5_apriori_diffset",
        render_runtime_table(table)
        + "\n\n"
        + render_speedup_series(series, title="Figure 5. Scalability of Apriori with Diffset (speedup vs 1 thread)"),
    )
    save_record("E2", "Apriori with diffset", all_studies)

    # Paper shape: scaling continues beyond one blade on the dense sets.
    chess = next(s for s in all_studies if s.dataset == "chess")
    ups = chess.speedups()
    assert max(ups[t] for t in chess.thread_counts if t > 16) > 1.6 * ups[16]

    trace = chess.trace
    benchmark(simulate_apriori, trace, 1024)
