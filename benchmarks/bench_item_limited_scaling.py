"""E7 — Section V remark: Quest-style data stops scaling at the item count.

"Because the number of items is less than the number of processors, they
did not show scalability beyond [that] and we did not report them here."
This bench regenerates that negative result with the Quest-style T40I10
surrogate: parallel Eclat's speedup is bounded by (and flat beyond) its
top-level task count.

Benchmarked kernel: the 1024-thread replay of the T40I10 trace.
"""

from conftest import emit

from repro import paper
from repro.analysis import render_speedup_series
from repro.datasets import get_dataset
from repro.parallel import (
    run_scalability_study,
    simulate_eclat,
    speedup_series,
)


def test_item_limited_scaling(benchmark):
    db = get_dataset("T40I10")
    study = run_scalability_study(
        db, "eclat", "tidset", 0.02, thread_counts=paper.THREAD_COUNTS
    )
    n_tasks = len(study.mining_result.k_itemsets(1))
    series = speedup_series([study])
    emit(
        "e7_item_limited_scaling",
        render_speedup_series(
            series,
            title=(
                "Eclat on T40I10-style data "
                f"({n_tasks} frequent items < 1024 threads)"
            ),
        ),
    )

    assert n_tasks < 1024
    ups = study.speedups()
    # Speedup never exceeds the number of top-level tasks and the curve is
    # flat once the team outnumbers them.
    assert max(ups.values()) <= n_tasks
    saturated = [
        ups[t] for t in study.thread_counts if t >= 2 * n_tasks
    ]
    if len(saturated) >= 2:
        assert max(saturated) / min(saturated) < 1.05

    benchmark(simulate_eclat, study.trace, 1024)
