"""Shared infrastructure for the paper-reproduction benchmarks.

Mining a full-size surrogate is expensive in pure Python, so every study
(dataset x algorithm x representation at the canonical support) is computed
at most once per pytest session and shared across benchmark modules through
the session-scoped ``studies`` fixture.  pytest-benchmark then times the
cheap deterministic part — the machine-model replay — while each module
prints and persists the paper-style tables under ``benchmarks/results/``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro import paper
from repro.analysis import from_studies
from repro.datasets import get_dataset
from repro.parallel import ScalabilityStudy, run_scalability_study

RESULTS_DIR = Path(__file__).parent / "results"


class StudyCache:
    """Lazily mines and caches scalability studies for the session."""

    def __init__(self) -> None:
        self._cache: dict[tuple, ScalabilityStudy] = {}

    def get(
        self, dataset: str, algorithm: str, representation: str
    ) -> ScalabilityStudy:
        key = (dataset, algorithm, representation)
        if key not in self._cache:
            support = paper.PAPER_SUPPORTS[dataset]
            self._cache[key] = run_scalability_study(
                get_dataset(dataset),
                algorithm,
                representation,
                support,
                thread_counts=paper.THREAD_COUNTS,
                machine=paper.PAPER_MACHINE,
            )
        return self._cache[key]

    def all_datasets(
        self, algorithm: str, representation: str
    ) -> list[ScalabilityStudy]:
        return [
            self.get(row.dataset, algorithm, representation)
            for row in paper.paper_rows()
        ]


@pytest.fixture(scope="session")
def studies() -> StudyCache:
    return StudyCache()


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    # Write to the real stdout so the table shows up even under capture.
    sys.__stdout__.write("\n" + text + "\n")
    sys.__stdout__.flush()


def save_record(experiment_id: str, title: str, studies_list, notes=None) -> None:
    """Persist the experiment record JSON next to the rendered table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    record = from_studies(experiment_id, title, studies_list, notes=notes)
    record.save(RESULTS_DIR / f"{experiment_id}.json")
