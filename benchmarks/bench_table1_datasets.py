"""E1 — Table I: summary of the four benchmark datasets.

Regenerates the paper's dataset table from the surrogates and checks each
row against the published statistics.  The benchmarked kernel is surrogate
generation itself (the chess table, the one the examples lean on most).
"""

from conftest import emit

from repro.analysis import render_dataset_stats
from repro.datasets import PAPER_STATS, get_dataset, make_chess


def test_table1_dataset_summary(benchmark):
    rows = []
    for name, info in PAPER_STATS.items():
        db = get_dataset(name)
        stats = db.stats()
        rows.append(stats.row())
        # Structural agreement with the paper's Table I.
        assert stats.n_items == info.n_items or name == "pumsb_star"
        assert stats.n_transactions == info.surrogate_transactions

    paper_rows = [
        (i.name, i.n_items, i.avg_length, i.n_transactions, i.size_label)
        for i in PAPER_STATS.values()
    ]
    text = (
        render_dataset_stats(rows, title="TABLE I (surrogates, measured)")
        + "\n\n"
        + render_dataset_stats(paper_rows, title="TABLE I (paper, reported)")
    )
    emit("table1_datasets", text)

    benchmark(make_chess)
