"""End-to-end tests: obs wired through mining, simulation, and the CLI."""

import json
from collections import Counter as TallyCounter

import pytest

from repro.cli import main
from repro.core.apriori import run_apriori
from repro.core.eclat import run_eclat
from repro.datasets import parse_fimi
from repro.datasets.fimi import write_fimi
from repro.datasets.transaction_db import TransactionDatabase
from repro.obs import ChromeTraceSink, InMemorySink, ObsContext
from repro.openmp.events import ChunkEvent, check_trace
from repro.parallel import run_scalability_study

FIMI_TEXT = "\n".join(
    ["1 2 3", "1 2", "2 3", "1 3", "1 2 3", "2 3 4", "1 4", "3 4", "1 2 4"] * 2
)


@pytest.fixture
def db():
    return parse_fimi(FIMI_TEXT, name="obsdb")


def _level_sizes(result):
    """Number of frequent itemsets per size, from the mining result."""
    return TallyCounter(len(items) for items in result.itemsets)


class TestMinerCounters:
    def test_apriori_level_counters_match_result(self, db):
        obs = ObsContext()
        run = run_apriori(db, 3, "tidset", obs=obs)
        sizes = _level_sizes(run.result)
        counters = obs.metrics.counters()
        for k, n_frequent in sizes.items():
            assert counters[f"apriori.level{k}.frequent"] == n_frequent
            assert (
                counters[f"apriori.level{k}.candidates"]
                - counters[f"apriori.level{k}.pruned"]
                == n_frequent
            )
        # No counters for levels past the last generation.
        assert f"apriori.level{max(sizes) + 1}.candidates" not in counters

    def test_eclat_depth_counters_match_result(self, db):
        obs = ObsContext()
        run = run_eclat(db, 3, "diffset", obs=obs)
        sizes = _level_sizes(run.result)
        counters = obs.metrics.counters()
        assert counters["eclat.toplevel.tasks"] == sizes[1]
        for k in range(2, max(sizes) + 1):
            # depth-d combines produce the (d+1)-itemsets.
            assert counters[f"eclat.depth{k - 1}.frequent"] == sizes[k]
        assert counters["mine.intersections"] == sum(
            counters[f"eclat.depth{d}.combines"]
            for d in range(1, max(sizes))
        )

    def test_miner_spans_emitted(self, db):
        obs = ObsContext(sink=InMemorySink())
        run_apriori(db, 3, "tidset", obs=obs)
        names = [ev.name for ev in obs.sink.events]
        assert "apriori.gen1" in names and "apriori.gen2" in names

        obs2 = ObsContext(sink=InMemorySink())
        run_eclat(db, 3, "tidset", obs=obs2)
        tasks = [ev for ev in obs2.sink.events if ev.name.startswith("eclat.task")]
        assert len(tasks) == obs2.metrics.counters()["eclat.toplevel.tasks"]


class TestNullObsIsInvisible:
    @pytest.mark.parametrize("algorithm,rep", [
        ("apriori", "tidset"), ("eclat", "diffset"),
    ])
    def test_results_and_times_byte_identical(self, db, algorithm, rep):
        plain = run_scalability_study(
            db, algorithm, rep, 3, thread_counts=[1, 4, 16]
        )
        nulled = run_scalability_study(
            db, algorithm, rep, 3, thread_counts=[1, 4, 16], obs=ObsContext()
        )
        assert plain.runtimes() == nulled.runtimes()
        assert plain.mining_result.same_itemsets(nulled.mining_result)
        assert plain.mining_result.itemsets == nulled.mining_result.itemsets


class TestChromeTraceFromStudy:
    @pytest.mark.parametrize("algorithm,rep,regions_of", [
        ("apriori", "tidset",
         lambda study: {
             f"gen{g.generation}": g.n_candidates
             for g in study.trace.generations
         }),
        ("eclat", "tidset",
         lambda study: {"toplevel": study.trace.n_toplevel_tasks}),
    ])
    def test_chunk_events_cover_the_simulated_chunk_set(
        self, db, tmp_path, algorithm, rep, regions_of
    ):
        path = tmp_path / "trace.json"
        obs = ObsContext(sink=ChromeTraceSink(path))
        study = run_scalability_study(
            db, algorithm, rep, 3, thread_counts=[1, 4, 16],
            obs=obs, obs_threads=4,
        )
        obs.close()

        doc = json.loads(path.read_text())
        chunks = [
            ev for ev in doc["traceEvents"] if ev.get("cat") == "chunk"
        ]
        assert chunks and all(ev["pid"] == 4 for ev in chunks)
        assert all(0 <= ev["tid"] < 4 for ev in chunks)

        # Rebuild ChunkEvents from the trace and revalidate coverage and
        # per-thread non-overlap against the miner's own task trace.
        by_region: dict[str, list[ChunkEvent]] = {}
        for ev in chunks:
            by_region.setdefault(ev["name"], []).append(
                ChunkEvent(
                    thread=ev["tid"],
                    start_iteration=ev["args"]["start"],
                    end_iteration=ev["args"]["end"],
                    start_time=ev["ts"],
                    end_time=ev["ts"] + ev["dur"],
                )
            )
        expected = regions_of(study)
        assert set(by_region) == {
            label for label, n in expected.items() if n > 0
        }
        for label, events in by_region.items():
            check_trace(events, expected[label])

    def test_wall_clock_phases_in_notes_and_trace(self, db, tmp_path):
        path = tmp_path / "trace.json"
        obs = ObsContext(sink=ChromeTraceSink(path))
        study = run_scalability_study(
            db, "eclat", "diffset", 3, thread_counts=[1, 4], obs=obs
        )
        obs.close()
        assert study.notes["wall_mine_seconds"] > 0
        assert study.notes["wall_replay_seconds"] > 0
        names = {ev["name"] for ev in json.loads(path.read_text())["traceEvents"]}
        assert {"mine", "replay"} <= names

    def test_wall_clock_notes_present_without_obs(self, db):
        study = run_scalability_study(db, "eclat", "tidset", 3,
                                      thread_counts=[1, 2])
        assert study.notes["wall_mine_seconds"] >= 0
        assert study.notes["wall_replay_seconds"] >= 0


class TestRegionMetrics:
    def test_link_and_busy_metrics_recorded(self, db):
        obs = ObsContext()
        run_scalability_study(
            db, "apriori", "tidset", 3, thread_counts=[1, 4, 32],
            obs=obs, obs_threads=32,
        )
        counters = obs.metrics.counters()
        gauges = obs.metrics.gauges()
        assert any(name.startswith("numalink.region.") for name in counters)
        assert "sim.fork_join_s" in counters and counters["sim.fork_join_s"] > 0
        assert any(name.endswith(".makespan_s") for name in gauges)
        assert any(name.endswith(".link_bound_s") for name in gauges)
        busy = obs.metrics.histograms()["sim.thread_busy_s"]
        assert busy["count"] > 0 and busy["p50"] <= busy["p99"]

    def test_obs_threads_must_be_in_sweep(self, db):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            run_scalability_study(
                db, "eclat", "tidset", 3, thread_counts=[1, 4],
                obs=ObsContext(), obs_threads=7,
            )


class TestCliObs:
    @pytest.fixture
    def fimi_file(self, tmp_path):
        db = TransactionDatabase(
            [[1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3]] * 4, name="clidb"
        )
        path = tmp_path / "data.dat"
        write_fimi(db, path)
        return str(path)

    def test_profile_prints_required_metrics(self, fimi_file, capsys):
        assert main([
            "profile", fimi_file, "-s", "3", "-a", "apriori", "-r", "tidset",
            "--max-threads", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "numalink.region.gen2.bytes" in out
        assert "apriori.level2.candidates" in out
        assert "replay profiled at 16 threads" in out

    def test_profile_writes_valid_trace(self, fimi_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main([
            "profile", fimi_file, "-s", "3", "--max-threads", "16",
            "--threads", "16", "--trace-out", str(trace),
        ]) == 0
        doc = json.loads(trace.read_text())
        assert any(ev.get("cat") == "chunk" for ev in doc["traceEvents"])

    def test_profile_rejects_thread_count_outside_sweep(self, fimi_file):
        with pytest.raises(SystemExit):
            main([
                "profile", fimi_file, "-s", "3",
                "--max-threads", "8", "--threads", "5",
            ])

    def test_mine_metrics_flag(self, fimi_file, capsys):
        assert main([
            "mine", fimi_file, "-s", "3", "-a", "eclat", "--metrics",
        ]) == 0
        assert "mine.intersections" in capsys.readouterr().out

    def test_scalability_trace_out(self, fimi_file, tmp_path, capsys):
        trace = tmp_path / "scal.json"
        assert main([
            "scalability", fimi_file, "-s", "3", "--max-threads", "16",
            "--trace-out", str(trace), "--metrics",
        ]) == 0
        out = capsys.readouterr().out
        assert "trace written" in out
        assert json.loads(trace.read_text())["traceEvents"]
