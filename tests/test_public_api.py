"""The top-level package exposes the documented public API."""

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.4.0"

    def test_mine_is_exported(self):
        assert callable(repro.mine)
        assert repro.mine is repro.engine.mine

    def test_miners_importable(self):
        for name in ("apriori", "eclat", "fpgrowth", "charm", "brute_force"):
            assert callable(getattr(repro, name))

    def test_query_surface_exported(self):
        from repro.core.queryable import Queryable
        from repro.index import ItemsetIndex

        assert repro.Queryable is Queryable
        assert repro.ItemsetIndex is ItemsetIndex

    def test_run_variants(self):
        assert callable(repro.run_apriori)
        assert callable(repro.run_eclat)

    def test_dataset_helpers(self):
        assert callable(repro.get_dataset)
        assert callable(repro.read_fimi)
        assert repro.TransactionDatabase is not None

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_readme_quickstart_verbatim(self):
        """The README's quickstart snippet must keep working."""
        import repro
        from repro.datasets import parse_fimi

        db = parse_fimi("1 2 3\n1 2\n2 3\n1 3\n1 2 3", name="demo")

        result = repro.mine(db, min_support=2)
        assert len(result) == 7
        assert result.support((1, 2)) == 3

        fast = repro.mine(
            db, algorithm="apriori", representation="bitvector_numpy",
            backend="vectorized", min_support=2,
        )
        assert result.same_itemsets(fast)

    def test_readme_legacy_quickstart_still_works(self):
        """The pre-engine snippet keeps working through the wrappers."""
        from repro import apriori, eclat, fpgrowth
        from repro.datasets import parse_fimi

        db = parse_fimi("1 2 3\n1 2\n2 3\n1 3\n1 2 3", name="demo")
        result = eclat(db, min_support=2, representation="diffset")
        assert len(result) == 7
        assert result.support((1, 2)) == 3
        assert result.same_itemsets(apriori(db, 2, "tidset"))
        assert result.same_itemsets(fpgrowth(db, 2))


class TestSubpackageSurfaces:
    def test_representation_registry_complete(self):
        from repro.representations import REPRESENTATIONS

        assert set(REPRESENTATIONS) == {
            "tidset", "bitvector", "bitvector_numpy", "diffset", "hybrid",
        }

    def test_engine_surface(self):
        from repro import engine

        for name in (
            "mine", "execute", "register_backend", "get_backend_entry",
            "available_backends", "available_algorithms",
            "supported_combinations",
        ):
            assert callable(getattr(engine, name)), name
        assert set(engine.available_backends()) == {
            "serial", "multiprocessing", "vectorized", "shared_memory",
        }
        assert ("multiprocessing", "eclat") in engine.supported_combinations()
        assert ("vectorized", "apriori") in engine.supported_combinations()
        assert ("shared_memory", "eclat") in engine.supported_combinations()
        assert ("shared_memory", "apriori") in engine.supported_combinations()
        assert ("serial", "charm") in engine.supported_combinations()
        assert "charm" in engine.available_algorithms()

    def test_paper_config_importable(self):
        from repro import paper

        assert paper.THREAD_COUNTS[-1] == 1024
        assert set(paper.PAPER_SUPPORTS) == {
            "chess", "mushroom", "pumsb", "pumsb_star",
        }

    def test_machine_presets(self):
        from repro.machine import BLACKLIGHT, UNIFORM_MEMORY

        assert BLACKLIGHT.name == "blacklight"
        assert UNIFORM_MEMORY.name == "uniform-memory"

    def test_parallel_surface(self):
        from repro import parallel

        for name in (
            "run_scalability_study", "simulate_apriori", "simulate_eclat",
            "save_apriori_trace", "load_eclat_trace",
            "validate_apriori_trace", "toplevel_view",
        ):
            assert callable(getattr(parallel, name)), name

    def test_obs_surface(self):
        from repro import ObsContext, obs

        context = ObsContext()
        assert not context.tracing  # NullSink default
        for name in (
            "TraceSink", "NullSink", "InMemorySink", "JsonlSink",
            "ChromeTraceSink", "MetricsRegistry", "ObsContext",
        ):
            assert getattr(obs, name, None) is not None, name

    def test_cli_parser_builds(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert {a.dest for a in parser._subparsers._actions[-1].choices[
            "mine"
        ]._actions if a.dest != "help"} >= {
            "dataset", "min_support", "algorithm", "representation", "top",
            "trace_out", "metrics",
        }
        profile = parser._subparsers._actions[-1].choices["profile"]
        assert {a.dest for a in profile._actions if a.dest != "help"} >= {
            "dataset", "min_support", "algorithm", "representation",
            "threads", "max_threads", "trace_out",
        }
