"""Tests for metrics, table rendering, and experiment records."""

import pytest

from repro.analysis import (
    ExperimentRecord,
    efficiency,
    format_seconds,
    from_studies,
    karp_flatt,
    karp_flatt_series,
    render_dataset_stats,
    render_grid,
    render_runtime_table,
    render_speedup_series,
    speedup,
)
from repro.errors import ConfigurationError
from repro.parallel.speedup import (
    RuntimeTable,
    SpeedupSeries,
    runtime_table,
    scaling_verdict,
    speedup_series,
)


class TestMetrics:
    TIMES = {1: 10.0, 16: 1.0, 32: 0.8}

    def test_speedup(self):
        ups = speedup(self.TIMES)
        assert ups[1] == pytest.approx(1.0)
        assert ups[16] == pytest.approx(10.0)
        assert ups[32] == pytest.approx(12.5)

    def test_speedup_missing_baseline(self):
        with pytest.raises(ConfigurationError):
            speedup({16: 1.0})

    def test_speedup_nonpositive_time(self):
        with pytest.raises(ConfigurationError):
            speedup({1: 1.0, 2: 0.0})

    def test_efficiency(self):
        eff = efficiency(self.TIMES)
        assert eff[16] == pytest.approx(10.0 / 16)

    def test_karp_flatt_perfect_scaling_is_zero(self):
        assert karp_flatt(16.0, 16) == pytest.approx(0.0)

    def test_karp_flatt_serial_floor(self):
        # Half the program serial: S(inf) -> 2; at T=4, S = 1/(0.5+0.125)=1.6
        assert karp_flatt(1.6, 4) == pytest.approx(0.5)

    def test_karp_flatt_series_skips_baseline(self):
        series = karp_flatt_series(self.TIMES)
        assert set(series) == {16, 32}

    def test_karp_flatt_validation(self):
        with pytest.raises(ConfigurationError):
            karp_flatt(2.0, 1)
        with pytest.raises(ConfigurationError):
            karp_flatt(0.0, 4)

    def test_scaled_down_note(self):
        from repro.analysis.metrics import scaled_down_note

        assert "0.50x" in scaled_down_note(52.0, 26.0)
        assert "unavailable" in scaled_down_note(0.0, 26.0)


class TestRendering:
    def test_render_grid_alignment(self):
        text = render_grid(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_format_seconds_ranges(self):
        assert format_seconds(120.0) == "120"
        assert format_seconds(1.5) == "1.50"
        assert format_seconds(0.002) == "2.00m"
        assert format_seconds(5e-5) == "50u"

    def test_render_runtime_table(self):
        table = RuntimeTable("TABLE II", [1, 16], [("chess@0.8", [2.0, 0.2])])
        text = render_runtime_table(table)
        assert "TABLE II" in text and "chess@0.8" in text and "2.00" in text

    def test_render_speedup_series(self):
        series = [SpeedupSeries("chess@0.8", [16, 32], [10.0, 14.5])]
        text = render_speedup_series(series, title="Figure 5")
        assert "14.5" in text and "Figure 5" in text

    def test_render_speedup_empty(self):
        assert render_speedup_series([], title="x") == "x"

    def test_render_dataset_stats(self):
        text = render_dataset_stats([("chess", 75, 37.0, 3196, "334K")])
        assert "chess" in text and "3196" in text


class TestSpeedupAssembly:
    def _study(self, db, rep="tidset"):
        from repro.parallel import run_scalability_study

        return run_scalability_study(
            db, "eclat", rep, 2, thread_counts=[1, 16, 64]
        )

    def test_runtime_table_and_series(self, tiny_db):
        studies = [self._study(tiny_db)]
        table = runtime_table(studies, "TABLE X")
        assert table.thread_counts == [1, 16, 64]
        assert table.rows[0][0] == "tiny@2abs"
        series = speedup_series(studies)
        assert series[0].thread_counts == [16, 64]  # baseline excluded

    def test_runtime_table_requires_matching_sweeps(self, tiny_db):
        from repro.parallel import run_scalability_study

        a = self._study(tiny_db)
        b = run_scalability_study(
            tiny_db, "eclat", "tidset", 2, thread_counts=[1, 16]
        )
        with pytest.raises(ConfigurationError):
            runtime_table([a, b], "bad")

    def test_runtime_table_empty(self):
        with pytest.raises(ConfigurationError):
            runtime_table([], "empty")

    def test_scaling_verdict(self):
        scalable = SpeedupSeries("x", [16, 64, 1024], [14.0, 30.0, 50.0])
        plateau = SpeedupSeries("x", [16, 64, 1024], [14.0, 14.5, 14.2])
        degrades = SpeedupSeries("x", [16, 64, 1024], [14.0, 8.0, 5.0])
        assert scaling_verdict(scalable) == "scalable"
        assert scaling_verdict(plateau) == "plateau"
        assert scaling_verdict(degrades) == "degrades"

    def test_series_helpers(self):
        s = SpeedupSeries("x", [16, 64], [5.0, 9.0])
        assert s.final() == 9.0
        assert s.peak() == 9.0


class TestExperimentRecords:
    def test_record_roundtrip(self, tiny_db, tmp_path):
        from repro.parallel import run_scalability_study

        study = run_scalability_study(
            tiny_db, "apriori", "tidset", 2, thread_counts=[1, 16]
        )
        record = from_studies("E2", "Table II", [study], notes={"k": 1})
        path = record.save(tmp_path / "e2.json")
        loaded = ExperimentRecord.load(path)
        assert loaded.experiment_id == "E2"
        assert loaded.series[0].label == "tiny@2abs"
        assert loaded.notes == {"k": 1}
        assert loaded.peak_speedups()["tiny@2abs"] >= 1.0
        assert loaded.final_speedups()["tiny@2abs"] > 0

    def test_from_studies_requires_input(self):
        with pytest.raises(ConfigurationError):
            from_studies("E0", "none", [])

    def test_mixed_algorithms_labelled(self, tiny_db):
        from repro.parallel import run_scalability_study

        a = run_scalability_study(tiny_db, "apriori", "tidset", 2, [1])
        e = run_scalability_study(tiny_db, "eclat", "tidset", 2, [1])
        record = from_studies("EX", "mix", [a, e])
        assert record.algorithm == "mixed"
