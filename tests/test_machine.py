"""Tests for the NUMA machine model: topology, specs, cost, placement."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.machine import (
    BLACKLIGHT,
    UNIFORM_MEMORY,
    CostModel,
    MachineSpec,
    NumaTopology,
    PlacementMap,
    first_touch_placement,
    interleaved_placement,
    per_blade_link_traffic,
    remote_read_bytes,
    standard_thread_counts,
)


class TestTopology:
    def test_blades_for_thread_counts(self):
        assert NumaTopology(1).n_blades == 1
        assert NumaTopology(16).n_blades == 1
        assert NumaTopology(17).n_blades == 2
        assert NumaTopology(1024).n_blades == 64

    def test_blade_of_thread(self):
        topo = NumaTopology(64)
        assert topo.blade_of_thread(0) == 0
        assert topo.blade_of_thread(15) == 0
        assert topo.blade_of_thread(16) == 1
        arr = topo.blade_of_thread(np.array([0, 31, 63]))
        assert arr.tolist() == [0, 1, 3]

    def test_threads_on_blade(self):
        topo = NumaTopology(20)
        assert topo.threads_on_blade(0) == 16
        assert topo.threads_on_blade(1) == 4
        with pytest.raises(ConfigurationError):
            topo.threads_on_blade(2)

    def test_is_single_blade(self):
        assert NumaTopology(16).is_single_blade()
        assert not NumaTopology(32).is_single_blade()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NumaTopology(0)
        with pytest.raises(ConfigurationError):
            NumaTopology(4, cores_per_blade=0)

    def test_standard_thread_counts(self):
        assert standard_thread_counts() == [1, 16, 32, 64, 128, 256, 512, 1024]
        assert standard_thread_counts(64) == [1, 16, 32, 64]


class TestMachineSpec:
    def test_blacklight_layout(self):
        assert BLACKLIGHT.cores_per_blade == 16
        assert BLACKLIGHT.name == "blacklight"

    def test_uniform_memory_neutralizes_numa(self):
        assert UNIFORM_MEMORY.remote_latency == 0.0
        assert UNIFORM_MEMORY.bisection_bandwidth >= 1e14

    def test_with_overrides(self):
        spec = BLACKLIGHT.with_overrides(link_bandwidth=1e9)
        assert spec.link_bandwidth == 1e9
        assert spec.element_rate == BLACKLIGHT.element_rate

    @pytest.mark.parametrize(
        "field,value",
        [
            ("element_rate", 0),
            ("link_bandwidth", -1),
            ("remote_latency", -1e-9),
            ("cores_per_blade", 0),
            ("bisection_bandwidth", 0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            BLACKLIGHT.with_overrides(**{field: value})


class TestCostModel:
    def test_compute_time(self):
        cm = CostModel(BLACKLIGHT)
        assert cm.compute_time(BLACKLIGHT.element_rate) == pytest.approx(1.0)

    def test_remote_time_zero_bytes_is_free(self):
        cm = CostModel(BLACKLIGHT)
        assert cm.remote_time(0.0) == 0.0

    def test_remote_time_latency_per_chunk(self):
        cm = CostModel(BLACKLIGHT)
        one = cm.remote_time(100)
        two = cm.remote_time(BLACKLIGHT.remote_chunk_bytes + 100)
        assert two > one
        assert one >= BLACKLIGHT.remote_latency

    def test_task_time_vectorized(self):
        cm = CostModel(BLACKLIGHT)
        t = cm.task_time(
            np.array([1e6, 2e6]), np.array([0.0, 0.0]), np.array([0.0, 4096.0])
        )
        assert t.shape == (2,)
        assert t[1] > t[0]

    def test_fork_join_grows_with_threads(self):
        cm = CostModel(BLACKLIGHT)
        assert cm.fork_join_time(1) == 0.0
        assert cm.fork_join_time(1024) > cm.fork_join_time(16) > 0

    def test_serial_time(self):
        cm = CostModel(BLACKLIGHT)
        assert cm.serial_time(BLACKLIGHT.serial_op_rate) == pytest.approx(1.0)

    def test_link_serialization(self):
        cm = CostModel(BLACKLIGHT)
        traffic = np.array([0.0, 2 * BLACKLIGHT.link_bandwidth])
        assert cm.link_serialization_time(traffic) == pytest.approx(2.0)
        assert cm.link_serialization_time(np.empty(0)) == 0.0

    def test_bisection_time(self):
        cm = CostModel(BLACKLIGHT)
        assert cm.bisection_time(BLACKLIGHT.bisection_bandwidth) == pytest.approx(1.0)


class TestPlacement:
    def test_interleaved(self):
        topo = NumaTopology(32)  # 2 blades
        pm = interleaved_placement(5, topo)
        assert pm.home_blades.tolist() == [0, 1, 0, 1, 0]

    def test_first_touch(self):
        topo = NumaTopology(32)
        pm = first_touch_placement(np.array([0, 15, 16, 31]), topo)
        assert pm.home_blades.tolist() == [0, 0, 1, 1]

    def test_first_touch_validates_threads(self):
        topo = NumaTopology(16)
        with pytest.raises(SimulationError):
            first_touch_placement(np.array([99]), topo)

    def test_select(self):
        pm = PlacementMap(np.array([0, 1, 2, 3]))
        sel = pm.select(np.array([True, False, True, False]))
        assert sel.home_blades.tolist() == [0, 2]
        assert len(sel) == 2

    def test_homes_of(self):
        pm = PlacementMap(np.array([5, 6, 7]))
        assert pm.homes_of(np.array([2, 0])).tolist() == [7, 5]

    def test_remote_read_split(self):
        readers = np.array([0, 0, 1])
        homes = np.array([0, 1, 1])
        size = np.array([10, 20, 30])
        local, remote = remote_read_bytes(readers, homes, size)
        assert local.tolist() == [10, 0, 30]
        assert remote.tolist() == [0, 20, 0]

    def test_link_traffic_counts_both_ends(self):
        readers = np.array([0, 2])
        homes = np.array([1, 2])
        size = np.array([100, 50])
        traffic = per_blade_link_traffic(readers, homes, size, n_blades=3)
        # Only the first read is remote: 100 out of blade 1, 100 into blade 0.
        assert traffic.tolist() == [100.0, 100.0, 0.0]

    def test_link_traffic_all_local(self):
        readers = homes = np.array([0, 1])
        traffic = per_blade_link_traffic(
            readers, homes, np.array([5, 5]), n_blades=2
        )
        assert traffic.tolist() == [0.0, 0.0]
