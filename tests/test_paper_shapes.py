"""Integration tests: the paper's qualitative findings on scaled data.

These run the full pipeline (surrogate data -> real miner with tracing ->
machine replay) on reduced-size datasets and assert the *shape* claims of
Section V, not absolute numbers:

* S1: Apriori with tidset gains little or nothing past one blade;
* S2: Apriori with diffset keeps scaling well past one blade;
* S3: Eclat's speedup curves are monotone non-decreasing (no degradation)
  for all three representations;
* S4: the diffset payload per generation is far smaller than tidset's;
* S5: datasets with fewer frequent items than threads stop scaling at the
  task count (the T40I10D100K remark).
"""

import pytest

from repro.core import run_apriori
from repro.datasets import QuestGenerator, make_chess
from repro.parallel import AprioriTrace, run_scalability_study

THREADS = [1, 16, 32, 64, 128, 256, 512, 1024]


@pytest.fixture(scope="module")
def chess():
    # Full chess is small enough (3,196 rows) to use directly.
    return make_chess()


@pytest.fixture(scope="module")
def chess_studies(chess):
    return {
        rep: {
            algo: run_scalability_study(
                chess, algo, rep, 0.8, thread_counts=THREADS
            )
            for algo in ("apriori", "eclat")
        }
        for rep in ("tidset", "diffset")
    }


class TestAprioriShapes:
    def test_s1_tidset_stalls_beyond_one_blade(self, chess_studies):
        ups = chess_studies["tidset"]["apriori"].speedups()
        at_blade = ups[16]
        beyond = max(ups[t] for t in THREADS if t > 16)
        # Past one blade the best gain is bounded (< 1.5x of the one-blade
        # speedup), i.e. "not scalable beyond 16" in the paper's sense.
        assert beyond < 1.5 * at_blade

    def test_s2_diffset_scales_beyond_one_blade(self, chess_studies):
        ups = chess_studies["diffset"]["apriori"].speedups()
        beyond = max(ups[t] for t in THREADS if t > 16)
        assert beyond > 1.6 * ups[16]

    def test_diffset_beats_tidset_at_scale(self, chess_studies):
        tid = chess_studies["tidset"]["apriori"].speedups()[1024]
        dif = chess_studies["diffset"]["apriori"].speedups()[1024]
        assert dif > 1.5 * tid

    def test_diffset_faster_absolute(self, chess_studies):
        tid = chess_studies["tidset"]["apriori"]
        dif = chess_studies["diffset"]["apriori"]
        for t in THREADS:
            assert dif.runtime(t) < tid.runtime(t)


class TestEclatShapes:
    @pytest.mark.parametrize("rep", ["tidset", "diffset"])
    def test_s3_monotone_non_decreasing(self, chess_studies, rep):
        ups = chess_studies[rep]["eclat"].speedups()
        values = [ups[t] for t in THREADS]
        for a, b in zip(values, values[1:]):
            assert b >= 0.85 * a  # never degrades materially

    def test_eclat_results_match_apriori(self, chess_studies):
        a = chess_studies["tidset"]["apriori"].mining_result
        e = chess_studies["diffset"]["eclat"].mining_result
        assert a.same_itemsets(e)


class TestPayloadClaim:
    def test_s4_diffset_order_of_magnitude_smaller(self, chess):
        tid_trace, dif_trace = AprioriTrace(), AprioriTrace()
        run_apriori(chess, 0.8, "tidset", sink=tid_trace)
        run_apriori(chess, 0.8, "diffset", sink=dif_trace)
        tid_bytes = sum(g.total_read_bytes for g in tid_trace.generations)
        dif_bytes = sum(g.total_read_bytes for g in dif_trace.generations)
        assert tid_bytes > 10 * dif_bytes


class TestItemLimitedScaling:
    def test_s5_quest_data_stops_at_task_count(self):
        gen = QuestGenerator(
            n_items=80, avg_transaction_length=10, avg_pattern_length=4,
            n_patterns=25, seed=31,
        )
        db = gen.generate(600, name="quest-small")
        study = run_scalability_study(
            db, "eclat", "tidset", 0.03, thread_counts=THREADS
        )
        n_tasks = len(study.mining_result.k_itemsets(1))
        assert n_tasks < 1024
        ups = study.speedups()
        # Speedup can never exceed the number of top-level tasks, and the
        # curve is flat once threads outnumber them.
        assert max(ups.values()) <= n_tasks
        big = [ups[t] for t in THREADS if t >= 2 * n_tasks]
        assert max(big) / min(big) < 1.05
