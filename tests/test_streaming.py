"""Tests for the bounded-memory streaming FIMI reader.

The contract under test: a scan validates exactly what ``read_fimi``
would parse, and concatenating the streamed chunks reproduces the
in-memory database transaction-for-transaction — the invariant the SON
out-of-core driver's exactness rests on.
"""

import hashlib

import pytest

from repro.datasets import (
    StreamStats,
    partition_chunk_size,
    read_fimi,
    scan_fimi,
    stream_fimi_chunks,
    write_fimi,
)
from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import DatasetError

TEXT = "1 2 3\n2 3\n\n7\n1 7 9\n3\n"


@pytest.fixture
def dat(tmp_path):
    path = tmp_path / "stream.dat"
    path.write_text(TEXT, encoding="utf-8")
    return path


class TestScan:
    def test_stats_match_read_fimi(self, dat):
        stats = scan_fimi(dat)
        full = read_fimi(dat)
        assert stats.n_transactions == full.n_transactions == 6
        assert stats.n_items == full.n_items == 10
        assert stats.total_items == 10  # raw tokens, incl. the blank line's 0
        assert stats.avg_length == pytest.approx(10 / 6)

    def test_sha256_is_the_file_hash(self, dat):
        stats = scan_fimi(dat)
        assert stats.sha256 == hashlib.sha256(dat.read_bytes()).hexdigest()
        assert stats.file_bytes == dat.stat().st_size

    def test_scan_validates_like_read_fimi(self, tmp_path):
        path = tmp_path / "bad.dat"
        path.write_text("1 2\n3 oops\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="line 2"):
            scan_fimi(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.dat"
        path.write_text("", encoding="utf-8")
        stats = scan_fimi(path)
        assert stats == StreamStats(
            path=str(path), n_transactions=0, n_items=0, total_items=0,
            file_bytes=0,
            sha256=hashlib.sha256(b"").hexdigest(),
        )
        assert stats.avg_length == 0.0

    def test_trailing_blank_lines_not_counted(self, tmp_path):
        path = tmp_path / "t.dat"
        path.write_text("1 2\n\n\n", encoding="utf-8")
        assert scan_fimi(path).n_transactions == read_fimi(path).n_transactions == 1

    def test_fingerprint_shape(self, dat):
        fp = scan_fimi(dat).fingerprint()
        assert fp["name"] == "stream"
        assert set(fp) == {
            "name", "n_transactions", "n_items", "avg_length", "sha256",
            "file_bytes",
        }


class TestChunks:
    def test_concat_equals_read_fimi(self, dat):
        full = read_fimi(dat)
        for chunk_tx in (1, 2, 3, 5, 6, 100):
            chunks = list(stream_fimi_chunks(dat, chunk_tx, n_items=10))
            flattened = [t.tolist() for c in chunks for t in c]
            assert flattened == [t.tolist() for t in full]

    def test_chunk_sizes_bounded(self, dat):
        chunks = list(stream_fimi_chunks(dat, 4, n_items=10))
        assert [c.n_transactions for c in chunks] == [4, 2]

    def test_global_universe_propagates(self, dat):
        # The last chunk contains only item 3, but must still index the
        # full universe so packed rows align across chunks.
        chunks = list(stream_fimi_chunks(dat, 5, n_items=10))
        assert all(c.n_items == 10 for c in chunks)

    def test_without_n_items_each_chunk_infers_its_own(self, dat):
        chunks = list(stream_fimi_chunks(dat, 5))
        assert chunks[-1].n_items == 4  # max item 3 in the final chunk

    def test_empty_file_yields_nothing(self, tmp_path):
        path = tmp_path / "empty.dat"
        path.write_text("", encoding="utf-8")
        assert list(stream_fimi_chunks(path, 10)) == []

    def test_chunks_are_transaction_databases(self, dat):
        chunk = next(stream_fimi_chunks(dat, 3, n_items=10))
        assert isinstance(chunk, TransactionDatabase)
        assert chunk.name.startswith("stream[chunk0")

    def test_invalid_chunk_size_rejected(self, dat):
        with pytest.raises(DatasetError, match="chunk_transactions"):
            list(stream_fimi_chunks(dat, 0))

    def test_roundtrip_via_write_fimi(self, tmp_path, paper_db):
        path = tmp_path / "paper.dat"
        write_fimi(paper_db, path)
        chunks = list(stream_fimi_chunks(
            path, 2, n_items=paper_db.n_items
        ))
        flattened = [t.tolist() for c in chunks for t in c]
        assert flattened == [t.tolist() for t in paper_db]


class TestPartitionChunkSize:
    def test_ceil_division(self):
        assert partition_chunk_size(10, 3) == 4
        assert partition_chunk_size(10, 1) == 10
        assert partition_chunk_size(10, 10) == 1
        assert partition_chunk_size(10, 100) == 1

    def test_yields_at_most_requested_partitions(self, dat):
        # Ceil division guarantees <= p chunks (n=6, p=4 -> chunk 2 -> 3
        # chunks), never more, and never an empty chunk.
        n = scan_fimi(dat).n_transactions
        for p in range(1, n + 2):
            chunks = list(stream_fimi_chunks(dat, partition_chunk_size(n, p)))
            assert 1 <= len(chunks) <= p
            assert all(c.n_transactions >= 1 for c in chunks)
            assert sum(c.n_transactions for c in chunks) == n

    def test_degenerate_inputs(self):
        assert partition_chunk_size(0, 4) == 1
        with pytest.raises(DatasetError, match="n_partitions"):
            partition_chunk_size(10, 0)
