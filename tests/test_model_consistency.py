"""Cross-layer consistency tests: simulator vs analytic bounds vs claims."""

import numpy as np
import pytest

from repro.core import run_eclat
from repro.datasets import get_dataset, make_chess
from repro.errors import ReproError
from repro.machine import (
    BLACKLIGHT,
    UNIFORM_MEMORY,
    WorkloadSummary,
    speedup_upper_bound,
)
from repro.parallel import (
    EclatTrace,
    run_scalability_study,
    simulate_eclat,
    toplevel_view,
)


@pytest.fixture(scope="module")
def chess_eclat_study():
    return run_scalability_study(
        make_chess(), "eclat", "diffset", 0.85, thread_counts=[1, 16, 128, 1024]
    )


class TestAnalyticEnvelope:
    def test_eclat_speedup_within_task_bound(self, chess_eclat_study):
        """Simulated Eclat speedup never beats the top-level task envelope."""
        trace = chess_eclat_study.trace
        view = toplevel_view(trace)
        ups = chess_eclat_study.speedups()
        assert max(ups.values()) <= view.n_tasks

    def test_eclat_speedup_within_critical_path(self, chess_eclat_study):
        trace = chess_eclat_study.trace
        view = toplevel_view(trace)
        total = float(view.cpu_ops.sum())
        summary = WorkloadSummary(
            parallel_seconds=total,
            serial_seconds=0.0,
            n_tasks=view.n_tasks,
            max_task_seconds=float(view.cpu_ops.max()),
        )
        ups = chess_eclat_study.speedups()
        for threads, value in ups.items():
            # The envelope ignores memory effects, so it only upper-bounds.
            assert value <= speedup_upper_bound(
                summary, threads, UNIFORM_MEMORY
            ) + 1e-9


class TestUniformMemoryOrdering:
    def test_numa_never_faster_than_uniform(self):
        """For every config, the NUMA machine is at least as slow as UMA."""
        db = get_dataset("T10I4")
        for rep in ("tidset", "diffset"):
            numa = run_scalability_study(
                db, "eclat", rep, 0.05, thread_counts=[64],
                machine=BLACKLIGHT,
            )
            uma = run_scalability_study(
                db, "eclat", rep, 0.05, thread_counts=[64],
                machine=UNIFORM_MEMORY,
            )
            assert uma.runtime(64) <= numa.runtime(64) * 1.0001


class TestEclatLevelModePlacement:
    def test_level_mode_homes_propagate(self, paper_db):
        """The level-sync replay walks every level without index errors and
        produces strictly positive per-level region times."""
        sink = EclatTrace()
        run_eclat(paper_db, 2, "tidset", sink=sink)
        trace = sink.finalize()
        for threads in (1, 16, 48):
            simulated = simulate_eclat(trace, threads, task_mode="level")
            assert len(simulated.regions) >= 2
            assert all(r.time > 0 for r in simulated.regions)

    def test_level_mode_single_blade_no_link(self, paper_db):
        sink = EclatTrace()
        run_eclat(paper_db, 2, "tidset", sink=sink)
        simulated = simulate_eclat(sink.finalize(), 16, task_mode="level")
        assert all(r.link_bound == 0.0 for r in simulated.regions)


class TestPlacementAblationOrdering:
    def test_interleaving_relieves_the_master_blade(self):
        """Spreading the base data cannot hurt Apriori-tidset beyond noise
        (blade 0 stops being the single home of generation-1 payloads)."""
        from repro.parallel import simulate_apriori

        db = make_chess()
        study = run_scalability_study(
            db, "apriori", "tidset", 0.8, thread_counts=[1]
        )
        master = simulate_apriori(
            study.trace, 1024, base_placement="master"
        ).total_seconds
        interleaved = simulate_apriori(
            study.trace, 1024, base_placement="interleaved"
        ).total_seconds
        assert interleaved <= master * 1.05


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro import errors

        for name in (
            "ConfigurationError", "DatasetError", "RepresentationError",
            "MiningError", "SimulationError",
        ):
            assert issubclass(getattr(errors, name), ReproError)

    def test_catchable_as_base(self, tiny_db):
        from repro.core import apriori

        with pytest.raises(ReproError):
            apriori(tiny_db, 0)


class TestAccidentsSurrogate:
    def test_registered_and_shaped(self):
        db = get_dataset("accidents")
        assert db.n_items == 468
        assert db.avg_length == pytest.approx(34.0)

    def test_item_limited_like_quest(self):
        db = get_dataset("accidents")
        study = run_scalability_study(
            db, "eclat", "tidset", 0.6, thread_counts=[1, 16, 256, 1024]
        )
        n_tasks = len(study.mining_result.k_itemsets(1))
        ups = study.speedups()
        assert n_tasks < 1024
        assert max(ups.values()) <= n_tasks
