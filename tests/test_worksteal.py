"""The work-stealing scheduler: unit semantics, backends, fault injection.

The deque mechanics (LIFO pop, FIFO steal-half, victim choice, termination)
are pinned step-by-step against the ABP discipline the module documents;
the backend tests cover what only real processes exercise — nested spawns
travelling back with results, killed workers mid-steal, empty-deque
termination with more workers than tasks, and a steal storm on a dataset
with a single top-level class.  Exactness is always judged against the
brute-force oracle, and the ``mine.*`` effort counters must match the
serial vectorized run bit-for-bit (rebuild work is charged separately).
"""

import pytest

import repro
from repro.backends.multiprocessing_backend import run_eclat_multiprocessing
from repro.backends.shared_memory_backend import (
    run_apriori_shared_memory,
    run_eclat_shared_memory,
)
from repro.core import brute_force
from repro.datasets import TransactionDatabase
from repro.errors import ConfigurationError, ParallelExecutionError
from repro.obs import ObsContext
from repro.parallel import (
    DEFAULT_SPAWN_DEPTH,
    DEFAULT_SPAWN_MIN_MEMBERS,
    WorkStealScheduler,
    resolve_spawn_policy,
)


class TestSchedulerMechanics:
    def test_seed_deals_round_robin(self):
        ws = WorkStealScheduler(3)
        ws.seed(range(7))
        assert ws.deque_sizes() == [3, 2, 2]
        assert ws.stats.seeded == 7

    def test_own_pop_is_lifo(self):
        ws = WorkStealScheduler(2)
        ws.seed([0, 1])          # worker 0 gets [0], worker 1 gets [1]
        ws.spawn(0, [10, 11])
        # Top of worker 0's deque is the most recent spawn.
        assert ws.acquire(0) == 11
        assert ws.acquire(0) == 10
        assert ws.acquire(0) == 0

    def test_steal_takes_half_from_the_bottom(self):
        ws = WorkStealScheduler(2)
        ws.seed([])
        ws.spawn(0, [0, 1, 2, 3, 4])  # worker 0's deque, bottom -> top
        got = ws.acquire(1)           # thief: steal ceil(5/2)=3 oldest
        assert got == 0               # oldest first — largest subtree
        assert ws.stats.steal_events == 1
        assert ws.stats.stolen_tasks == 3
        assert ws.deque_sizes() == [2, 2]
        # The rest of the batch drains in age order before anything else.
        assert ws.acquire(1) == 1
        assert ws.acquire(1) == 2
        # Victim kept its top (newest) half.
        assert ws.acquire(0) == 4

    def test_victim_is_largest_deque_ties_lowest_id(self):
        ws = WorkStealScheduler(4)
        ws.spawn(1, [1, 2])
        ws.spawn(2, [3, 4])
        ws.spawn(0, [5])
        # Workers 1 and 2 tie at 2 pending; lowest id wins.  ceil(2/2)=1
        # task moves and goes straight in-flight on the thief.
        got = ws.acquire(3)
        assert got == 1
        assert ws.stats.stolen_by_worker == {3: 1}
        assert ws.deque_sizes() == [1, 1, 2, 0]

    def test_acquire_returns_none_only_when_everything_is_empty(self):
        ws = WorkStealScheduler(2)
        ws.seed([0])
        assert ws.acquire(1) == 0     # stolen — nothing of its own
        assert ws.acquire(0) is None
        assert ws.acquire(1) is None
        assert ws.empty()

    def test_requeue_goes_to_the_top(self):
        ws = WorkStealScheduler(1)
        ws.seed([0, 1])
        ws.requeue(0, 7)
        assert ws.acquire(0) == 7
        assert ws.stats.requeued == 1

    def test_steal_fraction_and_max_depth(self):
        ws = WorkStealScheduler(2)
        ws.seed([0, 1])
        ws.spawn(0, [2], depth=3)
        assert ws.acquire(0) == 2
        assert ws.acquire(0) == 0
        assert ws.acquire(0) == 1     # crosses to worker 1's deque
        assert ws.stats.max_depth == 3
        assert ws.stats.steal_fraction() == pytest.approx(1 / 3)

    def test_record_counters_writes_the_documented_names(self):
        ws = WorkStealScheduler(2)
        ws.seed([0, 1, 2])
        while ws.acquire(1) is not None:
            pass
        obs = ObsContext()
        ws.record_counters(obs, prefix="t")
        counters = obs.metrics.counters()
        gauges = obs.metrics.gauges()
        assert counters["t.seeded"] == 3
        assert counters["t.executed"] == 3
        assert counters["t.worker1.steals"] >= 1
        assert "t.steal_fraction" in gauges
        ws.record_counters(None)      # explicit no-op

    def test_invalid_worker_and_pool_sizes_raise(self):
        with pytest.raises(ConfigurationError):
            WorkStealScheduler(0)
        ws = WorkStealScheduler(2)
        with pytest.raises(ConfigurationError):
            ws.acquire(2)
        with pytest.raises(ConfigurationError):
            ws.spawn(-1, [0])


class TestSpawnPolicy:
    def test_defaults(self):
        assert resolve_spawn_policy(None, None) == (
            DEFAULT_SPAWN_DEPTH, DEFAULT_SPAWN_MIN_MEMBERS)

    def test_explicit_values_pass_through(self):
        assert resolve_spawn_policy(0, 2) == (0, 2)

    def test_invalid_values_raise(self):
        with pytest.raises(ConfigurationError):
            resolve_spawn_policy(-1, None)
        with pytest.raises(ConfigurationError):
            resolve_spawn_policy(None, 1)


@pytest.fixture
def two_item_db() -> TransactionDatabase:
    """Two frequent items — exactly one top-level equivalence class."""
    return TransactionDatabase(
        [(0, 1), (0, 1), (0,), (1,)], name="two-item")


class TestSharedMemoryWorksteal:
    def test_matches_oracle_and_counts_steals(self, paper_db):
        expected = brute_force(paper_db, 2)
        obs = ObsContext()
        result = run_eclat_shared_memory(
            paper_db, 2, n_workers=4, schedule="worksteal",
            spawn_depth=3, spawn_min_members=2, obs=obs,
        )
        assert result.itemsets == expected.itemsets
        counters = obs.metrics.counters()
        assert counters["shared_memory.worksteal.seeded"] >= 1
        assert counters["shared_memory.worksteal.executed"] >= counters[
            "shared_memory.worksteal.seeded"]
        gauges = obs.metrics.gauges()
        assert "shared_memory.worksteal.steal_fraction" in gauges
        assert "shared_memory.load_balance.steal_fraction" in gauges

    def test_mine_counters_match_the_vectorized_backend(self, paper_db):
        """Nested spawning reorganizes the walk, not the work: the join
        effort counters must equal the serial vectorized run exactly."""
        serial_obs = ObsContext()
        ws_obs = ObsContext()
        serial = repro.mine(
            paper_db, algorithm="eclat", backend="vectorized",
            min_support=2, obs=serial_obs,
        )
        ws = repro.mine(
            paper_db, algorithm="eclat", backend="shared_memory",
            min_support=2, n_workers=3, schedule="worksteal", obs=ws_obs,
        )
        assert ws.itemsets == serial.itemsets
        serial_counters = serial_obs.metrics.counters()
        ws_counters = ws_obs.metrics.counters()
        for name in ("mine.intersections", "mine.intersection_read_bytes"):
            assert ws_counters[name] == serial_counters[name], name
        # Re-materializing stolen classes is real extra work — charged to
        # its own namespace, never laundered into mine.*.
        assert any(k.startswith("worksteal.rebuild.") for k in ws_counters)

    def test_more_workers_than_tasks_terminates(self, tiny_db):
        """Empty-deque termination: most deques never hold a task."""
        expected = brute_force(tiny_db, 2)
        result = run_eclat_shared_memory(
            tiny_db, 2, n_workers=8, schedule="worksteal",
        )
        assert result.itemsets == expected.itemsets

    def test_steal_storm_on_two_item_dataset(self, two_item_db):
        """One top-level class, four hungry workers: every acquisition
        beyond the first is a steal attempt against mostly-empty deques."""
        expected = brute_force(two_item_db, 1)
        obs = ObsContext()
        result = run_eclat_shared_memory(
            two_item_db, 1, n_workers=4, schedule="worksteal",
            spawn_depth=4, spawn_min_members=2, obs=obs,
        )
        assert result.itemsets == expected.itemsets
        assert obs.metrics.counters()["shared_memory.worksteal.seeded"] == 1

    def test_killed_worker_mid_steal_is_retried(self, paper_db):
        """A worker dying on a (possibly stolen) task is respawned and the
        task re-queued onto the scheduler — exactness survives."""
        expected = brute_force(paper_db, 2)
        obs = ObsContext()
        result = run_eclat_shared_memory(
            paper_db, 2, n_workers=3, schedule="worksteal", obs=obs,
            _fault={"kill_task": 1},
        )
        assert result.itemsets == expected.itemsets
        counters = obs.metrics.counters()
        assert counters["shared_memory.tasks.retried"] >= 1
        assert counters["shared_memory.worksteal.requeued"] >= 1

    def test_apriori_worksteal_matches_oracle(self, paper_db):
        expected = brute_force(paper_db, 2)
        result = run_apriori_shared_memory(
            paper_db, 2, n_workers=4, schedule="worksteal",
        )
        assert result.itemsets == expected.itemsets

    def test_spawn_options_require_worksteal(self, tiny_db):
        with pytest.raises(ConfigurationError):
            run_eclat_shared_memory(tiny_db, 2, n_workers=2, spawn_depth=1)

    def test_workers_are_not_clamped_to_class_count(self, tiny_db):
        """items < workers is the whole point — the pool must keep the
        surplus workers alive to receive stolen subtree tasks."""
        obs = ObsContext()
        run_eclat_shared_memory(
            tiny_db, 2, n_workers=6, schedule="worksteal", obs=obs,
        )
        assert obs.metrics.gauges()["shared_memory.n_workers"] == 6


class TestMultiprocessingWorksteal:
    def test_matches_oracle_with_spawns(self, paper_db):
        expected = brute_force(paper_db, 2)
        obs = ObsContext()
        result = run_eclat_multiprocessing(
            paper_db, 2, representation="tidset", n_workers=3,
            schedule="worksteal", spawn_depth=2, spawn_min_members=2,
            obs=obs,
        )
        assert result.itemsets == expected.itemsets
        counters = obs.metrics.counters()
        assert counters["multiprocessing.worksteal.executed"] >= 1
        assert "multiprocessing.load_balance.steal_fraction" in (
            obs.metrics.gauges())

    def test_rejects_unknown_schedules(self, tiny_db):
        with pytest.raises(ConfigurationError):
            run_eclat_multiprocessing(
                tiny_db, 2, representation="tidset", n_workers=2,
                schedule="guided",
            )

    def test_spawn_options_require_worksteal(self, tiny_db):
        with pytest.raises(ConfigurationError):
            run_eclat_multiprocessing(
                tiny_db, 2, representation="tidset", n_workers=2,
                spawn_depth=1,
            )

    def test_steal_storm_on_two_item_dataset(self, two_item_db):
        expected = brute_force(two_item_db, 1)
        result = run_eclat_multiprocessing(
            two_item_db, 1, representation="tidset", n_workers=4,
            schedule="worksteal", spawn_depth=4, spawn_min_members=2,
        )
        assert result.itemsets == expected.itemsets


class TestEngineSurface:
    def test_mine_accepts_worksteal_options(self, paper_db):
        expected = brute_force(paper_db, 2)
        result = repro.mine(
            paper_db, algorithm="eclat", backend="shared_memory",
            min_support=2, n_workers=3, schedule="worksteal",
            spawn_depth=1, spawn_min_members=2,
        )
        assert result.itemsets == expected.itemsets

    def test_serial_backend_rejects_worksteal_options(self, tiny_db):
        with pytest.raises(ConfigurationError):
            repro.mine(
                tiny_db, algorithm="eclat", backend="serial",
                min_support=2, schedule="worksteal",
            )
