"""End-to-end property test: the whole pipeline on random databases.

For arbitrary small inputs, a scalability study must (a) mine the exact
brute-force answer, (b) produce strictly positive simulated times, (c) give
speedup 1.0 at the baseline, and (d) never exceed the thread count or the
top-level task bound.  This is the outermost contract of the library.
"""

from hypothesis import given, settings, strategies as st

from repro.core import brute_force
from repro.datasets.transaction_db import TransactionDatabase
from repro.parallel import run_scalability_study, toplevel_view

dbs = st.lists(
    st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=5),
    min_size=2,
    max_size=10,
)


@settings(max_examples=25, deadline=None)
@given(transactions=dbs, min_sup=st.integers(min_value=1, max_value=3))
def test_apriori_pipeline_contract(transactions, min_sup):
    db = TransactionDatabase(transactions, n_items=7, name="hypo")
    study = run_scalability_study(
        db, "apriori", "tidset", min_sup, thread_counts=[1, 16, 64]
    )
    assert study.mining_result.itemsets == brute_force(db, min_sup).itemsets
    if study.runtime(1) == 0.0:
        # Degenerate: nothing beyond generation 1, so the timed mining
        # loop is empty at every thread count.
        assert all(t == 0.0 for t in study.runtimes().values())
        return
    ups = study.speedups()
    assert ups[1] == 1.0
    for threads, value in ups.items():
        assert 0 < value <= threads * 1.0001
    assert all(t > 0 for t in study.runtimes().values())


@settings(max_examples=25, deadline=None)
@given(
    transactions=dbs,
    min_sup=st.integers(min_value=1, max_value=3),
    rep=st.sampled_from(["tidset", "bitvector", "diffset", "hybrid"]),
)
def test_eclat_pipeline_contract(transactions, min_sup, rep):
    db = TransactionDatabase(transactions, n_items=7, name="hypo")
    study = run_scalability_study(
        db, "eclat", rep, min_sup, thread_counts=[1, 16, 64]
    )
    assert study.mining_result.itemsets == brute_force(db, min_sup).itemsets
    if study.runtime(1) == 0.0:
        assert all(t == 0.0 for t in study.runtimes().values())
        return
    ups = study.speedups()
    assert ups[1] == 1.0
    n_tasks = toplevel_view(study.trace).n_tasks
    if n_tasks:
        assert max(ups.values()) <= max(n_tasks, 1) * 1.0001
    for threads, value in ups.items():
        assert 0 < value <= threads * 1.0001
