"""Tests for GenMax, perturbation utilities, and rule export."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import apriori, genmax, maximal_itemsets
from repro.datasets import (
    TransactionDatabase,
    add_noise,
    sample_transactions,
    split,
    support_drift,
)
from repro.errors import ConfigurationError
from repro.rules import (
    AssociationRule,
    rules_from_json,
    rules_to_csv,
    rules_to_json,
)


class TestGenMax:
    def test_tiny_matches_filter(self, tiny_db):
        ref = maximal_itemsets(apriori(tiny_db, 2))
        assert genmax(tiny_db, 2).itemsets == ref

    def test_paper_db_all_thresholds(self, paper_db):
        for support in (2, 3, 4, 5):
            ref = maximal_itemsets(apriori(paper_db, support))
            assert genmax(paper_db, support).itemsets == ref, support

    def test_dense_matches_filter(self, small_dense_db):
        ref = maximal_itemsets(apriori(small_dense_db, 0.3))
        assert genmax(small_dense_db, 0.3).itemsets == ref

    def test_sparse_matches_filter(self, small_sparse_db):
        ref = maximal_itemsets(apriori(small_sparse_db, 0.05))
        assert genmax(small_sparse_db, 0.05).itemsets == ref

    def test_no_maximal_set_contains_another(self, small_dense_db):
        sets = list(genmax(small_dense_db, 0.3).itemsets)
        for a in sets:
            for b in sets:
                if a != b:
                    assert not set(a) <= set(b)

    def test_empty(self, empty_db):
        assert len(genmax(empty_db, 1)) == 0

    @settings(max_examples=50, deadline=None)
    @given(
        transactions=st.lists(
            st.lists(st.integers(min_value=0, max_value=6), max_size=5),
            max_size=10,
        ),
        min_sup=st.integers(min_value=1, max_value=4),
    )
    def test_property_matches_filtered_lattice(self, transactions, min_sup):
        db = TransactionDatabase(transactions, n_items=7, name="hypo")
        ref = maximal_itemsets(apriori(db, min_sup))
        assert genmax(db, min_sup).itemsets == ref


class TestPerturb:
    def test_sample_size_and_universe(self, small_dense_db):
        sampled = sample_transactions(small_dense_db, 0.25, seed=1)
        assert sampled.n_transactions == round(small_dense_db.n_transactions * 0.25)
        assert sampled.n_items == small_dense_db.n_items

    def test_sample_deterministic(self, small_dense_db):
        a = sample_transactions(small_dense_db, 0.5, seed=3)
        b = sample_transactions(small_dense_db, 0.5, seed=3)
        assert [t.tolist() for t in a] == [t.tolist() for t in b]

    def test_sample_validates(self, small_dense_db):
        with pytest.raises(ConfigurationError):
            sample_transactions(small_dense_db, 0.0)

    def test_split_is_partition(self, small_dense_db):
        a, b = split(small_dense_db, 0.3, seed=2)
        assert a.n_transactions + b.n_transactions == small_dense_db.n_transactions
        assert a.n_items == b.n_items == small_dense_db.n_items

    def test_split_validates(self, small_dense_db):
        with pytest.raises(ConfigurationError):
            split(small_dense_db, 1.0)

    def test_drop_noise_reduces_lengths(self, small_dense_db):
        noisy = add_noise(small_dense_db, drop_probability=0.5, seed=4)
        assert noisy.avg_length < small_dense_db.avg_length

    def test_insert_noise_preserves_universe(self, small_dense_db):
        noisy = add_noise(small_dense_db, insert_probability=0.5, seed=4)
        assert noisy.n_items == small_dense_db.n_items

    def test_zero_noise_is_identity(self, tiny_db):
        noisy = add_noise(tiny_db, 0.0, 0.0)
        assert [t.tolist() for t in noisy] == [t.tolist() for t in tiny_db]

    def test_support_drift_zero_for_identity(self, tiny_db):
        assert support_drift(tiny_db, tiny_db) == 0.0

    def test_support_drift_grows_with_noise(self, small_dense_db):
        mild = add_noise(small_dense_db, drop_probability=0.05, seed=5)
        harsh = add_noise(small_dense_db, drop_probability=0.5, seed=5)
        assert support_drift(small_dense_db, harsh) > support_drift(
            small_dense_db, mild
        )

    def test_mining_survives_mild_noise(self, small_dense_db):
        """Robustness: top itemsets persist under 2% drop noise."""
        base = apriori(small_dense_db, 0.5)
        noisy_db = add_noise(small_dense_db, drop_probability=0.02, seed=6)
        noisy = apriori(noisy_db, 0.45)
        survived = sum(1 for items in base.itemsets if items in noisy)
        assert survived >= 0.8 * len(base)


class TestRuleExport:
    RULES = [
        AssociationRule((0,), (1,), 0.4, 0.8, 1.6, 0.15, 2.5),
        AssociationRule((2, 3), (4,), 0.2, 1.0, 2.0, 0.1, math.inf),
    ]

    def test_csv_shape(self):
        text = rules_to_csv(self.RULES)
        lines = text.strip().splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("antecedent,consequent")
        assert "2 3" in lines[2]

    def test_csv_infinite_conviction_blank(self):
        text = rules_to_csv(self.RULES)
        assert text.strip().splitlines()[2].endswith(",")

    def test_csv_to_file(self, tmp_path):
        path = tmp_path / "rules.csv"
        rules_to_csv(self.RULES, path)
        assert path.read_text().startswith("antecedent")

    def test_json_roundtrip(self, tmp_path):
        path = tmp_path / "rules.json"
        rules_to_json(self.RULES, path)
        loaded = rules_from_json(path)
        assert loaded == self.RULES

    def test_end_to_end_with_generator(self, small_dense_db, tmp_path):
        from repro.core import fpgrowth
        from repro.rules import generate_rules

        rules = generate_rules(
            fpgrowth(small_dense_db, 0.4), min_confidence=0.7
        )
        assert rules
        path = tmp_path / "r.json"
        rules_to_json(rules, path)
        loaded = rules_from_json(path)
        assert len(loaded) == len(rules)
        # Scores are rounded to 6 decimals on export.
        for got, expected in zip(loaded, rules):
            assert got.antecedent == expected.antecedent
            assert got.consequent == expected.consequent
            assert got.confidence == pytest.approx(expected.confidence, abs=1e-6)
            assert got.lift == pytest.approx(expected.lift, abs=1e-6)
