"""Unit tests for Apriori candidate generation."""

from repro.core.candidate_gen import (
    CandidateJoin,
    candidate_generation_ops,
    generate_candidates,
)


class TestGenerate2Itemsets:
    def test_all_pairs_from_singletons(self):
        cands = generate_candidates([(1,), (2,), (3,)])
        assert [c.items for c in cands] == [(1, 2), (1, 3), (2, 3)]

    def test_parent_indices(self):
        cands = generate_candidates([(1,), (2,), (3,)])
        assert (cands[0].left_parent, cands[0].right_parent) == (0, 1)
        assert (cands[2].left_parent, cands[2].right_parent) == (1, 2)

    def test_empty_input(self):
        assert generate_candidates([]) == []

    def test_single_itemset_no_candidates(self):
        assert generate_candidates([(1,)]) == []


class TestGenerateDeeper:
    def test_prefix_blocks(self):
        frequent = [(1, 2), (1, 3), (1, 4), (2, 3)]
        cands = generate_candidates(frequent, prune=False)
        assert [c.items for c in cands] == [(1, 2, 3), (1, 2, 4), (1, 3, 4)]

    def test_prune_removes_missing_subset(self):
        # (2, 3) is NOT frequent, so candidate (1, 2, 3) must be pruned:
        # its subset {2,3} would have to be frequent.
        frequent = [(1, 2), (1, 3), (1, 4), (3, 4)]
        pruned = generate_candidates(frequent, prune=True)
        unpruned = generate_candidates(frequent, prune=False)
        assert (1, 2, 3) in [c.items for c in unpruned]
        assert (1, 2, 3) not in [c.items for c in pruned]
        # (1, 3, 4) survives: subsets {1,3}, {1,4}, {3,4} all frequent.
        assert (1, 3, 4) in [c.items for c in pruned]

    def test_prune_keeps_complete_lattice(self):
        frequent = [(1, 2), (1, 3), (2, 3)]
        cands = generate_candidates(frequent, prune=True)
        assert [c.items for c in cands] == [(1, 2, 3)]

    def test_candidates_lexicographic(self):
        frequent = [(1, 2), (1, 5), (2, 3), (2, 4)]
        cands = generate_candidates(frequent, prune=False)
        items = [c.items for c in cands]
        assert items == sorted(items)

    def test_four_itemsets(self):
        frequent = [(1, 2, 3), (1, 2, 4), (1, 3, 4), (2, 3, 4)]
        cands = generate_candidates(frequent, prune=True)
        assert [c.items for c in cands] == [(1, 2, 3, 4)]

    def test_returns_candidatejoin_instances(self):
        (c,) = generate_candidates([(1,), (2,)])
        assert isinstance(c, CandidateJoin)


class TestOpsEstimate:
    def test_positive_and_monotone(self):
        small = candidate_generation_ops(10, 5, 2)
        large = candidate_generation_ops(100, 500, 2)
        assert 0 < small < large

    def test_zero_candidates(self):
        assert candidate_generation_ops(10, 0, 3) == 30
