"""The mining query server: HTTP framing, admission, cache, coalescing.

Most tests drive a real :class:`MiningServer` over real sockets through
:class:`ServerThread` with an *injected* miner, so backend latency is
controlled (sleeps) and call counts observable — the admission and
coalescing behaviours under test are timing-dependent by nature, and a
deterministic backend makes them exact.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.engine import mine
from repro.errors import ConfigurationError
from repro.index import ItemsetIndex
from repro.obs import InMemorySink, ObsContext
from repro.obs.ledger import Ledger
from repro.serve import (
    SERVE_LEDGER_KIND,
    AdmissionController,
    Coalescer,
    DeadlineExpired,
    HttpError,
    MiningServer,
    ResultCache,
    Router,
    ServerThread,
    ShedError,
    read_request,
    validate_stats,
)

ROOT = Path(__file__).resolve().parent.parent


# -- helpers ----------------------------------------------------------------


class CountingMiner:
    """Wraps the real engine; counts calls and optionally sleeps first."""

    def __init__(self, delay: float = 0.0, ledger=None):
        self.delay = delay
        self.ledger = ledger
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, db, **kwargs):
        with self._lock:
            self.calls += 1
        if self.delay:
            time.sleep(self.delay)
        kwargs.setdefault("ledger", self.ledger)
        return mine(db, live=False, **kwargs)


def _client(handle: ServerThread) -> http.client.HTTPConnection:
    return http.client.HTTPConnection(
        "127.0.0.1", handle.port, timeout=30
    )


def _post(conn, path, payload):
    conn.request("POST", path, json.dumps(payload).encode(),
                 {"Content-Type": "application/json"})
    response = conn.getresponse()
    body = json.loads(response.read())
    return response.status, body, {
        k.lower(): v for k, v in response.getheaders()
    }


def _get(conn, path):
    conn.request("GET", path)
    response = conn.getresponse()
    return response.status, json.loads(response.read())


@pytest.fixture
def server_factory(tiny_db):
    """Build + start servers against ``tiny_db``; stops them afterwards."""
    handles: list[ServerThread] = []

    def build(**kwargs) -> ServerThread:
        kwargs.setdefault("datasets", [tiny_db])
        handle = ServerThread(MiningServer(**kwargs)).start()
        handles.append(handle)
        return handle

    yield build
    for handle in handles:
        handle.stop()


# -- HTTP framing -----------------------------------------------------------


class TestHttpFraming:
    def _parse(self, raw: bytes):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_request(reader)

        return asyncio.run(run())

    def test_parses_post_with_body(self):
        request = self._parse(
            b"POST /mine?x=1 HTTP/1.1\r\n"
            b"Host: localhost\r\nContent-Length: 2\r\n\r\n{}"
        )
        assert request.method == "POST"
        assert request.path == "/mine"
        assert request.body == b"{}"
        assert request.keep_alive

    def test_clean_eof_returns_none(self):
        assert self._parse(b"") is None

    def test_http10_defaults_to_close(self):
        request = self._parse(b"GET /healthz HTTP/1.0\r\n\r\n")
        assert not request.keep_alive

    def test_bad_content_length_is_400(self):
        with pytest.raises(HttpError) as excinfo:
            self._parse(
                b"POST /mine HTTP/1.1\r\nContent-Length: ha\r\n\r\n"
            )
        assert excinfo.value.status == 400

    def test_chunked_transfer_is_rejected(self):
        with pytest.raises(HttpError) as excinfo:
            self._parse(
                b"POST /mine HTTP/1.1\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )
        assert excinfo.value.status == 411

    def test_oversized_request_line_is_431(self):
        with pytest.raises(HttpError) as excinfo:
            self._parse(b"GET /" + b"a" * 9000 + b" HTTP/1.1\r\n\r\n")
        assert excinfo.value.status == 431

    def test_invalid_json_body_is_400(self):
        request = self._parse(
            b"POST /mine HTTP/1.1\r\nContent-Length: 3\r\n\r\nnot"
        )
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestRouter:
    def test_unknown_path_is_404(self):
        router = Router()

        async def handler(request):
            return 200, {}, {}

        router.add("GET", "/healthz", handler)
        with pytest.raises(HttpError) as excinfo:
            router.resolve("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405_with_allow(self):
        router = Router()

        async def handler(request):
            return 200, {}, {}

        router.add("POST", "/mine", handler)
        with pytest.raises(HttpError) as excinfo:
            router.resolve("GET", "/mine")
        assert excinfo.value.status == 405
        assert excinfo.value.headers["Allow"] == "POST"


# -- admission (pure, event-loop-free) --------------------------------------


class TestAdmission:
    def test_expired_deadline_rejected_before_consuming_a_slot(self):
        admission = AdmissionController(max_inflight=2)
        deadline = time.monotonic() - 0.001  # already past
        with pytest.raises(DeadlineExpired) as excinfo:
            admission.admit(deadline)
        assert excinfo.value.stage == "admission"
        snap = admission.snapshot()
        assert snap["inflight"] == 0
        assert snap["deadline_rejected"] == 1
        assert snap["shed_total"] == 0

    def test_queue_full_sheds(self):
        admission = AdmissionController(
            max_inflight=1, retry_after_seconds=2.5
        )
        deadline = admission.deadline_for(None)
        admission.admit(deadline)
        with pytest.raises(ShedError) as excinfo:
            admission.admit(deadline)
        assert excinfo.value.retry_after_seconds == 2.5
        admission.release()
        admission.admit(deadline)  # slot freed, admits again
        assert admission.snapshot()["shed_total"] == 1

    def test_cache_lru_and_counters(self):
        cache = ResultCache(max_entries=2)
        cache.put(("a", "1"), {"v": 1})
        cache.put(("b", "2"), {"v": 2})
        assert cache.get(("a", "1")) == {"v": 1}
        cache.put(("c", "3"), {"v": 3})  # evicts ("b","2"), the LRU
        assert cache.get(("b", "2")) is None
        snap = cache.snapshot()
        assert snap["entries"] == 2
        assert snap["hits"] == 1
        assert snap["misses"] == 1


class TestCoalescer:
    def test_concurrent_identical_keys_share_one_run(self):
        coalescer = Coalescer()
        runs = []

        async def scenario():
            async def thunk():
                runs.append(1)
                await asyncio.sleep(0.05)
                return {"answer": 42}

            results = await asyncio.gather(*[
                coalescer.run(("k", "k"), thunk) for _ in range(5)
            ])
            return results

        results = asyncio.run(scenario())
        assert len(runs) == 1
        assert all(payload == {"answer": 42} for payload, _ in results)
        assert sum(1 for _, coalesced in results if coalesced) == 4
        assert coalescer.snapshot()["followers"] == 4


# -- the server over real sockets -------------------------------------------


class TestServerEndpoints:
    def test_mine_topk_rules_and_healthz(self, server_factory, tiny_db):
        handle = server_factory()
        conn = _client(handle)
        status, body = _get(conn, "/healthz")
        assert status == 200 and body["status"] == "ok"

        status, body, _ = _post(conn, "/mine",
                                {"dataset": "tiny", "min_support": 2})
        assert status == 200
        assert body["source"] == "engine"
        expected = mine(tiny_db, min_support=2, live=False)
        assert body["n_itemsets"] == len(expected)
        assert {tuple(i): s for i, s in body["itemsets"]} == expected.itemsets

        status, body, _ = _post(conn, "/topk",
                                {"dataset": "tiny", "min_support": 2, "k": 2})
        assert status == 200
        assert len(body["itemsets"]) == 2

        status, body, _ = _post(
            conn, "/rules",
            {"dataset": "tiny", "min_support": 2, "min_confidence": 0.7},
        )
        assert status == 200
        assert all(rule["confidence"] >= 0.7 for rule in body["rules"])

    def test_error_statuses(self, server_factory):
        handle = server_factory()
        conn = _client(handle)
        status, body, _ = _post(conn, "/mine",
                                {"dataset": "ghost", "min_support": 2})
        assert status == 404

        status, body, _ = _post(
            conn, "/mine",
            {"dataset": "tiny", "min_support": 2, "bogus": 1},
        )
        assert status == 400 and "bogus" in body["error"]

        conn.request("PUT", "/mine", b"{}")
        response = conn.getresponse()
        response.read()
        assert response.status == 405
        assert response.getheader("Allow") == "POST"

        conn.request("POST", "/mine", b"not json")
        response = conn.getresponse()
        body = json.loads(response.read())
        assert response.status == 400 and "JSON" in body["error"]

        # A bad engine config (unknown algorithm) maps to 400, not 500.
        status, body, _ = _post(
            conn, "/mine",
            {"dataset": "tiny", "min_support": 2, "algorithm": "magic"},
        )
        assert status == 400

    def test_cache_hit_answers_without_mining(self, server_factory, tiny_db):
        miner = CountingMiner()
        handle = server_factory(miner=miner)
        conn = _client(handle)
        query = {"dataset": "tiny", "min_support": 2}
        status, first, _ = _post(conn, "/mine", query)
        status, second, _ = _post(conn, "/mine", query)
        assert miner.calls == 1
        assert first["source"] == "engine"
        assert second["source"] == "cache"
        assert second["itemsets"] == first["itemsets"]
        # A different support is a different ledger config -> a miss.
        _post(conn, "/mine", {"dataset": "tiny", "min_support": 3})
        assert miner.calls == 2

    def test_fresh_bypasses_the_cache(self, server_factory):
        miner = CountingMiner()
        handle = server_factory(miner=miner)
        conn = _client(handle)
        query = {"dataset": "tiny", "min_support": 2}
        _post(conn, "/mine", query)
        status, body, _ = _post(conn, "/mine", dict(query, fresh=True))
        assert status == 200
        assert body["source"] == "engine"
        assert miner.calls == 2

    def test_index_serves_at_or_above_floor(self, server_factory, tiny_db,
                                            tmp_path):
        artifact = tmp_path / "tiny.idx"
        ItemsetIndex.build(tiny_db, 2).save(artifact)
        miner = CountingMiner()
        handle = server_factory(indexes=[artifact], miner=miner)
        conn = _client(handle)
        status, body, _ = _post(conn, "/mine",
                                {"dataset": "tiny", "min_support": 3})
        assert status == 200
        assert body["source"] == "index"
        assert miner.calls == 0
        expected = mine(tiny_db, min_support=3, live=False)
        assert {tuple(i): s for i, s in body["itemsets"]} == expected.itemsets
        # CHARM answers closed itemsets; the index must not impersonate it.
        status, body, _ = _post(
            conn, "/mine",
            {"dataset": "tiny", "min_support": 3, "algorithm": "charm"},
        )
        assert status == 200 and body["source"] == "engine"
        assert miner.calls == 1

    def test_index_mismatch_is_rejected_at_boot(self, tiny_db, paper_db,
                                                tmp_path):
        artifact = tmp_path / "paper.idx"
        ItemsetIndex.build(paper_db, 2).save(artifact)
        with pytest.raises(ConfigurationError):
            MiningServer(datasets=[tiny_db], indexes=[artifact])

    def test_stats_document_validates(self, server_factory):
        handle = server_factory()
        conn = _client(handle)
        _post(conn, "/mine", {"dataset": "tiny", "min_support": 2})
        _post(conn, "/mine", {"dataset": "tiny", "min_support": 2})
        status, stats = _get(conn, "/stats")
        assert status == 200
        validate_stats(stats)
        assert stats["requests"]["by_endpoint"]["/mine"] == 2
        assert stats["cache"]["hits"] == 1
        assert stats["datasets"][0]["name"] == "tiny"
        assert stats["datasets"][0]["packed_bytes"] > 0

    def test_validate_stats_rejects_bad_documents(self):
        with pytest.raises(ValueError):
            validate_stats([])
        with pytest.raises(ValueError, match="schema"):
            validate_stats({"schema": 99, "service": "repro-serve"})
        server = MiningServer()
        good = server.stats()
        validate_stats(good)
        del good["admission"]["inflight"]
        with pytest.raises(ValueError, match="admission.inflight"):
            validate_stats(good)


class TestAdmissionOverHttp:
    def test_queue_full_sheds_429_with_retry_after(self, server_factory):
        miner = CountingMiner(delay=0.8)
        handle = server_factory(
            miner=miner, max_inflight=1, retry_after_seconds=3.0,
        )
        first_done = threading.Event()
        first_status = []

        def slow_request():
            conn = _client(handle)
            status, _, _ = _post(
                conn, "/mine",
                {"dataset": "tiny", "min_support": 2, "fresh": True},
            )
            first_status.append(status)
            first_done.set()
            conn.close()

        thread = threading.Thread(target=slow_request)
        thread.start()
        time.sleep(0.25)  # let the slow one occupy the only slot
        conn = _client(handle)
        status, body, headers = _post(
            conn, "/mine", {"dataset": "tiny", "min_support": 3},
        )
        assert status == 429
        assert body["retry_after_seconds"] == 3.0
        assert headers["retry-after"] == "3"
        first_done.wait(timeout=10)
        thread.join(timeout=10)
        assert first_status == [200]
        assert miner.calls == 1  # the shed request never reached the miner

    def test_expired_deadline_rejected_before_mining(self, server_factory):
        miner = CountingMiner()
        handle = server_factory(miner=miner)
        conn = _client(handle)
        status, body, _ = _post(
            conn, "/mine",
            {"dataset": "tiny", "min_support": 2, "deadline_seconds": 0},
        )
        assert status == 504
        assert body["stage"] == "admission"
        assert miner.calls == 0

    def test_slow_backend_times_out_with_504(self, server_factory):
        miner = CountingMiner(delay=1.5)
        handle = server_factory(miner=miner)
        conn = _client(handle)
        started = time.monotonic()
        status, body, _ = _post(
            conn, "/mine",
            {"dataset": "tiny", "min_support": 2, "fresh": True,
             "deadline_seconds": 0.2},
        )
        assert status == 504
        assert body["stage"] == "backend"
        assert time.monotonic() - started < 1.0  # answered before the mine

    def test_healthz_responsive_while_backend_is_slow(self, server_factory,
                                                      tiny_db):
        """The fault-injected shared-memory backend (slow_task) occupies
        the executor; the event loop must keep answering /healthz."""
        from repro.backends.shared_memory_backend import (
            run_eclat_shared_memory,
        )

        def slow_faulty_miner(db, *, algorithm, representation, backend,
                              min_support, obs=None, ledger=None, **options):
            return run_eclat_shared_memory(
                db, min_support, n_workers=2, obs=obs,
                _fault={"slow_task": 0, "slow_seconds": 0.6},
            )

        handle = server_factory(miner=slow_faulty_miner)
        done = threading.Event()
        statuses = []

        def mine_request():
            conn = _client(handle)
            status, _, _ = _post(
                conn, "/mine",
                {"dataset": "tiny", "min_support": 2, "fresh": True},
            )
            statuses.append(status)
            done.set()
            conn.close()

        thread = threading.Thread(target=mine_request)
        thread.start()
        time.sleep(0.1)
        conn = _client(handle)
        started = time.monotonic()
        status, body = _get(conn, "/healthz")
        elapsed = time.monotonic() - started
        assert status == 200
        assert elapsed < 0.4  # did not wait for the 0.6s-stalled mine
        done.wait(timeout=15)
        thread.join(timeout=15)
        assert statuses == [200]


class TestCoalescingOverHttp:
    def test_identical_concurrent_requests_share_one_mine(
        self, server_factory, tmp_path
    ):
        """N identical concurrent queries -> exactly one engine run (one
        ledger ``mine`` record) and N ``serve-query`` records."""
        ledger = Ledger(tmp_path / "runs")
        miner = CountingMiner(delay=0.5, ledger=ledger)
        handle = server_factory(miner=miner, ledger=ledger, max_inflight=8)
        n_clients = 4
        barrier = threading.Barrier(n_clients)
        results = []
        lock = threading.Lock()

        def client():
            conn = _client(handle)
            barrier.wait(timeout=10)
            status, body, _ = _post(
                conn, "/mine",
                {"dataset": "tiny", "min_support": 2, "fresh": True},
            )
            with lock:
                results.append((status, body["source"], body["n_itemsets"]))
            conn.close()

        threads = [threading.Thread(target=client) for _ in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert miner.calls == 1
        assert [status for status, _, _ in results] == [200] * n_clients
        assert len({n for _, _, n in results}) == 1  # same answer fanned out
        sources = sorted(source for _, source, _ in results)
        assert sources.count("coalesced") == n_clients - 1

        records = ledger.records()
        mine_records = [r for r in records if r.kind == "mine"]
        serve_records = [r for r in records if r.kind == SERVE_LEDGER_KIND]
        assert len(mine_records) == 1
        assert len(serve_records) == n_clients
        assert {r.extra["source"] for r in serve_records} <= {
            "engine", "coalesced"
        }
        # Every serve record carries the same identity pair the cache used.
        assert len({r.config_hash for r in serve_records}) == 1


class TestObservability:
    def test_requests_get_their_own_trace_lane(self, server_factory):
        obs = ObsContext(sink=InMemorySink())
        handle = server_factory(obs=obs)
        conn = _client(handle)
        _post(conn, "/mine", {"dataset": "tiny", "min_support": 2})
        _post(conn, "/mine", {"dataset": "tiny", "min_support": 3})
        events = obs.sink.events
        request_lanes = {
            e.tid for e in events if e.name.startswith("serve.request")
        }
        assert len(request_lanes) == 2  # one lane per request id
        # Engine spans ran inside the request lanes, not the default one.
        engine_lanes = {
            e.tid for e in events if e.name.startswith("engine.mine")
        }
        assert engine_lanes <= request_lanes
        assert obs.metrics.counter("serve.requests").value == 2
        assert obs.metrics.counter("serve.status.200").value == 2

    def test_serve_query_ledger_record_shape(self, server_factory, tiny_db,
                                             tmp_path):
        ledger = Ledger(tmp_path / "runs")
        handle = server_factory(ledger=ledger)
        conn = _client(handle)
        _post(conn, "/topk", {"dataset": "tiny", "min_support": 2, "k": 3})
        record = [
            r for r in ledger.records() if r.kind == SERVE_LEDGER_KIND
        ][-1]
        assert record.config["query"] == "topk"
        assert record.config["k"] == 3
        assert record.dataset["name"] == "tiny"
        assert record.extra["endpoint"] == "topk"
        assert record.extra["source"] == "engine"


class TestServeCli:
    def test_serve_help_smoke(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--help"],
            capture_output=True, text=True, timeout=60,
            env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
            cwd=ROOT,
        )
        assert completed.returncode == 0
        for needle in ("--max-inflight", "--deadline-seconds",
                       "--cache-entries", "--index"):
            assert needle in completed.stdout
