"""Unit tests for canonical itemset utilities."""

from repro.core.itemset import (
    canonical,
    is_canonical,
    is_subset,
    join,
    proper_subsets,
    share_prefix,
    subsets_of_size,
)


class TestCanonical:
    def test_sorts_and_dedups(self):
        assert canonical([3, 1, 3, 2]) == (1, 2, 3)

    def test_empty(self):
        assert canonical([]) == ()

    def test_is_canonical(self):
        assert is_canonical((1, 2, 5))
        assert not is_canonical((2, 1))
        assert not is_canonical((1, 1))
        assert is_canonical(())
        assert is_canonical((4,))


class TestPrefixJoin:
    def test_share_prefix_true(self):
        assert share_prefix((1, 2, 3), (1, 2, 5))

    def test_share_prefix_false_on_mismatch(self):
        assert not share_prefix((1, 2, 3), (1, 4, 5))

    def test_share_prefix_false_on_length_mismatch(self):
        assert not share_prefix((1, 2), (1, 2, 3))

    def test_share_prefix_singletons(self):
        # Any two 1-itemsets share the empty prefix.
        assert share_prefix((1,), (9,))

    def test_share_prefix_empty(self):
        assert not share_prefix((), ())

    def test_join(self):
        assert join((1, 2, 3), (1, 2, 5)) == (1, 2, 3, 5)

    def test_join_singletons(self):
        assert join((1,), (4,)) == (1, 4)


class TestSubsets:
    def test_subsets_of_size(self):
        assert list(subsets_of_size((1, 2, 3), 2)) == [(1, 2), (1, 3), (2, 3)]

    def test_proper_subsets(self):
        assert list(proper_subsets((1, 2, 3))) == [(1, 2), (1, 3), (2, 3)]

    def test_proper_subsets_of_singleton(self):
        assert list(proper_subsets((1,))) == [()]

    def test_is_subset(self):
        assert is_subset((1, 3), (1, 2, 3, 4))
        assert not is_subset((1, 5), (1, 2, 3, 4))
        assert is_subset((), (1,))
        assert not is_subset((1, 2), (2,))
