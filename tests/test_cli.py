"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.datasets.fimi import write_fimi
from repro.datasets.transaction_db import TransactionDatabase


@pytest.fixture
def fimi_file(tmp_path):
    db = TransactionDatabase(
        [[1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3]] * 3, name="clidb"
    )
    path = tmp_path / "data.dat"
    write_fimi(db, path)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_defaults(self):
        args = build_parser().parse_args(["mine", "x.dat"])
        assert args.algorithm == "eclat"
        assert args.min_support == 0.5

    def test_support_parsing(self):
        args = build_parser().parse_args(["mine", "x.dat", "-s", "3"])
        assert args.min_support == 3 and isinstance(args.min_support, int)
        args = build_parser().parse_args(["mine", "x.dat", "-s", "0.25"])
        assert args.min_support == 0.25


class TestCommands:
    def test_mine_from_file(self, fimi_file, capsys):
        assert main(["mine", fimi_file, "-s", "2", "-t", "3"]) == 0
        out = capsys.readouterr().out
        assert "frequent itemsets" in out
        assert "{2}:" in out or "{1}" in out

    @pytest.mark.parametrize("algo", ["apriori", "fpgrowth", "charm"])
    def test_mine_all_algorithms(self, fimi_file, algo, capsys):
        assert main(["mine", fimi_file, "-s", "2", "-a", algo]) == 0
        assert algo in capsys.readouterr().out

    def test_mine_named_dataset(self, capsys):
        assert main(["mine", "T10I4", "-s", "0.1", "-t", "2"]) == 0
        assert "T10I4" in capsys.readouterr().out

    def test_rules(self, fimi_file, capsys):
        assert main(["rules", fimi_file, "-s", "2", "-c", "0.5"]) == 0
        assert "rules at confidence" in capsys.readouterr().out

    def test_scalability(self, fimi_file, capsys):
        assert main(
            ["scalability", fimi_file, "-s", "2", "--max-threads", "32"]
        ) == 0
        out = capsys.readouterr().out
        assert "simulated runtime" in out
        assert "speedup curve" in out

    def test_unknown_source_errors(self):
        with pytest.raises(SystemExit, match="neither a file nor a dataset"):
            main(["mine", "does-not-exist"])


class TestIndexCommands:
    @pytest.fixture
    def index_file(self, fimi_file, tmp_path, capsys):
        path = tmp_path / "clidb.idx"
        assert main(["index", "build", fimi_file, str(path), "-s", "1"]) == 0
        capsys.readouterr()  # swallow the build banner
        return str(path)

    def test_build_reports_artifact(self, fimi_file, tmp_path, capsys):
        path = tmp_path / "out.idx"
        assert main(["index", "build", fimi_file, str(path), "-s", "2"]) == 0
        out = capsys.readouterr().out
        assert "index written to" in out
        assert "closed itemsets" in out
        assert path.exists()

    def test_query_listing_matches_mine(self, fimi_file, index_file, capsys):
        assert main(["index", "query", index_file, "-s", "6", "-t", "3"]) == 0
        indexed = capsys.readouterr().out.splitlines()
        assert main(["mine", fimi_file, "-s", "6", "-t", "3"]) == 0
        mined = capsys.readouterr().out.splitlines()
        # Same ranked listing; only the summary line differs.
        assert indexed[1:] == mined[1:]

    def test_query_single_itemset(self, index_file, capsys):
        assert main(["index", "query", index_file, "--itemset", "1 2"]) == 0
        assert capsys.readouterr().out.strip() == "{1,2}: 9"

    def test_query_rules(self, index_file, capsys):
        assert main(
            ["index", "query", index_file, "--rules", "-s", "6", "-c", "0.5"]
        ) == 0
        assert "rules at confidence" in capsys.readouterr().out

    def test_info_dumps_header(self, index_file, capsys):
        import json

        assert main(["index", "info", index_file]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["kind"] == "itemset-index"
        assert info["floor"] == 1
        # read_fimi names the database after the file stem.
        assert info["dataset"]["name"] == "data"

    def test_query_below_floor_errors(self, fimi_file, tmp_path, capsys):
        path = tmp_path / "high.idx"
        assert main(["index", "build", fimi_file, str(path), "-s", "6"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="lower floor"):
            main(["index", "query", str(path), "-s", "2"])

    def test_open_missing_artifact_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="error"):
            main(["index", "query", str(tmp_path / "missing.idx")])

    def test_query_records_ledger_run(self, index_file, tmp_path):
        from repro.obs.ledger import Ledger

        ledger_dir = tmp_path / "runs"
        assert main(
            ["index", "query", index_file, "-s", "6",
             "--ledger-dir", str(ledger_dir)]
        ) == 0
        records = Ledger(ledger_dir).last(5)
        assert [r.kind for r in records] == ["index-query"]
        assert records[0].config["query"] == "frequent_at"
