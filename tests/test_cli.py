"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.datasets.fimi import write_fimi
from repro.datasets.transaction_db import TransactionDatabase


@pytest.fixture
def fimi_file(tmp_path):
    db = TransactionDatabase(
        [[1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3]] * 3, name="clidb"
    )
    path = tmp_path / "data.dat"
    write_fimi(db, path)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_defaults(self):
        args = build_parser().parse_args(["mine", "x.dat"])
        assert args.algorithm == "eclat"
        assert args.min_support == 0.5

    def test_support_parsing(self):
        args = build_parser().parse_args(["mine", "x.dat", "-s", "3"])
        assert args.min_support == 3 and isinstance(args.min_support, int)
        args = build_parser().parse_args(["mine", "x.dat", "-s", "0.25"])
        assert args.min_support == 0.25


class TestCommands:
    def test_mine_from_file(self, fimi_file, capsys):
        assert main(["mine", fimi_file, "-s", "2", "-t", "3"]) == 0
        out = capsys.readouterr().out
        assert "frequent itemsets" in out
        assert "{2}:" in out or "{1}" in out

    @pytest.mark.parametrize("algo", ["apriori", "fpgrowth", "charm"])
    def test_mine_all_algorithms(self, fimi_file, algo, capsys):
        assert main(["mine", fimi_file, "-s", "2", "-a", algo]) == 0
        assert algo in capsys.readouterr().out

    def test_mine_named_dataset(self, capsys):
        assert main(["mine", "T10I4", "-s", "0.1", "-t", "2"]) == 0
        assert "T10I4" in capsys.readouterr().out

    def test_rules(self, fimi_file, capsys):
        assert main(["rules", fimi_file, "-s", "2", "-c", "0.5"]) == 0
        assert "rules at confidence" in capsys.readouterr().out

    def test_scalability(self, fimi_file, capsys):
        assert main(
            ["scalability", fimi_file, "-s", "2", "--max-threads", "32"]
        ) == 0
        out = capsys.readouterr().out
        assert "simulated runtime" in out
        assert "speedup curve" in out

    def test_unknown_source_errors(self):
        with pytest.raises(SystemExit, match="neither a file nor a dataset"):
            main(["mine", "does-not-exist"])


class TestIndexCommands:
    @pytest.fixture
    def index_file(self, fimi_file, tmp_path, capsys):
        path = tmp_path / "clidb.idx"
        assert main(["index", "build", fimi_file, str(path), "-s", "1"]) == 0
        capsys.readouterr()  # swallow the build banner
        return str(path)

    def test_build_reports_artifact(self, fimi_file, tmp_path, capsys):
        path = tmp_path / "out.idx"
        assert main(["index", "build", fimi_file, str(path), "-s", "2"]) == 0
        out = capsys.readouterr().out
        assert "index written to" in out
        assert "closed itemsets" in out
        assert path.exists()

    def test_query_listing_matches_mine(self, fimi_file, index_file, capsys):
        assert main(["index", "query", index_file, "-s", "6", "-t", "3"]) == 0
        indexed = capsys.readouterr().out.splitlines()
        assert main(["mine", fimi_file, "-s", "6", "-t", "3"]) == 0
        mined = capsys.readouterr().out.splitlines()
        # Same ranked listing; only the summary line differs.
        assert indexed[1:] == mined[1:]

    def test_query_single_itemset(self, index_file, capsys):
        assert main(["index", "query", index_file, "--itemset", "1 2"]) == 0
        assert capsys.readouterr().out.strip() == "{1,2}: 9"

    def test_query_rules(self, index_file, capsys):
        assert main(
            ["index", "query", index_file, "--rules", "-s", "6", "-c", "0.5"]
        ) == 0
        assert "rules at confidence" in capsys.readouterr().out

    def test_info_dumps_header(self, index_file, capsys):
        import json

        assert main(["index", "info", index_file]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["kind"] == "itemset-index"
        assert info["floor"] == 1
        # read_fimi names the database after the file stem.
        assert info["dataset"]["name"] == "data"

    def test_query_below_floor_errors(self, fimi_file, tmp_path, capsys):
        path = tmp_path / "high.idx"
        assert main(["index", "build", fimi_file, str(path), "-s", "6"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="lower floor"):
            main(["index", "query", str(path), "-s", "2"])

    def test_open_missing_artifact_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="error"):
            main(["index", "query", str(tmp_path / "missing.idx")])

    def test_query_records_ledger_run(self, index_file, tmp_path):
        from repro.obs.ledger import Ledger

        ledger_dir = tmp_path / "runs"
        assert main(
            ["index", "query", index_file, "-s", "6",
             "--ledger-dir", str(ledger_dir)]
        ) == 0
        records = Ledger(ledger_dir).last(5)
        assert [r.kind for r in records] == ["index-query"]
        assert records[0].config["query"] == "frequent_at"


class TestOutOfCore:
    def test_mine_out_of_core_matches_in_memory(self, fimi_file, capsys):
        assert main(["mine", fimi_file, "-s", "2", "-t", "5"]) == 0
        expected = capsys.readouterr().out
        assert main(
            ["mine", fimi_file, "-s", "2", "-t", "5", "--out-of-core",
             "--partitions", "3"]
        ) == 0
        assert capsys.readouterr().out == expected

    def test_memory_budget_flag(self, fimi_file, capsys):
        assert main(
            ["mine", fimi_file, "-s", "2", "--out-of-core",
             "--max-memory-bytes", "4096"]
        ) == 0
        assert "frequent itemsets" in capsys.readouterr().out

    def test_named_dataset_rejected(self):
        with pytest.raises(SystemExit, match="out-of-core needs a FIMI file"):
            main(["mine", "T10I4", "-s", "0.1", "--out-of-core"])

    def test_flag_parsing(self):
        args = build_parser().parse_args(
            ["mine", "x.dat", "--out-of-core", "--max-memory-bytes", "1048576",
             "--partitions", "4"]
        )
        assert args.out_of_core is True
        assert args.max_memory_bytes == 1048576
        assert args.partitions == 4
        defaults = build_parser().parse_args(["mine", "x.dat"])
        assert defaults.out_of_core is False
        assert defaults.max_memory_bytes is None
        assert defaults.partitions is None

    def test_knobs_without_out_of_core_rejected(self, fimi_file):
        with pytest.raises(SystemExit, match="add --out-of-core"):
            main(["mine", fimi_file, "-s", "2", "--max-memory-bytes", "4096"])
        with pytest.raises(SystemExit, match="add --out-of-core"):
            main(["mine", fimi_file, "-s", "2", "--partitions", "2"])


class TestProgressLine:
    """Satellite bugfix: ``--progress`` must never leave a half-drawn
    ``\\r`` status line on stderr."""

    def _render_frames(self, line):
        line.render({"progress": {"fraction": 0.5, "completed": 1,
                                  "total": 2},
                     "state": "running", "eta_seconds": 1.0,
                     "elapsed_seconds": 1.0})

    def test_error_path_erases_the_line(self, capsys):
        from repro.cli import _ProgressLine

        line = _ProgressLine()
        self._render_frames(line)
        line.finish(error=True)
        err = capsys.readouterr().err
        # The last frame is an all-spaces erase returning to column 0 — a
        # traceback printed next starts on a clean line.
        assert err.endswith("\r")
        erase = err.rsplit("\r", 2)[-2]
        assert erase and set(erase) == {" "}
        assert line.width == 0

    def test_success_path_newline_terminates(self, capsys):
        from repro.cli import _ProgressLine

        line = _ProgressLine()
        self._render_frames(line)
        line.finish(error=False)
        assert capsys.readouterr().err.endswith("\n")
        assert line.width == 0

    def test_finish_without_frames_is_silent(self, capsys):
        from repro.cli import _ProgressLine

        line = _ProgressLine()
        line.finish(error=True)
        line.finish(error=False)
        assert capsys.readouterr().err == ""

    def test_repaint_pads_over_longer_previous_frame(self, capsys):
        from repro.cli import _ProgressLine

        line = _ProgressLine()
        line.render({"progress": {"fraction": 0.5, "completed": 50,
                                  "total": 100},
                     "state": "running", "eta_seconds": 100.0,
                     "elapsed_seconds": 100.0})
        first_width = line.width
        line.render({"progress": {"fraction": 1.0, "completed": 2,
                                  "total": 2},
                     "state": "done", "eta_seconds": 0.0,
                     "elapsed_seconds": 1.0})
        frames = capsys.readouterr().err.split("\r")
        assert len(frames[-1]) >= first_width  # stale tail painted over

    def test_cli_error_leaves_stderr_clean(self, tmp_path, capsys,
                                           monkeypatch):
        # Integration: a run that dies mid-mine with --progress must not
        # leave the cursor mid-line (the error text ends the stream).
        monkeypatch.setenv("REPRO_LIVE", "0")
        bad = tmp_path / "bad.dat"
        bad.write_text("1 2\nboom\n", encoding="utf-8")
        with pytest.raises(SystemExit, match="non-integer"):
            main(["mine", str(bad), "-s", "1", "--out-of-core",
                  "--progress"])
        err = capsys.readouterr().err
        assert not err or err.endswith("\r") or err.endswith("\n")
