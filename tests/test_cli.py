"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.datasets.fimi import write_fimi
from repro.datasets.transaction_db import TransactionDatabase


@pytest.fixture
def fimi_file(tmp_path):
    db = TransactionDatabase(
        [[1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3]] * 3, name="clidb"
    )
    path = tmp_path / "data.dat"
    write_fimi(db, path)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mine_defaults(self):
        args = build_parser().parse_args(["mine", "x.dat"])
        assert args.algorithm == "eclat"
        assert args.min_support == 0.5

    def test_support_parsing(self):
        args = build_parser().parse_args(["mine", "x.dat", "-s", "3"])
        assert args.min_support == 3 and isinstance(args.min_support, int)
        args = build_parser().parse_args(["mine", "x.dat", "-s", "0.25"])
        assert args.min_support == 0.25


class TestCommands:
    def test_mine_from_file(self, fimi_file, capsys):
        assert main(["mine", fimi_file, "-s", "2", "-t", "3"]) == 0
        out = capsys.readouterr().out
        assert "frequent itemsets" in out
        assert "{2}:" in out or "{1}" in out

    @pytest.mark.parametrize("algo", ["apriori", "fpgrowth", "charm"])
    def test_mine_all_algorithms(self, fimi_file, algo, capsys):
        assert main(["mine", fimi_file, "-s", "2", "-a", algo]) == 0
        assert algo in capsys.readouterr().out

    def test_mine_named_dataset(self, capsys):
        assert main(["mine", "T10I4", "-s", "0.1", "-t", "2"]) == 0
        assert "T10I4" in capsys.readouterr().out

    def test_rules(self, fimi_file, capsys):
        assert main(["rules", fimi_file, "-s", "2", "-c", "0.5"]) == 0
        assert "rules at confidence" in capsys.readouterr().out

    def test_scalability(self, fimi_file, capsys):
        assert main(
            ["scalability", fimi_file, "-s", "2", "--max-threads", "32"]
        ) == 0
        out = capsys.readouterr().out
        assert "simulated runtime" in out
        assert "speedup curve" in out

    def test_unknown_source_errors(self):
        with pytest.raises(SystemExit, match="neither a file nor a dataset"):
            main(["mine", "does-not-exist"])
