"""Unit tests for the FP-growth baseline."""

import pytest

from repro.core import apriori, fpgrowth
from repro.core.fpgrowth import FPTree, _build_tree


class TestFPTree:
    def test_insert_and_counts(self):
        tree = FPTree()
        tree.insert([1, 2, 3], 1)
        tree.insert([1, 2], 2)
        root_child = tree.root.children[1]
        assert root_child.count == 3
        assert root_child.children[2].count == 3
        assert root_child.children[2].children[3].count == 1

    def test_header_chains(self):
        tree = FPTree()
        tree.insert([1, 2], 1)
        tree.insert([3, 2], 1)
        nodes = list(tree.item_nodes(2))
        assert len(nodes) == 2
        assert all(n.item == 2 for n in nodes)

    def test_prefix_path(self):
        tree = FPTree()
        tree.insert([1, 2, 3], 1)
        node = tree.root.children[1].children[2].children[3]
        assert tree.prefix_path(node) == [1, 2]

    def test_single_path_detection(self):
        tree = FPTree()
        tree.insert([1, 2, 3], 2)
        assert tree.is_single_path() == [(1, 2), (2, 2), (3, 2)]
        tree.insert([1, 9], 1)
        assert tree.is_single_path() is None

    def test_build_tree_filters_and_orders(self):
        tree = _build_tree(
            [([1, 2, 3], 1), ([2, 3], 1), ([3], 1)],
            {1: 1, 2: 2, 3: 3},
            min_sup=2,
        )
        # Item 1 filtered; item 3 (count 3) becomes the root-most item.
        assert 3 in tree.root.children
        assert 1 not in tree.header


class TestMining:
    def test_tiny_db(self, tiny_db):
        result = fpgrowth(tiny_db, 2)
        assert result.itemsets == {
            (1,): 4, (2,): 4, (3,): 4,
            (1, 2): 3, (1, 3): 3, (2, 3): 3,
            (1, 2, 3): 2,
        }

    def test_figure2_example(self, paper_db):
        result = fpgrowth(paper_db, 3)
        assert result.support((0, 2, 4)) == 3

    def test_empty_db(self, empty_db):
        assert len(fpgrowth(empty_db, 1)) == 0

    def test_single_transaction(self):
        from repro.datasets import TransactionDatabase

        db = TransactionDatabase([[1, 2, 3]])
        result = fpgrowth(db, 1)
        # Every non-empty subset of {1,2,3} with support 1.
        assert len(result) == 7
        assert all(s == 1 for s in result.itemsets.values())

    def test_matches_apriori_dense(self, small_dense_db):
        fp = fpgrowth(small_dense_db, 0.4)
        ap = apriori(small_dense_db, 0.4, "tidset")
        assert fp.same_itemsets(ap)

    def test_matches_apriori_sparse(self, small_sparse_db):
        fp = fpgrowth(small_sparse_db, 0.05)
        ap = apriori(small_sparse_db, 0.05, "tidset")
        assert fp.same_itemsets(ap)

    @pytest.mark.parametrize("support", [1, 2, 3, 4, 5])
    def test_all_thresholds_tiny(self, tiny_db, support):
        fp = fpgrowth(tiny_db, support)
        ap = apriori(tiny_db, support, "tidset")
        assert fp.same_itemsets(ap)

    def test_result_labels(self, tiny_db):
        result = fpgrowth(tiny_db, 2)
        assert result.algorithm == "fpgrowth"
        assert result.representation == "fptree"
