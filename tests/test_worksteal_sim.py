"""The nested-task simulator predicts the finding-4 crossover.

Static top-level dispatch vs simulated work stealing on the same task
tree: stealing must win when top-level classes < threads (the paper's
scaling ceiling) and must lose when the per-steal payload dominates the
compute it unlocks.  Plus the conservation invariants that keep the
event-driven scheduler honest.
"""

import pytest

from repro.errors import SimulationError
from repro.machine import BLACKLIGHT
from repro.parallel import (
    SimTask,
    eclat_task_tree,
    simulate_static_tree,
    simulate_worksteal_tree,
    worksteal_advantage,
)


def total_tasks(roots):
    return sum(r.subtree_tasks() for r in roots)


def total_seconds(roots):
    return sum(r.subtree_seconds() for r in roots)


class TestTreeBuilder:
    def test_shape_and_totals(self):
        roots = eclat_task_tree(
            n_classes=3, depth=2, branching=2, task_seconds=1.0)
        # Each class: 1 + 2 + 4 = 7 tasks.
        assert total_tasks(roots) == 21
        assert total_seconds(roots) == pytest.approx(21.0)

    def test_invalid_shapes_raise(self):
        with pytest.raises(SimulationError):
            eclat_task_tree(n_classes=-1, depth=1, branching=1,
                            task_seconds=1.0)
        with pytest.raises(SimulationError):
            eclat_task_tree(n_classes=1, depth=1, branching=0,
                            task_seconds=1.0)


class TestStaticDispatch:
    def test_parallelism_capped_at_root_count(self):
        """The finding-4 ceiling in one assertion: 2 roots on 8 threads
        run exactly as fast as on 2 threads."""
        roots = eclat_task_tree(
            n_classes=2, depth=4, branching=2, task_seconds=1.0)
        wide = simulate_static_tree(roots, 8)
        narrow = simulate_static_tree(roots, 2)
        assert wide.makespan == pytest.approx(narrow.makespan)
        # Six threads never receive any work.
        assert (wide.thread_busy == 0).sum() == 6

    def test_work_is_conserved(self):
        roots = eclat_task_tree(
            n_classes=5, depth=3, branching=2, task_seconds=0.5)
        out = simulate_static_tree(roots, 3)
        assert out.total_busy == pytest.approx(total_seconds(roots))
        assert out.n_tasks == total_tasks(roots)
        assert out.n_steal_events == 0

    def test_empty_tree(self):
        out = simulate_static_tree([], 4)
        assert out.makespan == 0.0
        assert out.n_tasks == 0

    def test_bad_thread_count_raises(self):
        with pytest.raises(SimulationError):
            simulate_static_tree([], 0)


class TestWorkstealSim:
    def test_executes_every_task_exactly_once(self):
        roots = eclat_task_tree(
            n_classes=3, depth=4, branching=2, task_seconds=1e-3)
        out = simulate_worksteal_tree(roots, 6)
        assert out.n_tasks == total_tasks(roots)
        # Busy time = all compute plus exactly the steal tax it charged.
        assert out.total_busy == pytest.approx(
            total_seconds(roots) + out.steal_seconds)

    def test_single_thread_never_steals(self):
        roots = eclat_task_tree(
            n_classes=3, depth=3, branching=2, task_seconds=1e-3)
        out = simulate_worksteal_tree(roots, 1)
        assert out.n_steal_events == 0
        assert out.makespan == pytest.approx(total_seconds(roots))

    def test_stealing_wins_when_classes_fewer_than_threads(self):
        """The crossover's winning side: 4 deep classes, 16 threads."""
        roots = eclat_task_tree(
            n_classes=4, depth=6, branching=2, task_seconds=1e-4,
            payload_bytes=512)
        report = worksteal_advantage(roots, 16, machine=BLACKLIGHT)
        assert report["speedup"] > 1.3
        assert report["steal_events"] > 0

    def test_stealing_loses_when_payload_dominates(self):
        """The losing side: near-zero compute, megabytes per migration —
        the simulator must price the NumaLink traffic and say no."""
        roots = eclat_task_tree(
            n_classes=4, depth=6, branching=2, task_seconds=1e-7,
            payload_bytes=4 * 1024 * 1024)
        report = worksteal_advantage(roots, 16, machine=BLACKLIGHT)
        assert report["speedup"] < 1.0
        assert report["stolen_bytes"] > 0

    def test_wide_shallow_tree_beats_nothing(self):
        """With roots >= threads static dispatch already balances; the
        steal tax means stealing cannot meaningfully win."""
        roots = eclat_task_tree(
            n_classes=32, depth=0, branching=1, task_seconds=1e-3)
        report = worksteal_advantage(roots, 8, machine=BLACKLIGHT)
        assert report["speedup"] == pytest.approx(1.0, rel=0.05)

    def test_negative_cpu_seconds_rejected(self):
        with pytest.raises(SimulationError):
            simulate_worksteal_tree([SimTask(cpu_seconds=-1.0)], 2)

    def test_imbalance_property(self):
        roots = [SimTask(cpu_seconds=3.0), SimTask(cpu_seconds=1.0)]
        out = simulate_static_tree(roots, 2)
        assert out.imbalance == pytest.approx(0.5)
