"""Unit tests for the three vertical representations.

Includes the paper's own worked diffset example (Figure 2) as a fixture:
six transactions over items A..F, threshold 3.
"""

import numpy as np
import pytest

from repro.representations import (
    BitvectorRepresentation,
    DiffsetRepresentation,
    TidsetRepresentation,
    get_representation,
)
from repro.representations.base import OpCost, Vertical
from repro.representations.bitvector import (
    bits_to_tids,
    popcount,
    tids_to_bits,
    words_for,
)
from repro.representations.diffset import setdiff_sorted
from repro.representations.tidset import intersect_sorted

A, B, C, D, E, F = range(6)


class TestSortedSetKernels:
    def test_intersect_basic(self):
        a = np.array([1, 3, 5, 7], dtype=np.int32)
        b = np.array([3, 4, 5, 9], dtype=np.int32)
        assert intersect_sorted(a, b).tolist() == [3, 5]

    def test_intersect_empty(self):
        a = np.array([1, 2], dtype=np.int32)
        empty = np.array([], dtype=np.int32)
        assert intersect_sorted(a, empty).size == 0
        assert intersect_sorted(empty, a).size == 0

    def test_intersect_disjoint(self):
        a = np.array([1, 2], dtype=np.int32)
        b = np.array([3, 4], dtype=np.int32)
        assert intersect_sorted(a, b).size == 0

    def test_intersect_identical(self):
        a = np.array([2, 4, 6], dtype=np.int32)
        assert intersect_sorted(a, a.copy()).tolist() == [2, 4, 6]

    def test_intersect_value_beyond_range(self):
        # Largest element of one array exceeds all of the other (exercises
        # the searchsorted clamp).
        a = np.array([1, 99], dtype=np.int32)
        b = np.array([1, 2, 3], dtype=np.int32)
        assert intersect_sorted(a, b).tolist() == [1]

    def test_setdiff_basic(self):
        a = np.array([1, 2, 3, 4], dtype=np.int32)
        b = np.array([2, 4], dtype=np.int32)
        assert setdiff_sorted(a, b).tolist() == [1, 3]

    def test_setdiff_empty_cases(self):
        a = np.array([1, 2], dtype=np.int32)
        empty = np.array([], dtype=np.int32)
        assert setdiff_sorted(a, empty).tolist() == [1, 2]
        assert setdiff_sorted(empty, a).size == 0

    def test_setdiff_superset(self):
        a = np.array([1, 2], dtype=np.int32)
        b = np.array([0, 1, 2, 3], dtype=np.int32)
        assert setdiff_sorted(a, b).size == 0

    def test_setdiff_value_beyond_range(self):
        a = np.array([5, 99], dtype=np.int32)
        b = np.array([1, 5], dtype=np.int32)
        assert setdiff_sorted(a, b).tolist() == [99]


class TestBitKernels:
    def test_words_for(self):
        assert words_for(0) == 0
        assert words_for(1) == 1
        assert words_for(64) == 1
        assert words_for(65) == 2

    def test_pack_unpack_roundtrip(self):
        tids = np.array([0, 5, 63, 64, 100], dtype=np.int64)
        words = tids_to_bits(tids, 128)
        assert words.size == 2
        assert bits_to_tids(words).tolist() == tids.tolist()

    def test_popcount(self):
        tids = np.array([0, 5, 63, 64, 100], dtype=np.int64)
        assert popcount(tids_to_bits(tids, 128)) == 5
        assert popcount(np.empty(0, dtype=np.uint64)) == 0

    def test_empty_tids(self):
        words = tids_to_bits(np.empty(0, dtype=np.int64), 70)
        assert popcount(words) == 0
        assert bits_to_tids(words).size == 0


@pytest.mark.parametrize("name", ["tidset", "bitvector", "diffset"])
class TestRepresentationContract:
    def test_registry_lookup(self, name):
        rep = get_representation(name)
        assert rep.name == name

    def test_singleton_supports(self, paper_db, name):
        rep = get_representation(name)
        singletons = rep.build_singletons(paper_db)
        supports = [v.support for v in singletons]
        assert supports == [4, 3, 5, 1, 6, 2]  # A..F in Figure 2

    def test_min_support_skips_payloads(self, paper_db, name):
        rep = get_representation(name)
        singletons = rep.build_singletons(paper_db, min_support=3)
        # D (support 1) and F (support 2) get no payload but keep support.
        assert singletons[D].support == 1
        assert singletons[D].payload.size == 0
        assert singletons[F].support == 2
        assert singletons[A].payload.size > 0

    def test_combine_pair_support(self, paper_db, name):
        rep = get_representation(name)
        s = rep.build_singletons(paper_db)
        combined, cost = rep.combine(s[A], s[C])
        assert combined.support == 3  # A C in {t0, t1, t2}
        assert isinstance(cost, OpCost)
        assert cost.cpu_ops > 0

    def test_combine_triple_support(self, paper_db, name):
        rep = get_representation(name)
        s = rep.build_singletons(paper_db)
        ac, _ = rep.combine(s[A], s[C])
        ae, _ = rep.combine(s[A], s[E])
        ace, _ = rep.combine(ac, ae)
        assert ace.support == 3  # ACE in {t0, t1, t2}

    def test_payload_bytes_positive(self, paper_db, name):
        rep = get_representation(name)
        s = rep.build_singletons(paper_db)
        # A misses two transactions, so every format stores something.
        assert rep.payload_bytes(s[A]) > 0
        assert rep.generation_bytes(s) == sum(rep.payload_bytes(v) for v in s)

    def test_singleton_build_cost(self, paper_db, name):
        rep = get_representation(name)
        cost = rep.singleton_build_cost(paper_db)
        assert cost.cpu_ops == sum(t.size for t in paper_db)


class TestFigure2DiffsetExample:
    """The worked example from the paper's Figure 2."""

    def test_level1_diffsets(self, paper_db):
        rep = DiffsetRepresentation()
        s = rep.build_singletons(paper_db)
        assert s[A].payload.tolist() == [3, 5]  # d(A)
        assert s[C].payload.tolist() == [4]     # d(C)
        assert s[E].payload.tolist() == []      # d(E): E in every transaction

    def test_d_ac_recurrence(self, paper_db):
        """d(AC) = d(C) - d(A); support(AC) = support(A) - |d(AC)|."""
        rep = DiffsetRepresentation()
        s = rep.build_singletons(paper_db)
        ac, _ = rep.combine(s[A], s[C])
        assert ac.payload.tolist() == [4]
        assert ac.support == 4 - 1

    def test_d_ace_recurrence(self, paper_db):
        rep = DiffsetRepresentation()
        s = rep.build_singletons(paper_db)
        ac, _ = rep.combine(s[A], s[C])
        ae, _ = rep.combine(s[A], s[E])
        ace, _ = rep.combine(ac, ae)
        assert ace.support == ac.support - ace.payload.size


class TestCrossRepresentationIdentity:
    def test_pair_supports_agree_everywhere(self, small_dense_db):
        tid = TidsetRepresentation()
        bit = BitvectorRepresentation()
        dif = DiffsetRepresentation()
        st = tid.build_singletons(small_dense_db)
        sb = bit.build_singletons(small_dense_db)
        sd = dif.build_singletons(small_dense_db)
        n = small_dense_db.n_items
        for i in range(0, n, 3):
            for j in range(i + 1, n, 4):
                t, _ = tid.combine(st[i], st[j])
                b, _ = bit.combine(sb[i], sb[j])
                d, _ = dif.combine(sd[i], sd[j])
                assert t.support == b.support == d.support

    def test_bitvector_matches_tidset_cover(self, paper_db):
        tid = TidsetRepresentation()
        bit = BitvectorRepresentation()
        st = tid.build_singletons(paper_db)
        sb = bit.build_singletons(paper_db)
        t, _ = tid.combine(st[B], st[C])
        b, _ = bit.combine(sb[B], sb[C])
        assert bits_to_tids(b.payload).tolist() == t.payload.tolist()

    def test_unknown_representation(self):
        with pytest.raises(KeyError, match="unknown representation"):
            get_representation("fancy")


class TestOpCost:
    def test_addition(self):
        total = OpCost(1, 2, 3) + OpCost(10, 20, 30)
        assert (total.cpu_ops, total.bytes_read, total.bytes_written) == (
            11, 22, 33,
        )
        assert total.total_bytes == 55

    def test_tidset_cost_counts_both_operands(self):
        rep = TidsetRepresentation()
        a = Vertical(np.array([1, 2, 3], dtype=np.int32), 3)
        b = Vertical(np.array([2, 3], dtype=np.int32), 2)
        out, cost = rep.combine(a, b)
        assert cost.cpu_ops == 5
        assert cost.bytes_read == 5 * 4
        assert cost.bytes_written == out.payload.size * 4

    def test_bitvector_cost_fixed_width(self, paper_db):
        rep = BitvectorRepresentation()
        s = rep.build_singletons(paper_db)
        _, cost_dense = rep.combine(s[E], s[C])
        _, cost_sparse = rep.combine(s[D], s[F])
        # Fixed-width: identical cost regardless of support.
        assert cost_dense == cost_sparse
