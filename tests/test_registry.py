"""Tests for the dataset registry."""

import pytest

from repro.datasets import registry
from repro.datasets.transaction_db import TransactionDatabase


@pytest.fixture(autouse=True)
def _clean_registry():
    registry.clear_cache()
    yield
    registry.clear_cache()


def test_available_datasets_sorted():
    names = registry.available_datasets()
    assert names == sorted(names)
    assert {"chess", "mushroom", "pumsb", "pumsb_star"} <= set(names)


def test_unknown_name():
    with pytest.raises(KeyError, match="unknown dataset"):
        registry.get_dataset("nope")


def test_caching_returns_same_object():
    a = registry.get_dataset("chess")
    b = registry.get_dataset("chess")
    assert a is b


def test_refresh_rebuilds():
    a = registry.get_dataset("chess")
    b = registry.get_dataset("chess", refresh=True)
    assert a is not b


def test_register_custom_dataset():
    registry.register_dataset(
        "custom", lambda: TransactionDatabase([[1, 2]], name="custom")
    )
    db = registry.get_dataset("custom")
    assert db.name == "custom"
    # Clean up the module-level registration.
    registry._BUILDERS.pop("custom")


def test_quest_entries_have_limited_items():
    db = registry.get_dataset("T40I10")
    assert db.n_items <= 400
    assert db.n_transactions > 0
