"""Unit tests for the level-table candidate storage."""

import numpy as np
import pytest

from repro.core.candidate_gen import CandidateJoin
from repro.core.level_table import Level, LevelTable
from repro.errors import MiningError
from repro.representations.base import Vertical


def _mk_level_table() -> LevelTable:
    table = LevelTable()
    level1 = table.new_singleton_level(3)
    level1.supports = np.array([5, 2, 4])
    level1.kept = np.array([True, False, True])
    return table


class TestSingletonLevel:
    def test_one_row_per_item(self):
        table = _mk_level_table()
        assert table[1].n_candidates == 3
        assert table[1].itemsets == [(0,), (1,), (2,)]

    def test_kept_positions(self):
        table = _mk_level_table()
        assert table[1].kept_positions().tolist() == [0, 2]
        assert table[1].frequent_itemsets() == [(0,), (2,)]
        assert table[1].n_frequent == 2

    def test_singleton_level_must_be_first(self):
        table = _mk_level_table()
        with pytest.raises(MiningError):
            table.new_singleton_level(3)


class TestLaterLevels:
    def test_append_in_order(self):
        table = _mk_level_table()
        level2 = table.new_level(2, [CandidateJoin((0, 2), 0, 1)])
        assert level2.n_candidates == 1
        assert level2.left_parent.tolist() == [0]
        with pytest.raises(MiningError):
            table.new_level(4, [])

    def test_out_of_range_lookup(self):
        table = _mk_level_table()
        with pytest.raises(MiningError):
            table[2]
        with pytest.raises(MiningError):
            table[0]

    def test_release_verticals(self):
        table = _mk_level_table()
        level = table[1]
        level.verticals = [Vertical(np.array([0, 1]), 2)] * 3
        assert len(level.frequent_verticals()) == 2
        level.release_verticals()
        with pytest.raises(MiningError):
            level.frequent_verticals()

    def test_totals(self):
        table = _mk_level_table()
        level2 = table.new_level(2, [CandidateJoin((0, 2), 0, 1)])
        level2.kept = np.array([True])
        assert table.total_candidates() == 4
        assert table.total_frequent() == 3
        assert len(table) == 2
        assert len(table.levels()) == 2
