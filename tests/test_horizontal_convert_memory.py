"""Tests for the horizontal counter, format conversions, and footprints."""

import numpy as np
import pytest

from repro.representations import (
    DiffsetRepresentation,
    HorizontalCounter,
    TidsetRepresentation,
    convert,
    memory,
)
from repro.representations.base import Vertical


class TestHorizontalCounter:
    def test_counts_match_oracle(self, tiny_db):
        counter = HorizontalCounter(tiny_db)
        result = counter.count([[1], [1, 2], [1, 2, 3], [0]])
        assert result.supports.tolist() == [4, 3, 2, 0]

    def test_support_of(self, tiny_db):
        assert HorizontalCounter(tiny_db).support_of([2, 3]) == 3

    def test_cost_grows_with_candidates(self, tiny_db):
        counter = HorizontalCounter(tiny_db)
        one = counter.count([[1]]).cost.cpu_ops
        three = counter.count([[1], [2], [3]]).cost.cpu_ops
        assert three == 3 * one

    def test_contended_increments_counted(self, tiny_db):
        result = HorizontalCounter(tiny_db).count([[1], [2]])
        # Every support increment is a potential race: 4 + 4.
        assert result.contended_increments == 8

    def test_candidate_longer_than_transaction_skipped(self, tiny_db):
        result = HorizontalCounter(tiny_db).count([[0, 1, 2, 3, 5]])
        assert result.supports.tolist() == [0]


class TestConversions:
    def test_tidset_bitvector_roundtrip(self, paper_db):
        tid = TidsetRepresentation().build_singletons(paper_db)
        for v in tid:
            packed = convert.tidset_to_bitvector(v, paper_db.n_transactions)
            back = convert.bitvector_to_tidset(packed)
            assert back.payload.tolist() == v.payload.tolist()
            assert back.support == v.support

    def test_tidset_diffset_roundtrip(self, paper_db):
        n = paper_db.n_transactions
        all_tids = np.arange(n)
        tid = TidsetRepresentation().build_singletons(paper_db)
        dif = DiffsetRepresentation().build_singletons(paper_db)
        for t, d in zip(tid, dif):
            converted = convert.tidset_to_diffset(t, all_tids)
            assert converted.payload.tolist() == d.payload.tolist()
            back = convert.diffset_to_tidset(converted, all_tids)
            assert back.payload.tolist() == t.payload.tolist()


class TestMemoryFootprint:
    def test_measure_generation(self, paper_db):
        rep = TidsetRepresentation()
        singles = rep.build_singletons(paper_db)
        fp = memory.measure_generation(rep, singles, generation=1)
        assert fp.n_candidates == 6
        assert fp.total_bytes == sum(v.payload.nbytes for v in singles)
        assert fp.max_candidate_bytes == 6 * 4  # item E in all 6 transactions
        assert fp.mean_candidate_bytes == pytest.approx(fp.total_bytes / 6)

    def test_footprint_ratio(self, paper_db):
        tid_rep = TidsetRepresentation()
        dif_rep = DiffsetRepresentation()
        tid = memory.measure_generation(
            tid_rep, tid_rep.build_singletons(paper_db), 1
        )
        dif = memory.measure_generation(
            dif_rep, dif_rep.build_singletons(paper_db), 1
        )
        # Dense data: tidsets bigger than diffsets at generation 1.
        assert memory.footprint_ratio(tid, dif) > 1.0

    def test_footprint_ratio_zero_cases(self):
        empty = memory.GenerationFootprint("x", 1, 0, 0, 0)
        full = memory.GenerationFootprint("x", 1, 1, 10, 10)
        assert memory.footprint_ratio(empty, empty) == 1.0
        assert memory.footprint_ratio(full, empty) == float("inf")
        assert empty.mean_candidate_bytes == 0.0
