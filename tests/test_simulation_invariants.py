"""Property-style invariants of the end-to-end simulation pipeline.

These encode "physics" the machine replay must respect regardless of
workload: faster hardware never slows a run, more bandwidth never hurts,
zero-thread teams are rejected, and the same trace always replays to the
same number (determinism).
"""

import pytest

from repro.core import run_apriori, run_eclat
from repro.machine import BLACKLIGHT
from repro.parallel import (
    AprioriTrace,
    EclatTrace,
    simulate_apriori,
    simulate_eclat,
)

THREADS = [1, 16, 64, 512]


@pytest.fixture(scope="module")
def apriori_trace(small_dense_db_module):
    trace = AprioriTrace()
    run_apriori(small_dense_db_module, 0.5, "tidset", sink=trace)
    return trace


@pytest.fixture(scope="module")
def eclat_trace(small_dense_db_module):
    sink = EclatTrace()
    run_eclat(small_dense_db_module, 0.5, "tidset", sink=sink)
    return sink.finalize()


@pytest.fixture(scope="module")
def small_dense_db_module():
    from repro.datasets.synthetic import DenseAttributeGenerator

    gen = DenseAttributeGenerator(
        domain_sizes=(3, 3, 2, 4, 2, 3),
        n_classes=2,
        peak=0.8,
        n_shared_attributes=3,
        shared_peak=0.95,
        seed=9,
    )
    return gen.generate(400, name="inv-dense")


class TestDeterminism:
    def test_apriori_replay_deterministic(self, apriori_trace):
        for t in THREADS:
            a = simulate_apriori(apriori_trace, t).total_seconds
            b = simulate_apriori(apriori_trace, t).total_seconds
            assert a == b

    def test_eclat_replay_deterministic(self, eclat_trace):
        for mode in ("toplevel", "level"):
            a = simulate_eclat(eclat_trace, 128, task_mode=mode).total_seconds
            b = simulate_eclat(eclat_trace, 128, task_mode=mode).total_seconds
            assert a == b


@pytest.mark.parametrize(
    "field,direction",
    [
        ("element_rate", "faster"),
        ("local_bandwidth", "faster"),
        ("remote_stream_bandwidth", "faster"),
        ("link_bandwidth", "faster"),
        ("bisection_bandwidth", "faster"),
    ],
)
class TestHardwareMonotonicity:
    def test_apriori_never_slower_on_better_hardware(
        self, apriori_trace, field, direction
    ):
        better = BLACKLIGHT.with_overrides(
            **{field: getattr(BLACKLIGHT, field) * 4}
        )
        for t in THREADS:
            base = simulate_apriori(apriori_trace, t, machine=BLACKLIGHT)
            fast = simulate_apriori(apriori_trace, t, machine=better)
            assert fast.total_seconds <= base.total_seconds * 1.0001, (field, t)

    def test_eclat_never_slower_on_better_hardware(
        self, eclat_trace, field, direction
    ):
        better = BLACKLIGHT.with_overrides(
            **{field: getattr(BLACKLIGHT, field) * 4}
        )
        for t in THREADS:
            base = simulate_eclat(eclat_trace, t, machine=BLACKLIGHT)
            fast = simulate_eclat(eclat_trace, t, machine=better)
            assert fast.total_seconds <= base.total_seconds * 1.0001, (field, t)


class TestOverheadMonotonicity:
    def test_bigger_fork_join_never_faster(self, apriori_trace):
        worse = BLACKLIGHT.with_overrides(fork_join_base=1e-3)
        for t in (16, 512):
            base = simulate_apriori(apriori_trace, t).total_seconds
            slow = simulate_apriori(apriori_trace, t, machine=worse).total_seconds
            assert slow >= base

    def test_bigger_iteration_overhead_never_faster(self, eclat_trace):
        worse = BLACKLIGHT.with_overrides(iteration_overhead_ops=20_000)
        for t in (16, 512):
            base = simulate_eclat(eclat_trace, t).total_seconds
            slow = simulate_eclat(eclat_trace, t, machine=worse).total_seconds
            assert slow >= base

    def test_bigger_cache_never_slower(self, apriori_trace):
        bigger = BLACKLIGHT.with_overrides(
            cache_per_thread=64 * 1024 * 1024,
            cache_per_blade=1024 * 1024 * 1024,
        )
        for t in THREADS:
            base = simulate_apriori(apriori_trace, t).total_seconds
            cached = simulate_apriori(
                apriori_trace, t, machine=bigger
            ).total_seconds
            assert cached <= base * 1.0001


class TestStructure:
    def test_single_thread_no_remote_terms(self, apriori_trace):
        t1 = simulate_apriori(apriori_trace, 1)
        assert not t1.link_limited_regions
        assert t1.regions[0].fork_join == 0.0

    def test_total_is_sum_of_parts(self, apriori_trace):
        sim = simulate_apriori(apriori_trace, 64)
        reconstructed = sum(r.time + r.serial for r in sim.regions)
        assert sim.total_seconds == pytest.approx(reconstructed)

    def test_eclat_toplevel_single_region(self, eclat_trace):
        sim = simulate_eclat(eclat_trace, 64, task_mode="toplevel")
        assert len(sim.regions) == 1

    def test_eclat_level_regions_match_depths(self, eclat_trace):
        sim = simulate_eclat(eclat_trace, 64, task_mode="level")
        assert len(sim.regions) == len(
            [lv for lv in eclat_trace.levels if lv.n_combines]
        )
