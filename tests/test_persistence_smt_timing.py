"""Tests for trace persistence, the SMT machine model, and SimulatedTime."""

import numpy as np
import pytest

from repro.core import run_apriori, run_eclat
from repro.errors import ConfigurationError
from repro.machine import BLACKLIGHT, smt_machine
from repro.parallel import (
    AprioriTrace,
    EclatTrace,
    load_apriori_trace,
    load_eclat_trace,
    save_apriori_trace,
    save_eclat_trace,
    simulate_apriori,
    simulate_eclat,
)
from repro.parallel.timing import RegionBreakdown, SimulatedTime


class TestTracePersistence:
    def test_apriori_roundtrip_replays_identically(self, paper_db, tmp_path):
        trace = AprioriTrace()
        run_apriori(paper_db, 2, "tidset", sink=trace)
        path = save_apriori_trace(trace, tmp_path / "apriori.npz")
        loaded = load_apriori_trace(path)

        for threads in (1, 16, 64):
            original = simulate_apriori(trace, threads).total_seconds
            replayed = simulate_apriori(loaded, threads).total_seconds
            assert replayed == pytest.approx(original)

    def test_apriori_roundtrip_preserves_arrays(self, paper_db, tmp_path):
        trace = AprioriTrace()
        run_apriori(paper_db, 2, "diffset", sink=trace)
        loaded = load_apriori_trace(
            save_apriori_trace(trace, tmp_path / "t.npz")
        )
        assert loaded.singletons.build_ops == trace.singletons.build_ops
        assert len(loaded.generations) == len(trace.generations)
        for a, b in zip(trace.generations, loaded.generations):
            assert (a.cpu_ops == b.cpu_ops).all()
            assert (a.kept_mask == b.kept_mask).all()
            assert a.candidate_gen_ops == b.candidate_gen_ops

    def test_eclat_roundtrip_replays_identically(self, paper_db, tmp_path):
        sink = EclatTrace()
        run_eclat(paper_db, 2, "tidset", sink=sink)
        trace = sink.finalize()
        loaded = load_eclat_trace(save_eclat_trace(trace, tmp_path / "e.npz"))
        for threads in (1, 32, 256):
            for mode in ("toplevel", "level"):
                original = simulate_eclat(
                    trace, threads, task_mode=mode
                ).total_seconds
                replayed = simulate_eclat(
                    loaded, threads, task_mode=mode
                ).total_seconds
                assert replayed == pytest.approx(original)

    def test_untraced_apriori_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_apriori_trace(AprioriTrace(), tmp_path / "x.npz")

    def test_wrong_magic_rejected(self, paper_db, tmp_path):
        sink = EclatTrace()
        run_eclat(paper_db, 2, "tidset", sink=sink)
        path = save_eclat_trace(sink.finalize(), tmp_path / "e.npz")
        with pytest.raises(ConfigurationError, match="not an Apriori"):
            load_apriori_trace(path)


class TestSmtMachine:
    def test_doubles_hardware_threads(self):
        smt = smt_machine(BLACKLIGHT, ways=2)
        assert smt.cores_per_blade == 32
        assert smt.element_rate < BLACKLIGHT.element_rate
        assert smt.local_bandwidth == BLACKLIGHT.local_bandwidth / 2
        assert smt.link_bandwidth == BLACKLIGHT.link_bandwidth  # physical

    def test_one_way_is_identity(self):
        assert smt_machine(BLACKLIGHT, ways=1) is BLACKLIGHT

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            smt_machine(BLACKLIGHT, ways=0)
        with pytest.raises(ConfigurationError):
            smt_machine(BLACKLIGHT, pipeline_efficiency=0.0)

    def test_smt_does_not_help_bandwidth_bound_mining(self, small_dense_db):
        """The paper's observation: hyper-threading brings no gain."""
        trace = AprioriTrace()
        run_apriori(small_dense_db, 0.4, "tidset", sink=trace)
        base = simulate_apriori(trace, 16, machine=BLACKLIGHT).total_seconds
        # Same blade, twice the contexts:
        smt = simulate_apriori(
            trace, 32, machine=smt_machine(BLACKLIGHT)
        ).total_seconds
        assert smt > 0.8 * base  # at best marginal, never a 2x win


class TestSimulatedTime:
    def _mk(self) -> SimulatedTime:
        st = SimulatedTime(
            algorithm="apriori",
            representation="tidset",
            n_threads=32,
            total_seconds=0.01,
            load_seconds=0.002,
        )
        st.regions.append(
            RegionBreakdown(
                label="gen2", time=0.004, makespan=0.001,
                link_bound=0.004, fork_join=1e-6, serial=0.001,
            )
        )
        st.regions.append(
            RegionBreakdown(
                label="gen3", time=0.002, makespan=0.002,
                link_bound=0.0005, fork_join=1e-6,
            )
        )
        return st

    def test_link_limited_regions(self):
        st = self._mk()
        assert st.link_limited_regions == ["gen2"]
        assert st.regions[0].link_limited
        assert not st.regions[1].link_limited

    def test_serial_seconds(self):
        assert self._mk().serial_seconds == pytest.approx(0.003)

    def test_summary_mentions_link(self):
        text = self._mk().summary()
        assert "link-limited" in text and "gen2" in text
