"""Shared fixtures: small deterministic databases and helpers."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DenseAttributeGenerator,
    QuestGenerator,
    TransactionDatabase,
    parse_fimi,
)


@pytest.fixture(autouse=True)
def _no_ambient_run_ledger(monkeypatch):
    """Keep tests from appending to a real ledger under the repo root.

    ``REPRO_LEDGER=0`` disables the environment default; tests that want a
    ledger pass one explicitly (or call ``set_default_ledger``, which beats
    the environment and is reset here afterwards).
    """
    from repro.obs.ledger import reset_default_ledger

    monkeypatch.setenv("REPRO_LEDGER", "0")
    yield
    reset_default_ledger()


@pytest.fixture(autouse=True)
def _no_ambient_live_status(monkeypatch):
    """Keep tests from writing ``.repro/live`` status files under the repo.

    The live layer is on by default (unlike the ledger), so every
    ``repro.mine`` call in the suite would otherwise litter the working
    directory; tests that want a tracker pass ``live=`` explicitly.
    """
    monkeypatch.setenv("REPRO_LIVE", "0")


@pytest.fixture
def tiny_db() -> TransactionDatabase:
    """The running example: 5 transactions over items {1, 2, 3}."""
    return parse_fimi(
        """1 2 3
1 2
2 3
1 3
1 2 3""",
        name="tiny",
    )


@pytest.fixture
def paper_db() -> TransactionDatabase:
    """A 6-transaction database shaped like the paper's Figure 1/2 example.

    Items A..F are mapped to 0..5.  Item 0 (A) has support 4 with diffset
    {3, 5}, mirroring the worked diffset example in Section II-B.
    """
    return TransactionDatabase(
        [
            [0, 1, 2, 4],  # t0: A B C E
            [0, 2, 4],     # t1: A C E
            [0, 2, 3, 4],  # t2: A C D E
            [1, 2, 4, 5],  # t3: B C E F
            [0, 1, 4],     # t4: A B E
            [2, 4, 5],     # t5: C E F
        ],
        name="figure2",
    )


@pytest.fixture
def empty_db() -> TransactionDatabase:
    return TransactionDatabase([], name="empty")


@pytest.fixture
def single_item_db() -> TransactionDatabase:
    return TransactionDatabase([[0], [0], [0]], name="single")


@pytest.fixture
def small_dense_db() -> TransactionDatabase:
    """A 200-row dense attribute table (fast surrogate stand-in)."""
    gen = DenseAttributeGenerator(
        domain_sizes=(3, 3, 2, 4, 2),
        n_classes=2,
        peak=0.8,
        n_shared_attributes=2,
        shared_peak=0.95,
        seed=7,
    )
    return gen.generate(200, name="small-dense")


@pytest.fixture
def small_sparse_db() -> TransactionDatabase:
    """A 300-row Quest-style sparse basket set."""
    gen = QuestGenerator(
        n_items=60, avg_transaction_length=6, avg_pattern_length=3,
        n_patterns=30, seed=13,
    )
    return gen.generate(300)


def assert_results_equal(a, b) -> None:
    """Rich assertion for cross-miner agreement."""
    if a.itemsets != b.itemsets:
        diff = a.difference(b)
        raise AssertionError(
            f"{a.algorithm}/{a.representation} != {b.algorithm}/{b.representation}: "
            f"{ {k: v for k, v in diff.items() if v} }"
        )
