"""The engine's full execution matrix agrees with the brute-force oracle.

Every algorithm × representation × backend combination ``repro.mine()``
claims to support must produce the identical itemset→support map on two
structurally different small databases; every combination it does not
support must raise the typed error.
"""

import pytest

import repro
from repro.core import brute_force
from repro.engine import supported_combinations
from repro.errors import UnsupportedCombinationError

ALGORITHMS = ["apriori", "eclat"]
REPRESENTATIONS = ["tidset", "bitvector", "diffset", "bitvector_numpy"]
BACKENDS = ["serial", "multiprocessing"]

#: Combinations the registry intentionally does not implement.
UNSUPPORTED = {("multiprocessing", "apriori")}
#: The vectorized backend only runs packed bitvectors.
VECTORIZED_REPRESENTATIONS = ["bitvector", "bitvector_numpy", "auto"]


@pytest.fixture(params=["tiny", "figure2"])
def case(request, tiny_db, paper_db):
    if request.param == "tiny":
        db = tiny_db
        min_support = 2
    else:
        db = paper_db
        min_support = 3
    return db, min_support, brute_force(db, min_support)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("representation", REPRESENTATIONS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_matrix_matches_brute_force(case, algorithm, representation, backend):
    db, min_support, expected = case
    if (backend, algorithm) in UNSUPPORTED:
        with pytest.raises(UnsupportedCombinationError):
            repro.mine(
                db, algorithm=algorithm, representation=representation,
                backend=backend, min_support=min_support,
            )
        return
    result = repro.mine(
        db, algorithm=algorithm, representation=representation,
        backend=backend, min_support=min_support,
    )
    assert result.itemsets == expected.itemsets
    assert result.algorithm == algorithm
    assert result.backend == backend


@pytest.mark.parametrize("representation", VECTORIZED_REPRESENTATIONS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_vectorized_backend_matches_brute_force(case, algorithm, representation):
    db, min_support, expected = case
    result = repro.mine(
        db, algorithm=algorithm, representation=representation,
        backend="vectorized", min_support=min_support,
    )
    assert result.itemsets == expected.itemsets
    # Whatever the caller spelled, the packed format is what actually ran.
    assert result.representation == "bitvector_numpy"
    assert result.backend == "vectorized"


@pytest.mark.parametrize("representation", VECTORIZED_REPRESENTATIONS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_shared_memory_backend_matches_brute_force(case, algorithm, representation):
    db, min_support, expected = case
    result = repro.mine(
        db, algorithm=algorithm, representation=representation,
        backend="shared_memory", min_support=min_support, n_workers=2,
    )
    assert result.itemsets == expected.itemsets
    assert result.representation == "bitvector_numpy"
    assert result.backend == "shared_memory"


@pytest.mark.parametrize(
    "schedule", ["static", "static,1", "dynamic,2", "guided", "worksteal"]
)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_shared_memory_schedules_match_brute_force(case, algorithm, schedule):
    """Every OpenMP clause spelling partitions differently, mines identically."""
    db, min_support, expected = case
    result = repro.mine(
        db, algorithm=algorithm, backend="shared_memory",
        min_support=min_support, n_workers=3, schedule=schedule,
    )
    assert result.itemsets == expected.itemsets


@pytest.mark.parametrize("representation", REPRESENTATIONS)
def test_multiprocessing_worksteal_matches_brute_force(case, representation):
    """Nested task stealing is representation-agnostic: the rebuild chain
    only ever combines members of the same equivalence class, which is the
    one contract every vertical format (diffsets included) guarantees."""
    db, min_support, expected = case
    result = repro.mine(
        db, algorithm="eclat", representation=representation,
        backend="multiprocessing", min_support=min_support,
        n_workers=2, schedule="worksteal", spawn_depth=1,
        spawn_min_members=2,
    )
    assert result.itemsets == expected.itemsets
    assert result.backend == "multiprocessing"


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_vectorized_rejects_unpackable_representations(tiny_db, algorithm):
    for representation in ("tidset", "diffset", "hybrid"):
        with pytest.raises(UnsupportedCombinationError):
            repro.mine(
                tiny_db, algorithm=algorithm, representation=representation,
                backend="vectorized", min_support=2,
            )


def test_matrix_is_what_the_registry_declares():
    combos = set(supported_combinations())
    assert ("serial", "apriori") in combos
    assert ("serial", "eclat") in combos
    assert ("vectorized", "eclat") in combos
    assert ("shared_memory", "eclat") in combos
    assert ("shared_memory", "apriori") in combos
    for backend, algorithm in UNSUPPORTED:
        assert (backend, algorithm) not in combos


def test_relative_support_consistent_across_backends(small_dense_db):
    """Float thresholds resolve identically no matter which backend runs."""
    expected = brute_force(small_dense_db, 0.4)
    for backend in ("serial", "vectorized"):
        result = repro.mine(
            small_dense_db, algorithm="eclat",
            representation="bitvector_numpy", backend=backend,
            min_support=0.4,
        )
        assert result.itemsets == expected.itemsets
        assert result.min_support == expected.min_support
