"""The zero-copy shared-memory backend: scheduling, fault tolerance, cleanup.

Correctness against the brute-force oracle is pinned (together with the
rest of the execution matrix) in ``test_equivalence_matrix.py``; this file
covers what is unique to real multi-process execution — edge-case class
counts, the OpenMP schedule plumbing, worker death and task-timeout
recovery, error propagation, observability merging, and the guarantee that
the ``SharedMemory`` segment never outlives the pool.
"""

import glob
import os

import numpy as np
import pytest

import repro
from repro.backends.shared_memory_backend import (
    SharedMemoryPool,
    parse_schedule,
    run_apriori_shared_memory,
    run_eclat_shared_memory,
)
from repro.core import brute_force
from repro.errors import ConfigurationError, ParallelExecutionError
from repro.obs import ObsContext
from repro.openmp.schedule import ECLAT_SCHEDULE, ScheduleSpec
from repro.representations.bitvector_numpy import pack_database


def _shm_segments() -> set[str]:
    """Names of live POSIX shared-memory segments (Linux: files in /dev/shm)."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        pytest.skip("/dev/shm not available on this platform")
    return set(glob.glob("/dev/shm/psm_*"))


@pytest.fixture
def no_shm_leak():
    """Assert the test leaves no new shared-memory segment behind."""
    before = _shm_segments()
    yield
    assert _shm_segments() - before == set()


class TestParseSchedule:
    def test_none_gives_default(self):
        assert parse_schedule(None, ECLAT_SCHEDULE) == ECLAT_SCHEDULE

    def test_spec_passthrough(self):
        spec = ScheduleSpec("guided", 4)
        assert parse_schedule(spec, ECLAT_SCHEDULE) is spec

    @pytest.mark.parametrize(
        "text, kind, chunk",
        [
            ("static", "static", None),
            ("static,1", "static", 1),
            ("dynamic,8", "dynamic", 8),
            ("guided", "guided", None),
            (" dynamic , 2 ", "dynamic", 2),
        ],
    )
    def test_string_forms(self, text, kind, chunk):
        spec = parse_schedule(text, ECLAT_SCHEDULE)
        assert spec.kind == kind
        assert spec.chunk_size == chunk

    def test_bad_chunk_raises(self):
        with pytest.raises(ConfigurationError):
            parse_schedule("dynamic,lots", ECLAT_SCHEDULE)

    def test_non_string_raises(self):
        with pytest.raises(ConfigurationError):
            parse_schedule(3, ECLAT_SCHEDULE)


class TestEdgeCases:
    @pytest.mark.parametrize("algorithm", ["eclat", "apriori"])
    def test_empty_database(self, empty_db, algorithm, no_shm_leak):
        result = repro.mine(
            empty_db, algorithm=algorithm, backend="shared_memory",
            min_support=1, n_workers=2,
        )
        assert result.itemsets == {}

    @pytest.mark.parametrize("algorithm", ["eclat", "apriori"])
    def test_zero_frequent_items(self, tiny_db, algorithm, no_shm_leak):
        """A threshold above every support yields nothing, and no workers
        should ever be spawned for the eclat path (no classes to mine)."""
        result = repro.mine(
            tiny_db, algorithm=algorithm, backend="shared_memory",
            min_support=tiny_db.n_transactions + 1, n_workers=2,
        )
        assert result.itemsets == {}

    def test_single_frequent_item_has_no_classes(self, single_item_db, no_shm_leak):
        result = repro.mine(
            single_item_db, algorithm="eclat", backend="shared_memory",
            min_support=2, n_workers=4,
        )
        assert result.itemsets == {(0,): 3}

    @pytest.mark.parametrize("algorithm", ["eclat", "apriori"])
    def test_more_workers_than_tasks(self, tiny_db, algorithm, no_shm_leak):
        expected = brute_force(tiny_db, 2)
        result = repro.mine(
            tiny_db, algorithm=algorithm, backend="shared_memory",
            min_support=2, n_workers=16,
        )
        assert result.itemsets == expected.itemsets

    def test_bad_worker_count(self, tiny_db):
        with pytest.raises(ConfigurationError):
            run_eclat_shared_memory(tiny_db, 2, n_workers=0)

    def test_bad_timeout(self, tiny_db):
        with pytest.raises(ConfigurationError):
            run_eclat_shared_memory(tiny_db, 2, n_workers=1, task_timeout=-1.0)

    def test_bad_item_order(self, tiny_db):
        with pytest.raises(ConfigurationError):
            run_eclat_shared_memory(tiny_db, 2, item_order="alphabetical")


class TestFaultTolerance:
    def test_killed_worker_task_is_retried(self, paper_db, no_shm_leak):
        """A worker that dies mid-task (without ever reporting) is respawned
        and its task re-executed; the result is still exact."""
        expected = brute_force(paper_db, 2)
        obs = ObsContext()
        result = run_eclat_shared_memory(
            paper_db, 2, n_workers=2, obs=obs, _fault={"kill_task": 0},
        )
        assert result.itemsets == expected.itemsets
        counters = obs.metrics.counters()
        assert counters["shared_memory.tasks.retried"] >= 1
        assert counters["shared_memory.workers.respawned"] >= 1

    def test_killed_worker_under_static_schedule(self, paper_db, no_shm_leak):
        expected = brute_force(paper_db, 2)
        result = run_apriori_shared_memory(
            paper_db, 2, n_workers=2, _fault={"kill_task": 0},
        )
        assert result.itemsets == expected.itemsets

    def test_hung_worker_times_out_and_retries(self, paper_db, no_shm_leak):
        expected = brute_force(paper_db, 2)
        obs = ObsContext()
        result = run_eclat_shared_memory(
            paper_db, 2, n_workers=2, obs=obs, task_timeout=0.5,
            _fault={"hang_task": 0, "hang_seconds": 60.0},
        )
        assert result.itemsets == expected.itemsets
        assert obs.metrics.counters()["shared_memory.tasks.retried"] >= 1

    def test_retry_budget_exhausted_raises_and_cleans_up(self, paper_db, no_shm_leak):
        with pytest.raises(ParallelExecutionError):
            run_eclat_shared_memory(
                paper_db, 2, n_workers=2, max_task_retries=0,
                _fault={"kill_task": 0},
            )

    def test_worker_exception_propagates(self, tiny_db, no_shm_leak):
        """A deterministic in-task exception is not retried — it surfaces as
        ParallelExecutionError carrying the worker traceback."""
        matrix = pack_database(tiny_db)
        init = {"min_sup": 1, "collect_obs": False, "fault": None}
        with SharedMemoryPool(
            matrix, init, 1, ScheduleSpec("dynamic", 1)
        ) as pool:
            with pytest.raises(ParallelExecutionError) as excinfo:
                pool.run([("apriori", [(0, 999)])])  # item 999 out of range
        assert "task 0" in str(excinfo.value)

    def test_run_after_shutdown_raises(self, tiny_db, no_shm_leak):
        matrix = pack_database(tiny_db)
        init = {"min_sup": 1, "collect_obs": False, "fault": None}
        pool = SharedMemoryPool(matrix, init, 1, ScheduleSpec("dynamic", 1))
        pool.shutdown()
        pool.shutdown()  # idempotent
        with pytest.raises(ParallelExecutionError):
            pool.run([("apriori", [(0,)])])


class TestPool:
    def test_static_ownership(self, tiny_db, no_shm_leak):
        matrix = pack_database(tiny_db)
        init = {"min_sup": 1, "collect_obs": False, "fault": None}
        with SharedMemoryPool(
            matrix, init, 3, ScheduleSpec("static", 1)
        ) as pool:
            # chunked static deals tasks round-robin ...
            assert pool.static_owners(5) == [0, 1, 2, 0, 1]
        with SharedMemoryPool(
            matrix, init, 3, ScheduleSpec("static", None)
        ) as pool:
            # ... unchunked static gives one contiguous block per worker.
            assert pool.static_owners(3) == [0, 1, 2]

    def test_pool_reuse_across_generations(self, tiny_db, no_shm_leak):
        """Apriori reuses one pool (workers attach once) across generations;
        exercised through a run that needs >= 3 generations."""
        expected = brute_force(tiny_db, 2)
        obs = ObsContext()
        result = run_apriori_shared_memory(tiny_db, 2, n_workers=2, obs=obs)
        assert result.itemsets == expected.itemsets
        # Workers were spawned once, not once per generation.
        assert obs.metrics.counters().get(
            "shared_memory.workers.respawned", 0
        ) == 0


class TestObservability:
    def test_worker_task_counts_and_merged_kernels(self, paper_db):
        obs = ObsContext()
        result = run_eclat_shared_memory(paper_db, 2, n_workers=2, obs=obs)
        counters = obs.metrics.counters()
        n_tasks = counters["eclat.toplevel.tasks"]
        assert n_tasks >= 1
        per_worker = sum(
            value for name, value in counters.items()
            if name.startswith("shared_memory.worker")
            and name.endswith(".tasks")
        )
        assert per_worker == n_tasks
        # Worker-side kernel counters merged into the parent registry must be
        # exactly what the in-process vectorized backend records for the
        # class-mining stage (same kernels, same order).
        vec_obs = ObsContext()
        vec_result = repro.mine(
            paper_db, algorithm="eclat", backend="vectorized",
            min_support=2, obs=vec_obs,
        )
        assert result.itemsets == vec_result.itemsets
        vec = vec_obs.metrics.counters()
        for name in (
            "mine.intersections",
            "mine.intersection_read_bytes",
            "mine.bytes_written",
        ):
            assert counters[name] == vec[name], name

    def test_pool_gauges(self, paper_db):
        obs = ObsContext()
        run_eclat_shared_memory(paper_db, 2, n_workers=2, obs=obs)
        gauges = obs.metrics.gauges()
        assert gauges["shared_memory.n_workers"] == 2
        matrix_rows = int(
            np.count_nonzero(
                np.asarray(
                    [len(t) for t in paper_db.tidlists()], dtype=np.int64
                )
                >= 2
            )
        )
        assert gauges["shared_memory.base_bytes"] == matrix_rows * 1  # 6 tx -> 1 byte

    def test_no_obs_is_fine(self, paper_db):
        expected = brute_force(paper_db, 3)
        result = run_eclat_shared_memory(paper_db, 3, n_workers=2)
        assert result.itemsets == expected.itemsets
