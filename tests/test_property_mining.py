"""Property-based tests: all miners agree with brute force on random data.

These are the strongest correctness guarantees in the suite: for arbitrary
small transaction databases and thresholds, Apriori (x3 representations),
Eclat (x3 representations x2 item orders), and FP-growth must produce the
exact itemset->support map that exhaustive counting produces, and the map
must satisfy the lattice laws (downward closure, support monotonicity).
"""

from hypothesis import given, settings, strategies as st

from repro.core import apriori, brute_force, eclat, fpgrowth
from repro.core.itemset import proper_subsets
from repro.datasets.transaction_db import TransactionDatabase

# Small universes keep brute force exhaustive and the search fast while
# still covering empty transactions, duplicates, and dense overlaps.
transactions_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=6),
    min_size=0,
    max_size=12,
)
support_strategy = st.integers(min_value=1, max_value=5)


def _db(transactions) -> TransactionDatabase:
    return TransactionDatabase(transactions, n_items=8, name="hypo")


@settings(max_examples=60, deadline=None)
@given(transactions=transactions_strategy, min_sup=support_strategy)
def test_apriori_matches_brute_force_all_representations(transactions, min_sup):
    db = _db(transactions)
    expected = brute_force(db, min_sup).itemsets
    for rep in ("tidset", "bitvector", "diffset"):
        assert apriori(db, min_sup, rep).itemsets == expected


@settings(max_examples=60, deadline=None)
@given(transactions=transactions_strategy, min_sup=support_strategy)
def test_eclat_matches_brute_force_all_configurations(transactions, min_sup):
    db = _db(transactions)
    expected = brute_force(db, min_sup).itemsets
    for rep in ("tidset", "bitvector", "diffset"):
        for order in ("support", "id"):
            assert eclat(db, min_sup, rep, item_order=order).itemsets == expected


@settings(max_examples=60, deadline=None)
@given(transactions=transactions_strategy, min_sup=support_strategy)
def test_fpgrowth_matches_brute_force(transactions, min_sup):
    db = _db(transactions)
    assert fpgrowth(db, min_sup).itemsets == brute_force(db, min_sup).itemsets


@settings(max_examples=40, deadline=None)
@given(transactions=transactions_strategy, min_sup=support_strategy)
def test_downward_closure_and_monotonicity(transactions, min_sup):
    db = _db(transactions)
    result = eclat(db, min_sup, "tidset")
    for items, support in result.itemsets.items():
        assert support >= min_sup
        for subset in proper_subsets(items):
            if subset:
                assert subset in result.itemsets
                assert result.itemsets[subset] >= support


@settings(max_examples=40, deadline=None)
@given(transactions=transactions_strategy, min_sup=support_strategy)
def test_supports_match_direct_count(transactions, min_sup):
    db = _db(transactions)
    result = apriori(db, min_sup, "diffset")
    for items, support in result.itemsets.items():
        assert support == db.support_of(items)


@settings(max_examples=40, deadline=None)
@given(
    transactions=transactions_strategy,
    low=st.integers(min_value=1, max_value=3),
    delta=st.integers(min_value=1, max_value=3),
)
def test_threshold_monotonicity(transactions, low, delta):
    """Raising the threshold can only shrink the result."""
    db = _db(transactions)
    loose = eclat(db, low, "tidset").itemsets
    strict = eclat(db, low + delta, "tidset").itemsets
    assert set(strict) <= set(loose)
    for items, support in strict.items():
        assert loose[items] == support
