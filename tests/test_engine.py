"""Behavior of the ``repro.mine()`` facade and the backend registry."""

import pytest

import repro
from repro.core.result import MiningResult
from repro.engine import (
    available_algorithms,
    available_backends,
    execute,
    get_backend_entry,
    register_backend,
)
from repro.engine.api import AUTO_DENSE_THRESHOLD, _database_density
from repro.engine.registry import _REGISTRY
from repro.errors import (
    ConfigurationError,
    ReproError,
    UnsupportedCombinationError,
)
from repro.obs import InMemorySink, ObsContext


class TestValidation:
    def test_unknown_backend(self, tiny_db):
        with pytest.raises(UnsupportedCombinationError, match="unknown backend"):
            repro.mine(tiny_db, backend="gpu", min_support=2)

    def test_unknown_algorithm_on_known_backend(self, tiny_db):
        with pytest.raises(UnsupportedCombinationError, match="not implemented"):
            repro.mine(tiny_db, algorithm="magic", min_support=2)

    def test_error_message_documents_the_matrix(self, tiny_db):
        with pytest.raises(UnsupportedCombinationError, match="serial:eclat"):
            repro.mine(
                tiny_db, algorithm="apriori", backend="multiprocessing",
                min_support=2,
            )

    def test_unknown_representation(self, tiny_db):
        with pytest.raises(ConfigurationError, match="unknown representation"):
            repro.mine(tiny_db, representation="quantum", min_support=2)

    def test_unknown_option(self, tiny_db):
        with pytest.raises(ConfigurationError, match="unknown option"):
            repro.mine(tiny_db, min_support=2, flux_capacitor=True)

    def test_option_valid_on_other_backend_rejected(self, tiny_db):
        # n_workers belongs to multiprocessing, not serial.
        with pytest.raises(ConfigurationError, match="n_workers"):
            repro.mine(tiny_db, backend="serial", min_support=2, n_workers=2)

    def test_bad_min_support(self, tiny_db):
        with pytest.raises(ConfigurationError):
            repro.mine(tiny_db, min_support=0)
        with pytest.raises(ConfigurationError):
            repro.mine(tiny_db, min_support=1.5)

    def test_all_errors_are_repro_errors(self, tiny_db):
        for kwargs in (
            {"backend": "gpu"},
            {"algorithm": "magic"},
            {"representation": "quantum"},
            {"min_support": -1},
        ):
            with pytest.raises(ReproError):
                repro.mine(tiny_db, **{"min_support": 2, **kwargs})

    def test_keyword_only(self, tiny_db):
        with pytest.raises(TypeError):
            repro.mine(tiny_db, "eclat", min_support=2)  # noqa: too many positional


class TestAutoRepresentation:
    def test_dense_db_picks_diffset(self, small_dense_db):
        assert _database_density(small_dense_db) >= AUTO_DENSE_THRESHOLD
        result = repro.mine(small_dense_db, min_support=0.4)
        assert result.representation == "diffset"

    def test_sparse_db_picks_tidset(self, small_sparse_db):
        assert _database_density(small_sparse_db) < AUTO_DENSE_THRESHOLD
        result = repro.mine(small_sparse_db, min_support=0.05)
        assert result.representation == "tidset"

    def test_vectorized_backend_prefers_packed(self, tiny_db):
        result = repro.mine(
            tiny_db, backend="vectorized", min_support=2,
        )
        assert result.representation == "bitvector_numpy"

    def test_representation_instance_accepted(self, tiny_db):
        from repro.representations import TidsetRepresentation

        result = repro.mine(
            tiny_db, representation=TidsetRepresentation(), min_support=2,
        )
        assert result.representation == "tidset"


class TestNormalization:
    def test_result_is_stamped(self, tiny_db):
        result = repro.mine(
            tiny_db, algorithm="eclat", representation="tidset",
            backend="multiprocessing", min_support=0.4, n_workers=1,
        )
        assert isinstance(result, MiningResult)
        assert result.algorithm == "eclat"
        assert result.backend == "multiprocessing"
        assert result.dataset == tiny_db.name
        assert result.min_support == 2  # 0.4 * 5 resolved to absolute
        assert result.n_transactions == tiny_db.n_transactions

    def test_fpgrowth_reports_fptree(self, tiny_db):
        result = repro.mine(tiny_db, algorithm="fpgrowth", min_support=2)
        assert result.representation == "fptree"
        assert result.backend == "serial"

    def test_fpgrowth_rejects_vertical_formats(self, tiny_db):
        with pytest.raises(UnsupportedCombinationError):
            repro.mine(
                tiny_db, algorithm="fpgrowth", representation="tidset",
                min_support=2,
            )


class TestObsThreading:
    def test_engine_span_and_counters(self, tiny_db):
        obs = ObsContext(sink=InMemorySink())
        repro.mine(
            tiny_db, algorithm="eclat", representation="tidset",
            min_support=2, obs=obs,
        )
        names = [e.name for e in obs.sink.events]
        assert "engine.mine" in names
        assert "engine.serial.eclat.tidset" in obs.metrics
        # The serial miner's own instrumentation ran too.
        assert "mine.intersections" in obs.metrics

    def test_vectorized_obs(self, tiny_db):
        obs = ObsContext()
        repro.mine(
            tiny_db, backend="vectorized", algorithm="apriori",
            min_support=2, obs=obs,
        )
        assert "mine.intersections" in obs.metrics
        assert obs.metrics.counters()["mine.intersections"] > 0


class TestExecute:
    def test_returns_full_run_objects(self, tiny_db):
        apriori_run = execute(tiny_db, algorithm="apriori", min_support=2)
        assert apriori_run.table is not None
        eclat_run = execute(tiny_db, algorithm="eclat", min_support=2)
        assert eclat_run.max_depth >= 1
        assert apriori_run.result.itemsets == eclat_run.result.itemsets

    def test_rejects_untraced_algorithms(self, tiny_db):
        with pytest.raises(ConfigurationError, match="fpgrowth"):
            execute(tiny_db, algorithm="fpgrowth", min_support=2)


class TestRegistry:
    def test_entry_lookup(self):
        entry = get_backend_entry("vectorized", "eclat")
        assert entry.preferred_representation == "bitvector_numpy"
        assert "bitvector" in entry.representations

    def test_available_listings(self):
        assert available_backends() == [
            "multiprocessing", "serial", "shared_memory", "vectorized",
        ]
        assert available_algorithms("multiprocessing") == ["eclat"]
        assert available_algorithms("shared_memory") == ["apriori", "eclat"]
        assert "apriori" in available_algorithms()

    def test_custom_backend_plugs_in(self, tiny_db):
        def fake_runner(db, rep_name, min_sup, *, obs=None):
            return MiningResult(
                dataset=db.name, algorithm="", representation=rep_name,
                min_support=min_sup, n_transactions=db.n_transactions,
                itemsets={(0,): 3},
            )

        register_backend("fake", "eclat", fake_runner, description="test stub")
        try:
            result = repro.mine(
                tiny_db, backend="fake", representation="tidset", min_support=2,
            )
            assert result.backend == "fake"
            assert result.algorithm == "eclat"
            assert result.itemsets == {(0,): 3}
        finally:
            _REGISTRY.pop(("fake", "eclat"), None)
