"""Tests for the brute-force oracle and closed/maximal condensations."""

import pytest

from repro.core import (
    apriori,
    brute_force,
    closed_itemsets,
    condensation_summary,
    maximal_itemsets,
)
from repro.core.result import from_mapping
from repro.datasets import TransactionDatabase
from repro.errors import ConfigurationError


class TestBruteForce:
    def test_tiny_db(self, tiny_db):
        assert brute_force(tiny_db, 2).itemsets == apriori(tiny_db, 2).itemsets

    def test_max_size_cap(self, tiny_db):
        result = brute_force(tiny_db, 1, max_size=2)
        assert result.max_size() == 2

    def test_long_transactions_rejected_without_cap(self):
        db = TransactionDatabase([list(range(25))])
        with pytest.raises(ConfigurationError, match="max_size"):
            brute_force(db, 1)
        assert len(brute_force(db, 1, max_size=1)) == 25

    def test_empty_db(self, empty_db):
        assert len(brute_force(empty_db, 1)) == 0


class TestClosedMaximal:
    def _result(self):
        # Lattice: {1}:4 {2}:4 {1,2}:4 {3}:3 {1,3}:2
        return from_mapping(
            {(1,): 4, (2,): 4, (1, 2): 4, (3,): 3, (1, 3): 2},
            n_transactions=5,
        )

    def test_closed(self):
        closed = closed_itemsets(self._result())
        # {1} and {2} are absorbed by {1,2} (same support); {3} stays
        # (its superset {1,3} has lower support).
        assert set(closed) == {(1, 2), (3,), (1, 3)}

    def test_maximal(self):
        maximal = maximal_itemsets(self._result())
        assert set(maximal) == {(1, 2), (1, 3)}

    def test_maximal_subset_of_closed(self, tiny_db):
        result = apriori(tiny_db, 2)
        closed = closed_itemsets(result)
        maximal = maximal_itemsets(result)
        assert set(maximal) <= set(closed)
        assert set(closed) <= set(result.itemsets)

    def test_closed_supports_preserved(self, tiny_db):
        result = apriori(tiny_db, 2)
        for items, support in closed_itemsets(result).items():
            assert result.support(items) == support

    def test_summary_counts(self, tiny_db):
        result = apriori(tiny_db, 2)
        summary = condensation_summary(result)
        assert summary["frequent"] == 7
        assert summary["maximal"] <= summary["closed"] <= summary["frequent"]
        assert summary["maximal"] == 1  # {1,2,3} dominates everything

    def test_closed_covers_all_supports(self, small_dense_db):
        """Closed itemsets determine the support of every frequent itemset."""
        result = apriori(small_dense_db, 0.5)
        closed = closed_itemsets(result)
        from repro.core.itemset import is_subset

        for items, support in result.itemsets.items():
            best = max(
                (s for c, s in closed.items() if is_subset(items, c)),
                default=None,
            )
            assert best == support
