"""Tests for trace validation — including injected corruption."""

import numpy as np
import pytest

from repro.core import run_apriori, run_eclat
from repro.errors import SimulationError
from repro.parallel import (
    AprioriTrace,
    EclatTrace,
    validate_apriori_trace,
    validate_eclat_trace,
)


@pytest.fixture
def apriori_trace(paper_db):
    trace = AprioriTrace()
    run_apriori(paper_db, 2, "tidset", sink=trace)
    return trace


@pytest.fixture
def eclat_trace(paper_db):
    sink = EclatTrace()
    run_eclat(paper_db, 2, "tidset", sink=sink)
    return sink.finalize()


class TestHealthyTraces:
    @pytest.mark.parametrize("rep", ["tidset", "bitvector", "diffset", "hybrid"])
    def test_apriori_traces_validate(self, small_dense_db, rep):
        trace = AprioriTrace()
        run_apriori(small_dense_db, 0.4, rep, sink=trace)
        validate_apriori_trace(trace)

    @pytest.mark.parametrize("rep", ["tidset", "bitvector", "diffset", "hybrid"])
    def test_eclat_traces_validate(self, small_dense_db, rep):
        sink = EclatTrace()
        run_eclat(small_dense_db, 0.4, rep, sink=sink)
        validate_eclat_trace(sink.finalize())

    def test_empty_eclat_trace_validates(self, tiny_db):
        sink = EclatTrace()
        run_eclat(tiny_db, 100, "tidset", sink=sink)
        validate_eclat_trace(sink.finalize())


class TestInjectedCorruption:
    def test_missing_singletons(self):
        with pytest.raises(SimulationError, match="singleton"):
            validate_apriori_trace(AprioriTrace())

    def test_parent_index_out_of_range(self, apriori_trace):
        apriori_trace.generations[0].left_parent[0] = 99
        with pytest.raises(SimulationError, match="left parents"):
            validate_apriori_trace(apriori_trace)

    def test_parent_bytes_mismatch(self, apriori_trace):
        apriori_trace.generations[0].right_bytes[0] += 4
        with pytest.raises(SimulationError, match="right bytes"):
            validate_apriori_trace(apriori_trace)

    def test_non_parallel_arrays(self, apriori_trace):
        gen = apriori_trace.generations[0]
        gen.cpu_ops = gen.cpu_ops[:-1]
        with pytest.raises(SimulationError, match="not parallel"):
            validate_apriori_trace(apriori_trace)

    def test_generation_out_of_order(self, apriori_trace):
        apriori_trace.generations[0].generation = 5
        with pytest.raises(SimulationError, match="out of order"):
            validate_apriori_trace(apriori_trace)

    def test_eclat_self_combine(self, eclat_trace):
        eclat_trace.levels[0].combine_right[0] = int(
            eclat_trace.levels[0].combine_left[0]
        )
        with pytest.raises(SimulationError, match="self-combine"):
            validate_eclat_trace(eclat_trace)

    def test_eclat_child_indices_not_dense(self, eclat_trace):
        level = eclat_trace.levels[0]
        frequent = np.nonzero(level.child_index >= 0)[0]
        level.child_index[frequent[0]] = 77
        with pytest.raises(SimulationError, match="not dense"):
            validate_eclat_trace(eclat_trace)

    def test_eclat_creator_out_of_range(self, eclat_trace):
        eclat_trace.levels[1].creator_task[0] = 99
        with pytest.raises(SimulationError, match="creator"):
            validate_eclat_trace(eclat_trace)

    def test_persisted_trace_validates_after_roundtrip(
        self, apriori_trace, tmp_path
    ):
        from repro.parallel import load_apriori_trace, save_apriori_trace

        loaded = load_apriori_trace(
            save_apriori_trace(apriori_trace, tmp_path / "t.npz")
        )
        validate_apriori_trace(loaded)
