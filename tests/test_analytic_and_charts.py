"""Tests for the analytic bounds and terminal charts."""

import numpy as np
import pytest

from repro.analysis.charts import sparkline, speedup_chart
from repro.errors import ConfigurationError
from repro.machine import (
    BLACKLIGHT,
    WorkloadSummary,
    amdahl_speedup,
    efficiency_at,
    saturation_threads,
    speedup_upper_bound,
)
from repro.parallel.speedup import SpeedupSeries


class TestAnalyticBounds:
    def test_amdahl_classic(self):
        # 10% serial caps speedup at 10.
        w = WorkloadSummary(parallel_seconds=9.0, serial_seconds=1.0)
        assert amdahl_speedup(w, 1) == pytest.approx(1.0)
        assert amdahl_speedup(w, 10**9) == pytest.approx(10.0, rel=1e-3)

    def test_amdahl_fully_parallel(self):
        w = WorkloadSummary(parallel_seconds=4.0, serial_seconds=0.0)
        assert amdahl_speedup(w, 8) == pytest.approx(8.0)
        assert saturation_threads(w) == float("inf")

    def test_saturation_threads(self):
        w = WorkloadSummary(parallel_seconds=9.0, serial_seconds=1.0)
        assert saturation_threads(w) == pytest.approx(9.0)

    def test_task_count_cap(self):
        w = WorkloadSummary(
            parallel_seconds=10.0, serial_seconds=0.0, n_tasks=5
        )
        assert speedup_upper_bound(w, 1000) == pytest.approx(5.0)

    def test_critical_path_cap(self):
        w = WorkloadSummary(
            parallel_seconds=10.0, serial_seconds=0.0, max_task_seconds=2.0
        )
        assert speedup_upper_bound(w, 1000) == pytest.approx(5.0)

    def test_bisection_cap_only_off_blade(self):
        bytes_ = 2.0 * BLACKLIGHT.bisection_bandwidth  # 2 s floor
        w = WorkloadSummary(
            parallel_seconds=10.0, serial_seconds=0.0, remote_bytes=bytes_
        )
        # Within one blade the remote term does not apply.
        assert speedup_upper_bound(w, 16) == pytest.approx(16.0)
        assert speedup_upper_bound(w, 1024) == pytest.approx(5.0)

    def test_efficiency(self):
        w = WorkloadSummary(parallel_seconds=8.0, serial_seconds=0.0)
        assert efficiency_at(w, 8) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadSummary(parallel_seconds=-1.0, serial_seconds=0.0)
        with pytest.raises(ConfigurationError):
            WorkloadSummary(
                parallel_seconds=1.0, serial_seconds=0.0, max_task_seconds=2.0
            )
        w = WorkloadSummary(parallel_seconds=1.0, serial_seconds=0.0)
        with pytest.raises(ConfigurationError):
            amdahl_speedup(w, 0)

    def test_simulator_never_beats_bounds(self):
        """Cross-check: event simulation respects the analytic envelope."""
        from repro.openmp import ScheduleSpec, simulate_parallel_for

        rng = np.random.default_rng(5)
        durations = rng.random(40)
        w = WorkloadSummary(
            parallel_seconds=float(durations.sum()),
            serial_seconds=0.0,
            n_tasks=int(durations.size),
            max_task_seconds=float(durations.max()),
        )
        for threads in (2, 8, 64, 512):
            out = simulate_parallel_for(
                durations, threads, ScheduleSpec("dynamic", 1)
            )
            simulated = durations.sum() / out.makespan
            assert simulated <= speedup_upper_bound(w, threads) + 1e-9


class TestCharts:
    def test_sparkline_monotone(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_sparkline_flat_and_empty(self):
        assert sparkline([5.0, 5.0]) == "▁▁"
        assert sparkline([]) == ""

    def test_chart_contains_series_and_labels(self):
        series = [
            SpeedupSeries("a@1", [16, 64], [4.0, 8.0]),
            SpeedupSeries("b@1", [16, 64], [2.0, 3.0]),
        ]
        chart = speedup_chart(series, title="fig")
        assert "fig" in chart
        assert "o=a@1" in chart and "x=b@1" in chart
        assert "16" in chart and "64" in chart

    def test_chart_peak_on_top_row(self):
        series = [SpeedupSeries("a@1", [16, 64], [1.0, 10.0])]
        top_data_line = speedup_chart(series).splitlines()[0]
        assert "o" in top_data_line  # the peak sits on the top row

    def test_chart_validation(self):
        a = SpeedupSeries("a", [16], [1.0])
        b = SpeedupSeries("b", [32], [1.0])
        with pytest.raises(ConfigurationError):
            speedup_chart([a, b])
        with pytest.raises(ConfigurationError):
            speedup_chart([a], height=2)

    def test_chart_empty(self):
        assert speedup_chart([], title="t") == "t"
