"""Tests for the simulated parallel Apriori/Eclat replays."""

import numpy as np
import pytest

from repro.core import run_apriori, run_eclat
from repro.errors import SimulationError
from repro.machine import BLACKLIGHT, UNIFORM_MEMORY
from repro.openmp.schedule import ScheduleSpec
from repro.parallel import (
    AprioriTrace,
    EclatTrace,
    run_scalability_study,
    simulate_apriori,
    simulate_eclat,
)


@pytest.fixture(scope="module")
def dense_db():
    from repro.datasets.synthetic import DenseAttributeGenerator

    gen = DenseAttributeGenerator(
        domain_sizes=(3, 3, 3, 4, 4, 2),
        n_classes=2,
        peak=0.8,
        n_shared_attributes=3,
        shared_peak=0.95,
        seed=3,
    )
    return gen.generate(500, name="sim-dense")


@pytest.fixture(scope="module")
def apriori_trace(dense_db):
    trace = AprioriTrace()
    run_apriori(dense_db, 0.5, "tidset", sink=trace)
    return trace


@pytest.fixture(scope="module")
def eclat_trace(dense_db):
    trace = EclatTrace()
    run_eclat(dense_db, 0.5, "tidset", sink=trace)
    return trace.finalize()


class TestSimulateApriori:
    def test_single_thread_baseline_positive(self, apriori_trace):
        t1 = simulate_apriori(apriori_trace, 1)
        assert t1.total_seconds > 0
        assert t1.load_seconds > 0
        assert not t1.link_limited_regions  # one blade, no interconnect

    def test_sixteen_threads_faster(self, apriori_trace):
        t1 = simulate_apriori(apriori_trace, 1)
        t16 = simulate_apriori(apriori_trace, 16)
        assert t16.total_seconds < t1.total_seconds

    def test_region_count_matches_generations(self, apriori_trace):
        t = simulate_apriori(apriori_trace, 16)
        assert len(t.regions) == len(apriori_trace.generations)
        assert all(r.label.startswith("gen") for r in t.regions)

    def test_uniform_memory_no_slower(self, apriori_trace):
        numa = simulate_apriori(apriori_trace, 256, machine=BLACKLIGHT)
        uma = simulate_apriori(apriori_trace, 256, machine=UNIFORM_MEMORY)
        assert uma.total_seconds <= numa.total_seconds

    def test_interleaved_placement_supported(self, apriori_trace):
        t = simulate_apriori(apriori_trace, 64, base_placement="interleaved")
        assert t.total_seconds > 0

    def test_bad_placement_rejected(self, apriori_trace):
        with pytest.raises(SimulationError):
            simulate_apriori(apriori_trace, 16, base_placement="everywhere")

    def test_untraced_rejected(self):
        with pytest.raises(SimulationError):
            simulate_apriori(AprioriTrace(), 4)

    def test_dynamic_schedule_path(self, apriori_trace):
        t = simulate_apriori(
            apriori_trace, 64, schedule=ScheduleSpec("dynamic", 4)
        )
        assert t.total_seconds > 0

    def test_serial_candidate_generation_counted(self, apriori_trace):
        t = simulate_apriori(apriori_trace, 1024)
        assert t.serial_seconds > t.load_seconds  # load + per-gen serial


class TestSimulateEclat:
    def test_modes_both_run(self, eclat_trace):
        top = simulate_eclat(eclat_trace, 64, task_mode="toplevel")
        level = simulate_eclat(eclat_trace, 64, task_mode="level")
        assert top.total_seconds > 0
        assert level.total_seconds > 0
        assert top.regions[0].label == "toplevel"
        assert level.regions[0].label == "depth1"

    def test_bad_mode_rejected(self, eclat_trace):
        with pytest.raises(SimulationError):
            simulate_eclat(eclat_trace, 4, task_mode="magic")

    def test_toplevel_parallelism_bounded_by_tasks(self, eclat_trace):
        """More threads than tasks cannot help the toplevel mode."""
        n_tasks = eclat_trace.n_toplevel_tasks
        at_tasks = simulate_eclat(eclat_trace, 1024, task_mode="toplevel")
        more = simulate_eclat(eclat_trace, 1024, task_mode="toplevel")
        assert at_tasks.total_seconds == pytest.approx(more.total_seconds)
        assert n_tasks < 1024

    def test_single_blade_no_link_bound(self, eclat_trace):
        t = simulate_eclat(eclat_trace, 16)
        assert t.regions[0].link_bound == 0.0

    def test_multi_blade_master_placement_has_remote(self, eclat_trace):
        t16 = simulate_eclat(eclat_trace, 16)
        # With > 1 blade the shared reads turn remote: per-thread work grows.
        t17 = simulate_eclat(eclat_trace, 17)
        assert t17.regions[0].makespan >= 0  # sanity; both computed
        assert t16.total_seconds > 0

    def test_sixteen_threads_faster_than_one(self, eclat_trace):
        t1 = simulate_eclat(eclat_trace, 1)
        t16 = simulate_eclat(eclat_trace, 16)
        assert t16.total_seconds < t1.total_seconds


class TestRunScalabilityStudy:
    def test_study_end_to_end(self, dense_db):
        study = run_scalability_study(
            dense_db, "eclat", "diffset", 0.5, thread_counts=[1, 16, 64]
        )
        assert study.label() == "sim-dense@0.5"
        assert set(study.runtimes()) == {1, 16, 64}
        ups = study.speedups()
        assert ups[1] == pytest.approx(1.0)
        assert ups[16] > 1.0
        best_t, best = study.peak_speedup()
        assert best >= ups[16]

    def test_mining_result_attached_and_correct(self, dense_db):
        study = run_scalability_study(
            dense_db, "apriori", "tidset", 0.5, thread_counts=[1, 16]
        )
        from repro.core import fpgrowth

        assert study.mining_result.same_itemsets(fpgrowth(dense_db, 0.5))

    def test_unknown_algorithm(self, dense_db):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            run_scalability_study(dense_db, "fpgrowth", "tidset", 0.5)

    def test_speedup_baseline_must_exist(self, dense_db):
        study = run_scalability_study(
            dense_db, "eclat", "tidset", 0.5, thread_counts=[16, 64]
        )
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            study.speedups()
        assert study.speedups(baseline_threads=16)[16] == pytest.approx(1.0)

    def test_notes_record_configuration(self, dense_db):
        study = run_scalability_study(
            dense_db, "apriori", "diffset", 0.5, thread_counts=[1]
        )
        assert "schedule" in study.notes
        assert study.notes["base_placement"] == "master"
