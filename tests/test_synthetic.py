"""Unit tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    DenseAttributeGenerator,
    QuestGenerator,
    split_domains,
)
from repro.errors import ConfigurationError


class TestQuestGenerator:
    def test_deterministic(self):
        a = QuestGenerator(seed=5).generate(50)
        b = QuestGenerator(seed=5).generate(50)
        assert [t.tolist() for t in a] == [t.tolist() for t in b]

    def test_seed_changes_output(self):
        a = QuestGenerator(seed=5).generate(50)
        b = QuestGenerator(seed=6).generate(50)
        assert [t.tolist() for t in a] != [t.tolist() for t in b]

    def test_transaction_count(self):
        assert QuestGenerator(seed=1).generate(123).n_transactions == 123

    def test_zero_transactions(self):
        assert QuestGenerator(seed=1).generate(0).n_transactions == 0

    def test_average_length_near_target(self):
        gen = QuestGenerator(
            n_items=500, avg_transaction_length=12, seed=3
        )
        db = gen.generate(800)
        assert 6 <= db.avg_length <= 18

    def test_items_within_universe(self):
        gen = QuestGenerator(n_items=40, seed=2)
        db = gen.generate(200)
        assert db.n_items <= 40

    def test_default_name_encodes_parameters(self):
        gen = QuestGenerator(
            avg_transaction_length=10, avg_pattern_length=4, seed=1
        )
        assert gen.generate(10).name == "T10I4D10"

    def test_patterns_create_correlation(self):
        """Frequent pairs should beat the independence expectation."""
        gen = QuestGenerator(
            n_items=200, avg_transaction_length=8, n_patterns=20, seed=9
        )
        db = gen.generate(600)
        supports = db.item_supports() / db.n_transactions
        top_items = np.argsort(supports)[-8:]
        best_lift = 0.0
        for i in range(len(top_items)):
            for j in range(i + 1, len(top_items)):
                a, b = int(top_items[i]), int(top_items[j])
                pair = db.support_of([a, b]) / db.n_transactions
                if supports[a] and supports[b]:
                    best_lift = max(best_lift, pair / (supports[a] * supports[b]))
        assert best_lift > 1.2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_items": 0},
            {"avg_transaction_length": 0},
            {"avg_pattern_length": -1},
            {"correlation": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            QuestGenerator(**kwargs)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            QuestGenerator(seed=1).generate(-1)


class TestDenseAttributeGenerator:
    def test_one_item_per_attribute(self):
        gen = DenseAttributeGenerator(domain_sizes=(3, 4, 2), seed=1)
        db = gen.generate(100)
        assert all(t.size == 3 for t in db)

    def test_values_within_attribute_ranges(self):
        gen = DenseAttributeGenerator(domain_sizes=(3, 4, 2), seed=1)
        db = gen.generate(100)
        for t in db:
            a, b, c = t.tolist()
            assert 0 <= a < 3
            assert 3 <= b < 7
            assert 7 <= c < 9

    def test_deterministic(self):
        g = dict(domain_sizes=(3, 3, 3), n_classes=2, seed=4)
        a = DenseAttributeGenerator(**g).generate(60)
        b = DenseAttributeGenerator(**g).generate(60)
        assert [t.tolist() for t in a] == [t.tolist() for t in b]

    def test_n_items_is_domain_sum(self):
        gen = DenseAttributeGenerator(domain_sizes=(3, 4, 2), seed=1)
        assert gen.n_items == 9
        assert gen.generate(10).n_items == 9

    def test_shared_attributes_create_dominant_values(self):
        gen = DenseAttributeGenerator(
            domain_sizes=(4,) * 6,
            n_shared_attributes=3,
            shared_peak=0.95,
            shared_floor=0.9,
            seed=11,
        )
        db = gen.generate(2000)
        supports = db.item_supports() / db.n_transactions
        # Each of the first three attributes has one value near its ladder
        # probability (>= ~0.85).
        for attr in range(3):
            block = supports[attr * 4 : (attr + 1) * 4]
            assert block.max() > 0.8

    def test_shared_dominants_lose_little_support_when_joined(self):
        gen = DenseAttributeGenerator(
            domain_sizes=(4,) * 6,
            n_shared_attributes=4,
            shared_peak=0.97,
            shared_floor=0.93,
            seed=11,
        )
        db = gen.generate(3000)
        supports = db.item_supports() / db.n_transactions
        dominants = [
            int(np.argmax(supports[a * 4 : (a + 1) * 4])) + a * 4 for a in range(4)
        ]
        pair = db.support_of(dominants[:2]) / db.n_transactions
        singleton = supports[dominants[0]]
        assert pair > 0.8 * singleton

    def test_zero_shared_attributes_allowed(self):
        gen = DenseAttributeGenerator(domain_sizes=(2, 2), seed=0)
        assert gen.generate(10).n_transactions == 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"domain_sizes": ()},
            {"domain_sizes": (0, 2)},
            {"n_classes": 0},
            {"peak": 1.0},
            {"n_shared_attributes": 5, "domain_sizes": (2, 2)},
            {"shared_floor": 0.99, "shared_peak": 0.9},
        ],
    )
    def test_validation(self, kwargs):
        base = dict(domain_sizes=(2, 2, 2))
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            DenseAttributeGenerator(**base)


class TestSplitDomains:
    def test_sums_to_n_items(self):
        sizes = split_domains(10, 47, seed=3)
        assert sum(sizes) == 47
        assert len(sizes) == 10

    def test_minimum_two_per_attribute(self):
        assert min(split_domains(5, 10, seed=1)) >= 2

    def test_deterministic(self):
        assert split_domains(7, 30, seed=2) == split_domains(7, 30, seed=2)

    def test_too_few_items_rejected(self):
        with pytest.raises(ConfigurationError):
            split_domains(6, 11)
