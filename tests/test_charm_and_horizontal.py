"""Tests for CHARM closed mining and the horizontal Apriori baseline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    apriori,
    apriori_horizontal,
    charm,
    closed_itemsets,
    run_apriori_horizontal,
)
from repro.datasets.transaction_db import TransactionDatabase


class TestCharm:
    def test_tiny_db_matches_filter(self, tiny_db):
        reference = closed_itemsets(apriori(tiny_db, 2))
        assert charm(tiny_db, 2).itemsets == reference

    def test_paper_db_matches_filter(self, paper_db):
        for support in (2, 3, 4):
            reference = closed_itemsets(apriori(paper_db, support))
            assert charm(paper_db, support).itemsets == reference

    def test_dense_db_matches_filter(self, small_dense_db):
        reference = closed_itemsets(apriori(small_dense_db, 0.3))
        got = charm(small_dense_db, 0.3).itemsets
        assert got == reference

    def test_sparse_db_matches_filter(self, small_sparse_db):
        reference = closed_itemsets(apriori(small_sparse_db, 0.05))
        assert charm(small_sparse_db, 0.05).itemsets == reference

    def test_empty(self, empty_db):
        assert len(charm(empty_db, 1)) == 0

    def test_fewer_than_all_itemsets_on_implied_data(self, paper_db):
        # E appears in every transaction, so no set lacking E is closed.
        all_sets = apriori(paper_db, 3)
        closed = charm(paper_db, 3)
        assert 0 < len(closed) < len(all_sets)

    def test_result_labels(self, tiny_db):
        result = charm(tiny_db, 2)
        assert result.algorithm == "charm"

    @settings(max_examples=40, deadline=None)
    @given(
        transactions=st.lists(
            st.lists(st.integers(min_value=0, max_value=6), max_size=5),
            max_size=10,
        ),
        min_sup=st.integers(min_value=1, max_value=4),
    )
    def test_property_matches_filtered_lattice(self, transactions, min_sup):
        db = TransactionDatabase(transactions, n_items=7, name="hypo")
        reference = closed_itemsets(apriori(db, min_sup))
        assert charm(db, min_sup).itemsets == reference


class TestHorizontalApriori:
    def test_matches_vertical(self, tiny_db):
        assert apriori_horizontal(tiny_db, 2).same_itemsets(
            apriori(tiny_db, 2)
        )

    def test_matches_vertical_dense(self, small_dense_db):
        assert apriori_horizontal(small_dense_db, 0.4).same_itemsets(
            apriori(small_dense_db, 0.4)
        )

    def test_scan_count(self, tiny_db):
        run = run_apriori_horizontal(tiny_db, 2)
        # Generations 1..3 -> three database scans.
        assert run.n_database_scans == 3

    def test_contended_increments_positive(self, tiny_db):
        run = run_apriori_horizontal(tiny_db, 2)
        # Every counted support contributed increments.
        assert run.contended_increments >= sum(
            run.result.itemsets.values()
        )

    def test_vertical_cheaper_on_dense_data(self, small_dense_db):
        """The paper's motivation: horizontal scanning costs far more."""
        from repro.core import run_apriori

        horizontal = run_apriori_horizontal(small_dense_db, 0.4)
        vertical = run_apriori(small_dense_db, 0.4, "tidset")
        # The gap grows with database size and lattice depth; even this
        # 200-row fixture pays ~2x for repeated scanning.
        assert horizontal.total_cost.cpu_ops > 1.5 * vertical.total_cost.cpu_ops

    def test_max_generations(self, tiny_db):
        run = run_apriori_horizontal(tiny_db, 2, max_generations=1)
        assert run.result.max_size() == 1

    def test_empty_db(self, empty_db):
        assert len(apriori_horizontal(empty_db, 1)) == 0
