"""Tests for SON two-phase out-of-core mining.

The acceptance property: for arbitrary databases, thresholds, and
partition counts, ``mine(db_path=...)`` is **bit-identical** (itemsets and
supports) to in-memory ``mine(read_fimi(path), ...)``.  Around it sit unit
tests for the scaled-threshold math, the vectorized candidate counter, the
partition planner, the cost-model sweep, and the engine/ledger/live
wiring.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import read_fimi, scan_fimi, write_fimi
from repro.datasets.transaction_db import TransactionDatabase
from repro.engine import mine
from repro.errors import ConfigurationError
from repro.machine.blacklight import BLACKLIGHT
from repro.machine.cost_model import CostModel
from repro.outofcore import (
    count_candidate_supports,
    estimate_chunk_bytes,
    local_min_support,
    mine_out_of_core,
    plan_partitions,
    predict_partition_seconds,
    predicted_sweet_spot,
    sweep_partition_counts,
)

transactions_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=6),
    min_size=0,
    max_size=16,
)


def _write(tmp_path, transactions):
    db = TransactionDatabase(transactions, n_items=8, name="hypo")
    path = tmp_path / "hypo.dat"
    write_fimi(db, path)
    return path


class TestLocalMinSupport:
    def test_scaling_is_integer_ceil(self):
        # ceil(10 * 30 / 100) = 3
        assert local_min_support(10, 30, 100) == 3
        # ceil(10 * 31 / 100) = ceil(3.1) = 4
        assert local_min_support(10, 31, 100) == 4
        assert local_min_support(10, 100, 100) == 10

    def test_floor_of_one(self):
        assert local_min_support(1, 1, 1000) == 1
        assert local_min_support(5, 0, 100) == 1

    def test_empty_database(self):
        assert local_min_support(3, 0, 0) == 1

    def test_superset_guarantee_arithmetic(self):
        # If an itemset misses the local threshold in every partition its
        # global count is at most sum(local_min - 1) < s: check the bound
        # holds for an adversarial uneven split.
        s, sizes = 7, [1, 2, 3, 94]
        total = sum(sizes)
        worst = sum(local_min_support(s, n_i, total) - 1 for n_i in sizes)
        assert worst < s


class TestSONProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        transactions=transactions_strategy,
        min_sup=st.one_of(
            st.integers(min_value=1, max_value=5),
            st.floats(min_value=0.05, max_value=1.0),
        ),
        n_partitions=st.integers(min_value=1, max_value=6),
    )
    def test_bit_identical_to_in_memory_mine(
        self, tmp_path_factory, transactions, min_sup, n_partitions
    ):
        tmp_path = tmp_path_factory.mktemp("son")
        path = _write(tmp_path, transactions)
        expected = mine(read_fimi(path), min_support=min_sup, live=False)
        actual = mine(
            db_path=path, min_support=min_sup, n_partitions=n_partitions,
            live=False,
        )
        assert actual.itemsets == expected.itemsets
        assert actual.min_support == expected.min_support
        assert actual.n_transactions == expected.n_transactions

    @pytest.mark.parametrize(
        "algorithm,backend",
        [("eclat", "serial"), ("apriori", "serial"),
         ("eclat", "vectorized"), ("apriori", "vectorized"),
         ("fpgrowth", "serial")],
    )
    def test_every_backend_agrees(self, tmp_path, paper_db, algorithm, backend):
        path = tmp_path / "paper.dat"
        write_fimi(paper_db, path)
        expected = mine(read_fimi(path), min_support=2, live=False)
        result = mine(
            db_path=path, min_support=2, algorithm=algorithm,
            backend=backend, n_partitions=3, live=False,
        )
        assert result.itemsets == expected.itemsets

    def test_memory_budget_path(self, tmp_path, paper_db):
        path = tmp_path / "paper.dat"
        write_fimi(paper_db, path)
        stats = scan_fimi(path)
        budget = estimate_chunk_bytes(stats, 2)  # forces multiple partitions
        expected = mine(read_fimi(path), min_support=2, live=False)
        result = mine(
            db_path=path, min_support=2, max_memory_bytes=budget, live=False,
        )
        assert result.itemsets == expected.itemsets

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.dat"
        path.write_text("", encoding="utf-8")
        result = mine(db_path=path, min_support=0.5, live=False)
        assert result.itemsets == {}
        assert result.n_transactions == 0

    def test_charm_is_rejected(self, tmp_path, paper_db):
        path = tmp_path / "paper.dat"
        write_fimi(paper_db, path)
        with pytest.raises(ConfigurationError, match="closed sets only"):
            mine_out_of_core(path, min_support=2, algorithm="charm")

    def test_result_metadata(self, tmp_path, paper_db):
        path = tmp_path / "meta.dat"
        write_fimi(paper_db, path)
        result = mine(
            db_path=path, min_support=2, n_partitions=2, live=False,
        )
        assert result.dataset == "meta"
        assert result.backend == "serial"
        assert result.algorithm == "eclat"
        assert result.representation in ("tidset", "diffset")


class TestCandidateCounting:
    def test_counts_match_scan_oracle(self, tmp_path, paper_db):
        path = tmp_path / "paper.dat"
        write_fimi(paper_db, path)
        candidates = [(1,), (2,), (1, 2), (1, 2, 3), (0, 5)]
        supports = count_candidate_supports(
            path, candidates, n_items=paper_db.n_items, chunk_transactions=2,
        )
        assert supports.tolist() == [
            paper_db.support_of(c) for c in candidates
        ]

    def test_batching_does_not_change_counts(self, tmp_path, paper_db):
        path = tmp_path / "paper.dat"
        write_fimi(paper_db, path)
        candidates = [(i,) for i in range(paper_db.n_items)]
        baseline = count_candidate_supports(
            path, candidates, n_items=paper_db.n_items, chunk_transactions=3,
        )
        batched = count_candidate_supports(
            path, candidates, n_items=paper_db.n_items, chunk_transactions=3,
            candidate_batch=1,
        )
        np.testing.assert_array_equal(baseline, batched)

    def test_no_candidates(self, tmp_path, paper_db):
        path = tmp_path / "paper.dat"
        write_fimi(paper_db, path)
        chunks_seen = []
        supports = count_candidate_supports(
            path, [], n_items=paper_db.n_items, chunk_transactions=2,
            on_chunk=lambda: chunks_seen.append(1),
        )
        assert supports.size == 0
        assert len(chunks_seen) == len(paper_db) // 2 + (len(paper_db) % 2 > 0)

    def test_empty_itemset_rejected(self, tmp_path, paper_db):
        path = tmp_path / "paper.dat"
        write_fimi(paper_db, path)
        with pytest.raises(ConfigurationError, match="empty itemset"):
            count_candidate_supports(
                path, [()], n_items=paper_db.n_items, chunk_transactions=2,
            )


class TestPlanner:
    def _stats(self, tmp_path, n=50, width=6):
        db = TransactionDatabase(
            [[i % 11, (i + 1) % 11, (i * 3) % 11][: 1 + i % width]
             for i in range(n)],
            name="plan",
        )
        path = tmp_path / "plan.dat"
        write_fimi(db, path)
        return scan_fimi(path)

    def test_explicit_partition_count_wins(self, tmp_path):
        stats = self._stats(tmp_path)
        plan = plan_partitions(stats, n_partitions=5, max_memory_bytes=10**9)
        assert plan.n_partitions == 5
        assert plan.chunk_transactions == 10

    def test_budget_picks_smallest_feasible(self, tmp_path):
        stats = self._stats(tmp_path)
        generous = plan_partitions(stats, max_memory_bytes=10**9)
        assert generous.n_partitions == 1
        tight = plan_partitions(
            stats, max_memory_bytes=estimate_chunk_bytes(stats, 10)
        )
        assert tight.n_partitions == 5
        assert tight.estimated_chunk_bytes <= tight.max_memory_bytes
        # One fewer partition would overflow the budget.
        bigger_chunk = estimate_chunk_bytes(
            stats, plan_partitions(stats, n_partitions=4).chunk_transactions
        )
        assert bigger_chunk > tight.max_memory_bytes

    def test_estimate_is_monotone_in_chunk_size(self, tmp_path):
        stats = self._stats(tmp_path)
        estimates = [estimate_chunk_bytes(stats, c) for c in (1, 5, 10, 50)]
        assert estimates == sorted(estimates)

    def test_impossible_budget_raises(self, tmp_path):
        stats = self._stats(tmp_path)
        with pytest.raises(ConfigurationError, match="max_memory_bytes"):
            plan_partitions(stats, max_memory_bytes=16)

    def test_invalid_inputs(self, tmp_path):
        stats = self._stats(tmp_path)
        with pytest.raises(ConfigurationError):
            plan_partitions(stats, n_partitions=0)
        with pytest.raises(ConfigurationError):
            plan_partitions(stats, max_memory_bytes=0)
        with pytest.raises(ConfigurationError):
            predict_partition_seconds(stats, 0)


class TestCostModelSweep:
    def test_io_term(self):
        model = CostModel()
        assert model.io_time(BLACKLIGHT.io_bytes_per_sec) == pytest.approx(1.0)
        assert model.io_time(0) == 0.0

    def test_io_rate_is_validated(self):
        with pytest.raises(ConfigurationError, match="io_bytes_per_sec"):
            BLACKLIGHT.with_overrides(io_bytes_per_sec=0.0)

    def test_io_floor_is_flat_and_partition_terms_grow(self, tmp_path):
        db = TransactionDatabase(
            [[i % 7, (i + 2) % 7] for i in range(200)], name="sweep"
        )
        path = tmp_path / "sweep.dat"
        write_fimi(db, path)
        stats = scan_fimi(path)
        sweep = sweep_partition_counts(stats, [1, 2, 4, 8])
        ios = [row["io_seconds"] for row in sweep]
        assert ios == [ios[0]] * len(ios)  # same bytes read at any P
        setups = [row["setup_seconds"] for row in sweep]
        counts = [row["count_seconds"] for row in sweep]
        assert setups == sorted(setups) and setups[0] < setups[-1]
        assert counts == sorted(counts) and counts[0] < counts[-1]
        totals = [row["total_seconds"] for row in sweep]
        assert totals == sorted(totals)

    def test_sweet_spot_honors_budget(self, tmp_path):
        db = TransactionDatabase(
            [[i % 7, (i + 2) % 7] for i in range(200)], name="sweep"
        )
        path = tmp_path / "sweep.dat"
        write_fimi(db, path)
        stats = scan_fimi(path)
        assert predicted_sweet_spot(stats, [1, 2, 4, 8]) == 1
        budget = estimate_chunk_bytes(stats, 50)
        assert predicted_sweet_spot(
            stats, [1, 2, 4, 8], max_memory_bytes=budget
        ) == 4
        with pytest.raises(ConfigurationError, match="no partition count"):
            predicted_sweet_spot(stats, [1], max_memory_bytes=budget)


class TestEngineWiring:
    def test_db_and_db_path_are_exclusive(self, tmp_path, paper_db):
        path = tmp_path / "x.dat"
        write_fimi(paper_db, path)
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            mine(paper_db, db_path=path, min_support=2)

    def test_neither_db_nor_db_path(self):
        with pytest.raises(ConfigurationError, match="needs a database"):
            mine(min_support=2)

    def test_out_of_core_knobs_rejected_in_memory(self, paper_db):
        with pytest.raises(ConfigurationError, match="out-of-core"):
            mine(paper_db, min_support=2, max_memory_bytes=10**6)
        with pytest.raises(ConfigurationError, match="out-of-core"):
            mine(paper_db, min_support=2, n_partitions=2)

    def test_unknown_backend_option_rejected(self, tmp_path, paper_db):
        path = tmp_path / "x.dat"
        write_fimi(paper_db, path)
        with pytest.raises(ConfigurationError, match="unknown option"):
            mine(db_path=path, min_support=2, bogus_option=1)

    def test_ledger_record(self, tmp_path, paper_db):
        from repro.obs.ledger import Ledger

        path = tmp_path / "x.dat"
        write_fimi(paper_db, path)
        ledger = Ledger(tmp_path / "runs")
        result = mine(
            db_path=path, min_support=2, n_partitions=2, ledger=ledger,
            live=False,
        )
        record = ledger.last(1)[0]
        assert record.kind == "mine-out-of-core"
        assert record.n_itemsets == len(result)
        assert record.config["out_of_core"] is True
        assert record.config["n_partitions"] == 2
        assert record.dataset["sha256"] == scan_fimi(path).sha256
        assert record.extra["n_candidates"] >= len(result)

    def test_live_progress_is_monotone_and_finishes(self, tmp_path, paper_db):
        from repro.obs.live import ProgressTracker, validate_status

        path = tmp_path / "x.dat"
        write_fimi(paper_db, path)
        fractions = []
        tracker = ProgressTracker(
            kind="mine-out-of-core", backend="serial", algorithm="eclat",
            dataset="x", on_update=lambda doc: fractions.append(
                doc["progress"]["fraction"]
            ),
        )
        mine(
            db_path=path, min_support=2, n_partitions=3, live=tracker,
        )
        assert fractions == sorted(fractions)
        document = tracker.status()
        validate_status(document)
        assert document["state"] == "done"
        assert document["progress"] == {
            # 3 phase-1 partitions + 3 phase-2 chunks
            "completed": 6, "total": 6, "fraction": 1.0,
        }

    def test_failed_run_marks_tracker(self, tmp_path):
        from repro.obs.live import ProgressTracker

        path = tmp_path / "bad.dat"
        path.write_text("1 2\nboom\n", encoding="utf-8")
        tracker = ProgressTracker(kind="mine-out-of-core", dataset="bad")
        with pytest.raises(Exception):
            mine(db_path=path, min_support=1, live=tracker)
        assert tracker.state == "failed"
