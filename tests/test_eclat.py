"""Unit tests for the Eclat miner."""

import pytest

from repro.core import eclat, run_eclat
from repro.errors import ConfigurationError

EXPECTED_TINY = {
    (1,): 4, (2,): 4, (3,): 4,
    (1, 2): 3, (1, 3): 3, (2, 3): 3,
    (1, 2, 3): 2,
}


@pytest.mark.parametrize("rep", ["tidset", "bitvector", "diffset"])
@pytest.mark.parametrize("order", ["support", "id"])
class TestCorrectness:
    def test_tiny_db(self, tiny_db, rep, order):
        result = eclat(tiny_db, 2, rep, item_order=order)
        assert result.itemsets == EXPECTED_TINY

    def test_figure2_example(self, paper_db, rep, order):
        result = eclat(paper_db, 3, rep, item_order=order)
        assert result.support((0, 2, 4)) == 3  # ACE
        assert (3,) not in result

    def test_empty_db(self, empty_db, rep, order):
        assert len(eclat(empty_db, 1, rep, item_order=order)) == 0

    def test_matches_oracle_supports(self, small_dense_db, rep, order):
        result = eclat(small_dense_db, 0.5, rep, item_order=order)
        assert len(result) > 0
        for items in list(result)[:15]:
            assert result.support(items) == small_dense_db.support_of(items)


class TestItemOrder:
    def test_orders_agree(self, small_dense_db):
        by_support = eclat(small_dense_db, 0.4, "tidset", item_order="support")
        by_id = eclat(small_dense_db, 0.4, "tidset", item_order="id")
        assert by_support.same_itemsets(by_id)

    def test_orders_agree_diffset(self, small_dense_db):
        by_support = eclat(small_dense_db, 0.4, "diffset", item_order="support")
        by_id = eclat(small_dense_db, 0.4, "diffset", item_order="id")
        assert by_support.same_itemsets(by_id)

    def test_invalid_order(self, tiny_db):
        with pytest.raises(ConfigurationError):
            eclat(tiny_db, 2, "tidset", item_order="random")


class TestRunEclat:
    def test_metadata(self, tiny_db):
        run = run_eclat(tiny_db, 2, "tidset")
        assert run.n_toplevel_tasks == 3
        assert run.max_depth == 3  # reaches the 3-itemset class
        assert run.total_cost.cpu_ops > 0

    def test_no_frequent_items(self, tiny_db):
        run = run_eclat(tiny_db, 5, "tidset")
        assert run.n_toplevel_tasks == 0
        assert len(run.result) == 0

    def test_result_labels(self, tiny_db):
        result = eclat(tiny_db, 2, "bitvector")
        assert result.algorithm == "eclat"
        assert result.representation == "bitvector"

    def test_sink_combine_indices_consistent(self, tiny_db):
        """Child indices must be dense, unique, per depth."""
        seen: dict[int, list[int]] = {}

        class Sink:
            def on_singletons(self, n, cost, payload_bytes=None):
                seen[1] = list(range(n))

            def on_combine(self, depth, left, right, cost, payload, child):
                assert left < right or True  # indices are positions, no order guarantee across classes
                if child >= 0:
                    seen.setdefault(depth + 1, []).append(child)

        run_eclat(tiny_db, 2, "tidset", sink=Sink())
        for depth, ids in seen.items():
            assert sorted(ids) == list(range(len(ids))), depth

    def test_left_index_below_right_index_within_class(self, paper_db):
        """Within a class the left member precedes the right in order."""

        class Sink:
            def on_singletons(self, n, cost, payload_bytes=None):
                pass

            def on_combine(self, depth, left, right, cost, payload, child):
                assert left != right

        run_eclat(paper_db, 2, "tidset", sink=Sink())
