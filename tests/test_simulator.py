"""Tests for the parallel-for makespan simulator and thread team."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.machine import BLACKLIGHT
from repro.openmp import (
    ScheduleSpec,
    ThreadTeam,
    check_trace,
    load_balance_summary,
    simulate_parallel_for,
)


class TestStaticSimulation:
    def test_single_thread_is_sum(self):
        durations = np.array([1.0, 2.0, 3.0])
        out = simulate_parallel_for(durations, 1, ScheduleSpec("static"))
        assert out.makespan == pytest.approx(6.0)

    def test_even_work_splits_evenly(self):
        durations = np.ones(8)
        out = simulate_parallel_for(durations, 4, ScheduleSpec("static"))
        assert out.makespan == pytest.approx(2.0)
        assert out.thread_busy.tolist() == [2.0, 2.0, 2.0, 2.0]

    def test_makespan_at_least_max_task(self):
        durations = np.array([10.0, 0.1, 0.1, 0.1])
        out = simulate_parallel_for(durations, 4, ScheduleSpec("static"))
        assert out.makespan >= 10.0

    def test_clustered_imbalance_contiguous_vs_chunk1(self):
        # First half expensive: contiguous static piles it on thread 0;
        # round-robin (static,1) balances it.
        durations = np.array([4.0] * 8 + [0.5] * 8)
        contiguous = simulate_parallel_for(durations, 2, ScheduleSpec("static"))
        round_robin = simulate_parallel_for(durations, 2, ScheduleSpec("static", 1))
        assert round_robin.makespan < contiguous.makespan

    def test_assignment_and_busy_consistent(self):
        durations = np.arange(1.0, 11.0)
        out = simulate_parallel_for(durations, 3, ScheduleSpec("static"))
        recomputed = np.bincount(
            out.iteration_thread, weights=durations, minlength=3
        )
        assert np.allclose(out.thread_busy, recomputed)

    def test_events_trace_valid(self):
        durations = np.ones(10)
        out = simulate_parallel_for(
            durations, 3, ScheduleSpec("static"), collect_events=True
        )
        assert out.events is not None
        check_trace(out.events, 10)

    def test_empty_loop(self):
        out = simulate_parallel_for(np.empty(0), 4, ScheduleSpec("static"))
        assert out.makespan == 0.0


class TestDynamicSimulation:
    def test_perfect_balance_with_chunk1(self):
        durations = np.ones(64)
        out = simulate_parallel_for(durations, 4, ScheduleSpec("dynamic", 1))
        ideal = 16.0
        assert ideal <= out.makespan <= ideal * 1.1  # + dequeue overhead

    def test_big_task_bounds_makespan(self):
        durations = np.array([8.0] + [0.1] * 20)
        out = simulate_parallel_for(durations, 4, ScheduleSpec("dynamic", 1))
        assert out.makespan >= 8.0
        assert out.makespan < 9.0  # dynamic steals the small ones

    def test_dequeue_lock_serializes_tiny_tasks(self):
        machine = BLACKLIGHT.with_overrides(dynamic_dequeue_cost=1e-3)
        durations = np.full(100, 1e-6)
        out = simulate_parallel_for(
            durations, 32, ScheduleSpec("dynamic", 1), machine=machine
        )
        # 100 dequeues x 1 ms lock hold => >= 0.1 s regardless of threads.
        assert out.makespan >= 0.1

    def test_events_trace_valid(self):
        durations = np.random.default_rng(1).random(30)
        out = simulate_parallel_for(
            durations, 4, ScheduleSpec("dynamic", 2), collect_events=True
        )
        check_trace(out.events, 30)

    def test_guided_covers_everything(self):
        durations = np.ones(100)
        out = simulate_parallel_for(
            durations, 4, ScheduleSpec("guided"), collect_events=True
        )
        check_trace(out.events, 100)

    def test_all_iterations_assigned_once(self):
        durations = np.ones(37)
        out = simulate_parallel_for(durations, 5, ScheduleSpec("dynamic", 3))
        assert out.iteration_thread.size == 37
        assert out.iteration_thread.min() >= 0
        assert out.iteration_thread.max() < 5


class TestWorkstealSimulation:
    def test_balanced_seed_pays_no_steal_tax(self):
        """Unlike dynamic's per-dequeue lock, worksteal only pays when a
        steal actually happens — a balanced loop runs at static cost."""
        durations = np.ones(64)
        ws = simulate_parallel_for(durations, 4, ScheduleSpec("worksteal"))
        assert ws.makespan == pytest.approx(16.0)

    def test_imbalanced_seed_triggers_steals_and_balances(self):
        # Round-robin seeding with chunk 1 gives thread 0 every i%4==0
        # chunk — all the heavy ones (160 s); stealing must spread them.
        durations = np.where(np.arange(64) % 4 == 0, 10.0, 0.01)
        ws = simulate_parallel_for(
            durations, 4, ScheduleSpec("worksteal", 1))
        ideal = durations.sum() / 4
        assert ws.makespan < 80.0        # far below thread 0's seeded 160 s
        assert ws.makespan >= ideal      # but never below the ideal split

    def test_all_iterations_assigned_once(self):
        durations = np.random.default_rng(5).random(41)
        out = simulate_parallel_for(
            durations, 3, ScheduleSpec("worksteal", 2), collect_events=True
        )
        check_trace(out.events, 41)
        assert out.iteration_thread.min() >= 0
        assert out.iteration_thread.max() < 3

    def test_empty_loop(self):
        out = simulate_parallel_for(
            np.array([]), 4, ScheduleSpec("worksteal"))
        assert out.makespan == 0.0

    def test_steal_cost_raises_makespan(self):
        machine = BLACKLIGHT.with_overrides(steal_attempt_cost=5.0)
        durations = np.where(np.arange(64) % 4 == 0, 10.0, 0.01)
        cheap = simulate_parallel_for(
            durations, 4, ScheduleSpec("worksteal", 1))
        pricey = simulate_parallel_for(
            durations, 4, ScheduleSpec("worksteal", 1), machine=machine)
        assert pricey.makespan > cheap.makespan


class TestValidation:
    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            simulate_parallel_for(np.array([-1.0]), 2, ScheduleSpec("static"))

    def test_bad_thread_count(self):
        with pytest.raises(SimulationError):
            simulate_parallel_for(np.ones(3), 0, ScheduleSpec("static"))

    def test_2d_rejected(self):
        with pytest.raises(SimulationError):
            simulate_parallel_for(np.ones((2, 2)), 2, ScheduleSpec("static"))


class TestThreadTeam:
    def test_region_composition(self):
        team = ThreadTeam(32, BLACKLIGHT)
        durations = np.ones(64) * 1e-3
        link = np.array([0.0, 1.0 * BLACKLIGHT.link_bandwidth])
        region = team.run_region(durations, ScheduleSpec("static"), link)
        assert region.link_limited
        assert region.time >= 1.0

    def test_fork_join_added(self):
        team = ThreadTeam(64, BLACKLIGHT)
        region = team.run_region(np.ones(4), ScheduleSpec("static"))
        assert region.fork_join > 0
        assert region.time == pytest.approx(region.makespan + region.fork_join)

    def test_bisection_floor(self):
        team = ThreadTeam(32, BLACKLIGHT)
        region = team.run_region(
            np.full(8, 1e-6),
            ScheduleSpec("static"),
            total_remote_bytes=2.0 * BLACKLIGHT.bisection_bandwidth,
        )
        assert region.time >= 2.0

    def test_reader_blades(self):
        team = ThreadTeam(32, BLACKLIGHT)
        blades = team.reader_blades(np.array([0, 16, 31]))
        assert blades.tolist() == [0, 1, 1]


class TestTraceChecks:
    def test_check_trace_catches_gap(self):
        from repro.openmp.events import ChunkEvent

        events = [ChunkEvent(0, 0, 2, 0.0, 1.0)]
        with pytest.raises(SimulationError, match="never executed"):
            check_trace(events, 3)

    def test_check_trace_catches_double(self):
        from repro.openmp.events import ChunkEvent

        events = [
            ChunkEvent(0, 0, 2, 0.0, 1.0),
            ChunkEvent(1, 1, 3, 0.0, 1.0),
        ]
        with pytest.raises(SimulationError, match="twice"):
            check_trace(events, 3)

    def test_check_trace_catches_self_overlap(self):
        from repro.openmp.events import ChunkEvent

        events = [
            ChunkEvent(0, 0, 1, 0.0, 2.0),
            ChunkEvent(0, 1, 2, 1.0, 3.0),
        ]
        with pytest.raises(SimulationError, match="overlaps"):
            check_trace(events, 2)

    def test_load_balance_summary(self):
        from repro.openmp.events import ChunkEvent

        events = [
            ChunkEvent(0, 0, 1, 0.0, 3.0),
            ChunkEvent(1, 1, 2, 0.0, 1.0),
        ]
        summary = load_balance_summary(events, 2)
        assert summary["max_busy"] == 3.0
        assert summary["imbalance"] == pytest.approx(0.5)
        assert summary["min_busy"] == 1.0
        # makespan 3.0, busy 4.0 of 6.0 thread-seconds -> 1/3 idle.
        assert summary["idle_fraction"] == pytest.approx(1.0 / 3.0)

    def test_load_balance_summary_all_idle(self):
        summary = load_balance_summary([], n_threads=3)
        assert summary == {
            "max_busy": 0.0,
            "min_busy": 0.0,
            "mean_busy": 0.0,
            "imbalance": 0.0,
            "idle_fraction": 0.0,
        }
