"""Unit tests for the repro.obs layer: sinks, metrics, context."""

import json

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.obs import (
    ChromeTraceSink,
    Counter,
    Histogram,
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    NullSink,
    ObsContext,
    TraceEvent,
)

REQUIRED_EVENT_KEYS = {"name", "ph", "ts", "pid", "tid"}


class TestTraceEvent:
    def test_complete_event_has_duration(self):
        ev = TraceEvent("work", "X", 10.0, 5.0, pid=3, tid=7, cat="chunk")
        record = ev.to_chrome()
        assert record["dur"] == 5.0
        assert record["cat"] == "chunk"
        assert REQUIRED_EVENT_KEYS <= set(record)

    def test_instant_event_omits_duration(self):
        record = TraceEvent("mark", "i", 1.0).to_chrome()
        assert "dur" not in record and "args" not in record


class TestNullSink:
    def test_disabled_and_silent(self):
        sink = NullSink()
        assert not sink.enabled
        sink.duration("x", 0.0, 1.0)
        sink.instant("y", 0.0)
        sink.counter_sample("z", 0.0, {"v": 1})
        sink.set_process_name(1, "p")
        with sink.span("s"):
            pass
        sink.close()  # all no-ops, nothing raised

    def test_adds_no_events_when_wired_through_a_run(self):
        from repro.core.apriori import run_apriori
        from repro.datasets import parse_fimi

        db = parse_fimi("1 2\n1 2 3\n2 3\n1 3", name="nulltest")
        obs = ObsContext()  # NullSink default
        run_apriori(db, 2, "tidset", obs=obs)
        # Metrics still collect; the sink swallowed every event.
        assert "apriori.level1.candidates" in obs.metrics
        assert not obs.tracing


class TestInMemorySink:
    def test_records_in_order(self):
        sink = InMemorySink()
        sink.duration("a", 0.0, 1.0)
        sink.instant("b", 2.0)
        assert [ev.name for ev in sink.events] == ["a", "b"]
        assert [ev.name for ev in sink.by_phase("X")] == ["a"]

    def test_span_measures_wall_time(self):
        sink = InMemorySink()
        with sink.span("phase", cat="test"):
            pass
        (ev,) = sink.events
        assert ev.phase == "X" and ev.dur >= 0.0 and ev.cat == "test"


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            sink.duration("a", 1.0, 2.0, pid=5, tid=3)
            sink.instant("b", 4.0)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["name"] == "a" and lines[0]["dur"] == 2.0
        assert lines[1]["ph"] == "i"

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "x.jsonl")
        sink.close()
        with pytest.raises(ConfigurationError):
            sink.duration("late", 0.0, 1.0)


class TestChromeTraceSink:
    def test_round_trip_schema(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(path, metadata={"dataset": "demo"})
        sink.set_process_name(4, "4 threads")
        sink.set_thread_name(4, 0, "t0")
        sink.duration("gen2", 0.0, 12.5, pid=4, tid=0, cat="chunk",
                      args={"start": 0, "end": 3})
        sink.close()

        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"] == {"dataset": "demo"}
        events = doc["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert REQUIRED_EVENT_KEYS <= set(event)
            assert event["ph"] in {"X", "i", "C", "M"}
        (chunk,) = [e for e in events if e["ph"] == "X"]
        assert chunk["dur"] == 12.5 and chunk["args"] == {"start": 0, "end": 3}

    def test_close_is_idempotent(self, tmp_path):
        sink = ChromeTraceSink(tmp_path / "t.json")
        sink.duration("a", 0.0, 1.0)
        sink.close()
        sink.close()
        assert len(json.loads((tmp_path / "t.json").read_text())["traceEvents"]) == 1


class TestMetrics:
    def test_counter_monotone(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_registry_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        registry.gauge("g").set(4)
        assert registry.gauges() == {"g": 4.0}
        assert "a" in registry and len(registry) == 2

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")
        with pytest.raises(ConfigurationError):
            registry.histogram("x")

    def test_histogram_summary_fields(self):
        histogram = Histogram("h")
        histogram.observe_many(np.arange(100))
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["min"] == 0 and summary["max"] == 99
        assert summary["p50"] == pytest.approx(49.5)

    def test_empty_histogram(self):
        assert Histogram("h").summary() == {"count": 0.0}

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h").observe(float("nan"))

    def test_report_rows_sorted_and_typed(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.value").set(1.5)
        registry.histogram("c.dist").observe(3.0)
        rows = registry.report_rows()
        assert [row[0] for row in rows] == ["a.value", "b.count", "c.dist"]
        assert [row[1] for row in rows] == ["gauge", "counter", "histogram"]

    def test_to_dict_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(7)
        registry.histogram("h").observe(1.0)
        json.dumps(registry.to_dict())  # must not raise


@given(
    st.lists(
        st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=200,
    )
)
def test_histogram_percentiles_monotone(values):
    """min <= p50 <= p90 <= p99 <= max for any observation set."""
    histogram = Histogram("h")
    histogram.observe_many(values)
    summary = histogram.summary()
    assert summary["min"] <= summary["p50"] <= summary["p90"]
    assert summary["p90"] <= summary["p99"] <= summary["max"]
    assert summary["count"] == len(values)


class TestObsContext:
    def test_context_manager_closes_sink(self, tmp_path):
        path = tmp_path / "trace.json"
        with ObsContext(sink=ChromeTraceSink(path)) as obs:
            obs.sink.duration("x", 0.0, 1.0)
            assert obs.tracing
        assert path.exists()

    def test_default_is_fully_null(self):
        obs = ObsContext()
        assert not obs.tracing
        assert len(obs.metrics) == 0
