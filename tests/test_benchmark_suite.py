"""Tests for the Table I surrogate datasets (scaled-down where marked)."""

import pytest

from repro.datasets.benchmark_suite import (
    PAPER_STATS,
    load_all_benchmark_datasets,
    load_benchmark_dataset,
    make_chess,
    make_mushroom,
    make_pumsb,
    make_pumsb_star,
)

# Small row counts keep these structural checks fast; full-size generation
# is exercised once by the Table I bench.
SCALED = 400


class TestTableOneShape:
    def test_chess_matches_table1(self):
        db = make_chess(n_transactions=SCALED)
        info = PAPER_STATS["chess"]
        assert db.n_items == info.n_items
        assert db.avg_length == pytest.approx(info.avg_length)

    def test_mushroom_matches_table1(self):
        db = make_mushroom(n_transactions=SCALED)
        info = PAPER_STATS["mushroom"]
        assert db.n_items == info.n_items
        assert db.avg_length == pytest.approx(info.avg_length)

    def test_pumsb_matches_table1(self):
        db = make_pumsb(n_transactions=SCALED)
        info = PAPER_STATS["pumsb"]
        assert db.n_items == info.n_items
        assert db.avg_length == pytest.approx(info.avg_length)

    def test_full_transaction_counts_recorded(self):
        assert PAPER_STATS["chess"].surrogate_transactions == 3196
        assert PAPER_STATS["mushroom"].surrogate_transactions == 8124
        assert PAPER_STATS["pumsb"].surrogate_transactions == 49046

    def test_pumsb_star_derivation(self):
        """pumsb_star = pumsb minus every >= 80%-support item."""
        star = make_pumsb_star(n_transactions=SCALED)
        supports = star.item_supports() / star.n_transactions
        assert supports.max() < 0.80
        assert star.avg_length < make_pumsb(n_transactions=SCALED).avg_length

    def test_pumsb_star_same_transaction_count(self):
        assert (
            make_pumsb_star(n_transactions=SCALED).n_transactions
            == make_pumsb(n_transactions=SCALED).n_transactions
        )

    def test_pumsb_has_high_support_items(self):
        db = make_pumsb(n_transactions=SCALED)
        supports = db.item_supports() / db.n_transactions
        assert (supports >= 0.80).sum() >= 10

    def test_deterministic(self):
        a = make_chess(n_transactions=SCALED)
        b = make_chess(n_transactions=SCALED)
        assert [t.tolist() for t in a] == [t.tolist() for t in b]


class TestLoaders:
    def test_load_by_name(self):
        db = load_benchmark_dataset("chess")
        assert db.name == "chess"
        assert db.n_transactions == PAPER_STATS["chess"].surrogate_transactions

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark dataset"):
            load_benchmark_dataset("nope")

    def test_load_all_names(self):
        # Build tiny versions by hand to avoid the full pumsb cost here.
        assert set(PAPER_STATS) == {"chess", "mushroom", "pumsb", "pumsb_star"}
        assert callable(load_all_benchmark_datasets)
