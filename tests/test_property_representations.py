"""Property-based tests for the vertical-set kernels and identities."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.datasets.transaction_db import TransactionDatabase
from repro.representations import (
    BitvectorRepresentation,
    DiffsetRepresentation,
    TidsetRepresentation,
)
from repro.representations.bitvector import bits_to_tids, popcount, tids_to_bits
from repro.representations.diffset import setdiff_sorted
from repro.representations.tidset import intersect_sorted


def sorted_unique(draw_values):
    return np.asarray(sorted(set(draw_values)), dtype=np.int32)


tid_sets = st.lists(st.integers(min_value=0, max_value=200), max_size=40).map(
    sorted_unique
)


@settings(max_examples=80, deadline=None)
@given(a=tid_sets, b=tid_sets)
def test_intersect_matches_python_sets(a, b):
    expected = sorted(set(a.tolist()) & set(b.tolist()))
    assert intersect_sorted(a, b).tolist() == expected


@settings(max_examples=80, deadline=None)
@given(a=tid_sets, b=tid_sets)
def test_setdiff_matches_python_sets(a, b):
    expected = sorted(set(a.tolist()) - set(b.tolist()))
    assert setdiff_sorted(a, b).tolist() == expected


@settings(max_examples=80, deadline=None)
@given(tids=tid_sets)
def test_bitpack_roundtrip(tids):
    words = tids_to_bits(tids, 201)
    assert bits_to_tids(words).tolist() == tids.tolist()
    assert popcount(words) == tids.size


@settings(max_examples=80, deadline=None)
@given(a=tid_sets, b=tid_sets)
def test_popcount_of_and_equals_intersection_size(a, b):
    wa = tids_to_bits(a, 201)
    wb = tids_to_bits(b, 201)
    assert popcount(wa & wb) == intersect_sorted(a, b).size


transactions_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=6), max_size=5),
    min_size=1,
    max_size=10,
)


@settings(max_examples=50, deadline=None)
@given(transactions=transactions_strategy)
def test_declat_recurrence_on_random_databases(transactions):
    """support(XY) from the diffset recurrence equals the tidset count."""
    db = TransactionDatabase(transactions, n_items=7, name="hypo")
    tid = TidsetRepresentation()
    dif = DiffsetRepresentation()
    st_ = tid.build_singletons(db)
    sd = dif.build_singletons(db)
    for x in range(7):
        for y in range(x + 1, 7):
            expected, _ = tid.combine(st_[x], st_[y])
            got, _ = dif.combine(sd[x], sd[y])
            assert got.support == expected.support


@settings(max_examples=50, deadline=None)
@given(transactions=transactions_strategy)
def test_diffset_complement_identity(transactions):
    """|t(X)| + |d(X)| == n_transactions at generation 1."""
    db = TransactionDatabase(transactions, n_items=7, name="hypo")
    tid = TidsetRepresentation().build_singletons(db)
    dif = DiffsetRepresentation().build_singletons(db)
    for x in range(7):
        assert tid[x].payload.size + dif[x].payload.size == db.n_transactions


@settings(max_examples=50, deadline=None)
@given(transactions=transactions_strategy)
def test_bitvector_fixed_width_invariant(transactions):
    db = TransactionDatabase(transactions, n_items=7, name="hypo")
    bit = BitvectorRepresentation().build_singletons(db)
    widths = {v.payload.size for v in bit}
    assert len(widths) == 1  # every payload has the same word count
