"""Unit tests for MiningResult and threshold resolution."""

import pytest

from repro.core.result import MiningResult, from_mapping, resolve_min_support
from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import ConfigurationError


@pytest.fixture
def db10() -> TransactionDatabase:
    return TransactionDatabase([[0]] * 10, name="ten")


class TestResolveMinSupport:
    def test_absolute_passthrough(self, db10):
        assert resolve_min_support(db10, 3) == 3

    def test_relative_exact(self, db10):
        assert resolve_min_support(db10, 0.3) == 3

    def test_relative_rounds_up(self, db10):
        assert resolve_min_support(db10, 0.25) == 3

    def test_relative_float_noise(self, db10):
        # 0.3 * 10 == 3.0000000000000004 in floating point.
        assert resolve_min_support(db10, 0.3) == 3

    def test_relative_one(self, db10):
        assert resolve_min_support(db10, 1.0) == 10

    def test_minimum_one(self):
        db = TransactionDatabase([[0]], name="one")
        assert resolve_min_support(db, 0.0001) == 1

    @pytest.mark.parametrize("bad", [0, -1, 1.5, 0.0, True])
    def test_invalid(self, db10, bad):
        with pytest.raises(ConfigurationError):
            resolve_min_support(db10, bad)


class TestMiningResult:
    def _result(self) -> MiningResult:
        return from_mapping(
            {(1,): 4, (2,): 4, (1, 2): 3, (1, 2, 3): 2, (3,): 4, (1, 3): 3, (2, 3): 3},
            n_transactions=5,
            min_support=2,
        )

    def test_len_and_contains(self):
        r = self._result()
        assert len(r) == 7
        assert [2, 1] in r  # canonicalized
        assert (9,) not in r

    def test_support_lookup(self):
        r = self._result()
        assert r.support([2, 1]) == 3
        with pytest.raises(KeyError):
            r.support([9])

    def test_relative_support(self):
        r = self._result()
        assert r.relative_support((1, 2)) == pytest.approx(0.6)

    def test_by_size(self):
        grouped = self._result().by_size()
        assert set(grouped) == {1, 2, 3}
        assert len(grouped[2]) == 3

    def test_k_itemsets(self):
        assert len(self._result().k_itemsets(1)) == 3
        assert self._result().k_itemsets(4) == {}

    def test_max_size(self):
        assert self._result().max_size() == 3
        empty = from_mapping({})
        assert empty.max_size() == 0

    def test_summary_mentions_counts(self):
        text = self._result().summary()
        assert "|L1|=3" in text and "|L3|=1" in text

    def test_same_itemsets(self):
        a, b = self._result(), self._result()
        assert a.same_itemsets(b)
        b.add((5,), 2)
        assert not a.same_itemsets(b)

    def test_difference_reports_mismatch(self):
        a, b = self._result(), self._result()
        b.itemsets[(1,)] = 99
        del b.itemsets[(3,)]
        diff = a.difference(b)
        assert (3,) in diff["only_self"]
        assert diff["support_mismatch"][(1,)] == (4, 99)

    def test_relative_support_empty_db(self):
        r = from_mapping({(1,): 0}, n_transactions=0)
        assert r.relative_support((1,)) == 0.0
