"""Tests for the cache-reuse traffic model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.machine.cache_model import (
    charge_left_reads,
    charge_right_reads,
    first_occurrence_mask,
)


class TestFirstOccurrence:
    def test_basic(self):
        mask = first_occurrence_mask(np.array([3, 1, 3, 2, 1]))
        assert mask.tolist() == [True, True, False, True, False]

    def test_empty(self):
        assert first_occurrence_mask(np.empty(0, np.int64)).size == 0

    def test_all_unique(self):
        assert first_occurrence_mask(np.array([5, 9, 1])).all()

    def test_rejects_2d(self):
        with pytest.raises(SimulationError):
            first_occurrence_mask(np.zeros((2, 2), np.int64))


class TestLeftCharging:
    def test_repeat_reads_free_when_cached(self):
        # Two threads; thread 0 reads parent 7 three times.
        assignment = np.array([0, 0, 0, 1])
        parents = np.array([7, 7, 7, 7])
        size = np.array([100, 100, 100, 100])
        charged = charge_left_reads(assignment, parents, size, 10, cache_per_thread=1000)
        assert charged.tolist() == [100, 0, 0, 100]

    def test_oversized_payload_streams_every_time(self):
        assignment = np.zeros(3, np.int64)
        parents = np.array([7, 7, 7])
        size = np.array([5000, 5000, 5000])
        charged = charge_left_reads(assignment, parents, size, 10, cache_per_thread=1000)
        assert charged.tolist() == [5000, 5000, 5000]

    def test_distinct_parents_each_charged(self):
        assignment = np.zeros(3, np.int64)
        parents = np.array([1, 2, 3])
        size = np.array([10, 20, 30])
        charged = charge_left_reads(assignment, parents, size, 10, cache_per_thread=1000)
        assert charged.tolist() == [10, 20, 30]


class TestRightCharging:
    def test_small_working_set_charged_once(self):
        assignment = np.zeros(4, np.int64)
        parents = np.array([1, 2, 1, 2])
        size = np.array([100, 100, 100, 100])
        charged = charge_right_reads(
            assignment, parents, size, 10, 1, cache_per_thread=1000
        )
        assert charged.tolist() == [100, 100, 0, 0]

    def test_oversized_working_set_streams(self):
        assignment = np.zeros(4, np.int64)
        parents = np.array([1, 2, 1, 2])
        size = np.array([600, 600, 600, 600])
        charged = charge_right_reads(
            assignment, parents, size, 10, 1, cache_per_thread=1000
        )
        # ws = 1200 > 1000: repeats pay (1 - 1000/1200) of their bytes.
        assert charged[0] == 600 and charged[1] == 600
        assert charged[2] == pytest.approx(600 * (1 - 1000 / 1200))

    def test_written_bytes_evict(self):
        assignment = np.zeros(4, np.int64)
        parents = np.array([1, 2, 1, 2])
        size = np.array([100, 100, 100, 100])
        writes = np.array([500, 500, 500, 500])
        cached = charge_right_reads(
            assignment, parents, size, 10, 1, cache_per_thread=1000
        )
        evicted = charge_right_reads(
            assignment, parents, size, 10, 1, cache_per_thread=1000,
            written_bytes=writes,
        )
        assert evicted.sum() > cached.sum()

    def test_per_thread_working_sets_independent(self):
        # Thread 0's set fits; thread 1's does not.
        assignment = np.array([0, 0, 1, 1])
        parents = np.array([1, 1, 2, 2])
        size = np.array([100, 100, 5000, 5000])
        charged = charge_right_reads(
            assignment, parents, size, 10, 2, cache_per_thread=1000
        )
        assert charged[1] == 0            # thread 0 repeat: hit
        assert charged[3] > 0             # thread 1 repeat: streamed

    def test_empty(self):
        charged = charge_right_reads(
            np.empty(0, np.int64), np.empty(0, np.int64),
            np.empty(0, np.int64), 5, 2, 1000,
        )
        assert charged.size == 0
