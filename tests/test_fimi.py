"""Unit tests for the FIMI format parser/writer."""

import io

import pytest

from repro.datasets.fimi import dumps_fimi, parse_fimi, read_fimi, write_fimi
from repro.errors import DatasetError


class TestParse:
    def test_basic(self):
        db = parse_fimi("1 2 3\n4 5\n")
        assert db.n_transactions == 2
        assert db[1].tolist() == [4, 5]

    def test_extra_whitespace(self):
        db = parse_fimi("  1\t2   3  \n")
        assert db[0].tolist() == [1, 2, 3]

    def test_blank_interior_line_is_empty_transaction(self):
        db = parse_fimi("1 2\n\n3\n")
        assert db.n_transactions == 3
        assert db[1].size == 0

    def test_trailing_blank_lines_dropped(self):
        db = parse_fimi("1 2\n\n\n")
        assert db.n_transactions == 1

    def test_non_integer_rejected_with_line_number(self):
        with pytest.raises(DatasetError, match="line 2"):
            parse_fimi("1 2\n3 x\n")

    def test_negative_rejected(self):
        with pytest.raises(DatasetError, match="negative"):
            parse_fimi("1 -2\n")

    def test_name_defaults(self):
        assert parse_fimi("1\n").name == "fimi"
        assert parse_fimi("1\n", name="custom").name == "custom"

    def test_read_from_handle(self):
        db = read_fimi(io.StringIO("7 8\n9\n"), name="h")
        assert db.name == "h"
        assert db.n_transactions == 2


class TestWrite:
    def test_roundtrip(self, tiny_db):
        text = dumps_fimi(tiny_db)
        back = parse_fimi(text)
        assert [t.tolist() for t in back] == [t.tolist() for t in tiny_db]

    def test_roundtrip_via_file(self, tmp_path, small_sparse_db):
        path = tmp_path / "data.dat"
        write_fimi(small_sparse_db, path)
        back = read_fimi(path)
        assert back.name == "data"
        assert [t.tolist() for t in back] == [
            t.tolist() for t in small_sparse_db
        ]

    def test_write_empty_transaction(self):
        db = parse_fimi("1\n\n2\n")
        assert dumps_fimi(db) == "1\n\n2\n"

    def test_load_any_skips_missing(self, tmp_path, tiny_db):
        from repro.datasets.fimi import load_any

        path = tmp_path / "a.dat"
        write_fimi(tiny_db, path)
        loaded = load_any([path, tmp_path / "nope.dat"])
        assert len(loaded) == 1


class TestEncoding:
    """Satellite bugfix: the reader is UTF-8 (BOM-tolerant), not ASCII."""

    def test_utf8_bom_is_stripped(self, tmp_path):
        path = tmp_path / "bom.dat"
        path.write_bytes(b"\xef\xbb\xbf1 2\n3\n")
        db = read_fimi(path)
        assert [t.tolist() for t in db] == [[1, 2], [3]]

    def test_bom_only_stripped_on_first_line(self, tmp_path):
        # A BOM mid-file is real (bogus) content, not byte-order metadata.
        path = tmp_path / "midbom.dat"
        path.write_bytes(b"1 2\n\xef\xbb\xbf3\n")
        with pytest.raises(DatasetError, match="line 2: non-integer"):
            read_fimi(path)

    def test_invalid_utf8_reports_line_number(self, tmp_path):
        path = tmp_path / "latin1.dat"
        path.write_bytes(b"1 2\n3 \xe9\n5\n")
        with pytest.raises(DatasetError, match="line 2: not valid UTF-8"):
            read_fimi(path)

    def test_non_numeric_unicode_token_rejected_with_line_number(self, tmp_path):
        # Decodes fine as UTF-8, fails as an item id — with the line number.
        path = tmp_path / "uni.dat"
        path.write_bytes("1\n½\n".encode("utf-8"))
        with pytest.raises(DatasetError, match="line 2: non-integer"):
            read_fimi(path)

    def test_text_handle_with_bom_character(self):
        db = read_fimi(io.StringIO("﻿1 2\n3\n"))
        assert db.n_transactions == 2

    def test_invalid_utf8_in_text_handle_mid_iteration(self, tmp_path):
        path = tmp_path / "handle.dat"
        path.write_bytes(b"1\n2\n\xff\n")
        with open(path, "r", encoding="utf-8") as handle:
            with pytest.raises(DatasetError, match="not valid UTF-8"):
                read_fimi(handle)

    def test_write_fimi_emits_utf8(self, tmp_path, tiny_db):
        path = tmp_path / "w.dat"
        write_fimi(tiny_db, path)
        path.read_bytes().decode("utf-8")  # must not raise
