"""The closed-itemset index: exactness, persistence, and rejection.

The index's whole contract is "answers at any support >= floor are
*identical* to re-mining the database".  The hypothesis tests here state
that literally: for arbitrary small databases, every ``frequent_at`` /
``support_of`` / ``top_k`` answer must match a fresh ``repro.mine()``
bit-for-bit — including after a save/mmap-open round trip.  The artifact
layer must also refuse corrupted, truncated, or mismatched files rather
than serve wrong answers.
"""

import struct

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core import MiningResult, Queryable
from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import ConfigurationError, IndexArtifactError
from repro.index import INDEX_SCHEMA_VERSION, ItemsetIndex
from repro.index.artifact import MAGIC

transactions_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=7), min_size=0, max_size=6),
    min_size=0,
    max_size=12,
)


def _db(transactions) -> TransactionDatabase:
    return TransactionDatabase(transactions, n_items=8, name="hypo")


class TestIndexMatchesFreshMine:
    @settings(max_examples=50, deadline=None)
    @given(transactions=transactions_strategy,
           floor=st.integers(min_value=1, max_value=3),
           bump=st.integers(min_value=0, max_value=6))
    def test_frequent_at_is_exact(self, transactions, floor, bump):
        db = _db(transactions)
        index = ItemsetIndex.build(db, floor)
        support = floor + bump
        expected = repro.mine(db, min_support=support).itemsets
        assert index.frequent_at(support).itemsets == expected

    @settings(max_examples=50, deadline=None)
    @given(transactions=transactions_strategy,
           floor=st.integers(min_value=1, max_value=3),
           query=st.lists(st.integers(min_value=0, max_value=7),
                          min_size=1, max_size=4, unique=True))
    def test_support_of_is_exact(self, transactions, floor, query):
        db = _db(transactions)
        index = ItemsetIndex.build(db, floor)
        true_support = db.support_of(tuple(query))
        answer = index.support_of(query)
        if true_support >= floor:
            assert answer == true_support
        else:
            # Below the floor the itemset was never indexed.
            assert answer is None

    @settings(max_examples=30, deadline=None)
    @given(transactions=transactions_strategy,
           floor=st.integers(min_value=1, max_value=3),
           k=st.integers(min_value=0, max_value=10))
    def test_top_k_matches_result_ranking(self, transactions, floor, k):
        db = _db(transactions)
        index = ItemsetIndex.build(db, floor)
        fresh = repro.mine(db, min_support=floor)
        assert index.top_k(k) == fresh.top_k(k)

    @settings(max_examples=25, deadline=None)
    @given(transactions=transactions_strategy,
           floor=st.integers(min_value=1, max_value=3))
    def test_round_trip_preserves_every_answer(
        self, transactions, floor, tmp_path_factory
    ):
        db = _db(transactions)
        built = ItemsetIndex.build(db, floor)
        path = tmp_path_factory.mktemp("idx") / "hypo.idx"
        built.save(path)
        with ItemsetIndex.open(path) as reopened:
            for support in range(floor, db.n_transactions + 2):
                assert (
                    reopened.frequent_at(support).itemsets
                    == built.frequent_at(support).itemsets
                )

    def test_rules_match_mining_result_rules(self, tiny_db):
        index = ItemsetIndex.build(tiny_db, 1)
        fresh = repro.mine(tiny_db, min_support=2)
        assert index.rules(min_support=2, min_confidence=0.6) == fresh.rules(
            min_confidence=0.6
        )


class TestQueryableProtocol:
    def test_both_implementations_satisfy_protocol(self, tiny_db):
        assert isinstance(repro.mine(tiny_db, min_support=2), Queryable)
        assert isinstance(ItemsetIndex.build(tiny_db, 2), Queryable)

    def test_result_query_floor_is_min_support(self, tiny_db):
        result = repro.mine(tiny_db, min_support=2)
        assert result.query_floor == 2
        below = result.frequent_at(2)  # at the floor: allowed
        assert below.itemsets == result.itemsets
        with pytest.raises(ConfigurationError, match="query floor"):
            result.frequent_at(1)

    def test_result_frequent_at_filters_upward(self, tiny_db):
        result = repro.mine(tiny_db, min_support=2)
        narrowed = result.frequent_at(3)
        assert narrowed.itemsets == repro.mine(tiny_db, min_support=3).itemsets
        assert isinstance(narrowed, MiningResult)

    def test_index_below_floor_query_is_rejected(self, tiny_db):
        index = ItemsetIndex.build(tiny_db, 3)
        with pytest.raises(ConfigurationError, match="lower floor"):
            index.frequent_at(2)

    def test_fractional_supports_resolve_identically(self, tiny_db):
        index = ItemsetIndex.build(tiny_db, 1)
        assert (
            index.frequent_at(0.4).itemsets
            == repro.mine(tiny_db, min_support=0.4).itemsets
        )

    def test_top_k_rejects_negative(self, tiny_db):
        result = repro.mine(tiny_db, min_support=2)
        with pytest.raises(ConfigurationError):
            result.top_k(-1)

    def test_render_and_export_accept_both(self, tiny_db, tmp_path):
        from repro.analysis import render_top_itemsets
        from repro.rules import export_rules

        result = repro.mine(tiny_db, min_support=2)
        index = ItemsetIndex.build(tiny_db, 2)
        assert render_top_itemsets(result, 3) == render_top_itemsets(index, 3)
        out = tmp_path / "rules.json"
        assert export_rules(result, out, fmt="json") == export_rules(
            index, fmt="json"
        )


class TestArtifactPersistence:
    def test_info_survives_round_trip(self, tiny_db, tmp_path):
        built = ItemsetIndex.build(tiny_db, 2)
        path = built.save(tmp_path / "tiny.idx")
        with ItemsetIndex.open(path) as reopened:
            assert reopened.schema == INDEX_SCHEMA_VERSION
            assert reopened.floor == built.floor
            assert reopened.n_closed == built.n_closed
            assert reopened.n_transactions == tiny_db.n_transactions
            assert reopened.config_hash == built.config_hash
            assert reopened.dataset_fingerprint == built.dataset_fingerprint
            info = reopened.info()
            assert info["path"] == str(path)
            assert info["n_closed"] == len(reopened)

    def test_engine_mine_serves_from_index_path(self, tiny_db, tmp_path):
        path = ItemsetIndex.build(tiny_db, 1).save(tmp_path / "t.idx")
        served = repro.mine(tiny_db, min_support=2, index=path)
        assert served.itemsets == repro.mine(tiny_db, min_support=2).itemsets
        assert served.backend == "index"

    def test_check_database_rejects_other_dataset(self, tiny_db, paper_db):
        index = ItemsetIndex.build(tiny_db, 2)
        with pytest.raises(IndexArtifactError, match="fingerprint"):
            index.check_database(paper_db)
        with pytest.raises(IndexArtifactError):
            repro.mine(paper_db, min_support=2, index=index)

    def test_closed_query_after_close_is_an_error(self, tiny_db, tmp_path):
        path = ItemsetIndex.build(tiny_db, 2).save(tmp_path / "t.idx")
        index = ItemsetIndex.open(path)
        index.close()
        with pytest.raises(IndexArtifactError, match="closed"):
            index.frequent_at(2)

    def test_empty_database_round_trips(self, empty_db, tmp_path):
        path = ItemsetIndex.build(empty_db, 1).save(tmp_path / "e.idx")
        with ItemsetIndex.open(path) as index:
            assert len(index) == 0
            assert index.frequent_at(1).itemsets == {}
            assert index.support_of((0,)) is None


class TestArtifactRejection:
    @pytest.fixture
    def artifact(self, tiny_db, tmp_path):
        return ItemsetIndex.build(tiny_db, 2).save(tmp_path / "tiny.idx")

    def test_bad_magic(self, artifact):
        raw = bytearray(artifact.read_bytes())
        raw[:4] = b"NOPE"
        artifact.write_bytes(bytes(raw))
        with pytest.raises(IndexArtifactError, match="magic"):
            ItemsetIndex.open(artifact)

    def test_truncated_payload(self, artifact):
        raw = artifact.read_bytes()
        artifact.write_bytes(raw[: len(raw) - 16])
        with pytest.raises(IndexArtifactError):
            ItemsetIndex.open(artifact)

    def test_truncated_to_nothing(self, artifact):
        artifact.write_bytes(b"RP")
        with pytest.raises(IndexArtifactError):
            ItemsetIndex.open(artifact)

    def test_garbage_header(self, artifact):
        header_len = 64
        garbage = MAGIC + struct.pack("<Q", header_len) + b"\xff" * header_len
        artifact.write_bytes(garbage)
        with pytest.raises(IndexArtifactError, match="header"):
            ItemsetIndex.open(artifact)

    def test_wrong_schema_version(self, tiny_db, tmp_path):
        from repro.index import artifact as artifact_mod

        index = ItemsetIndex.build(tiny_db, 2)
        path = tmp_path / "future.idx"
        original = artifact_mod.SCHEMA_VERSION
        artifact_mod.SCHEMA_VERSION = original + 1
        try:
            index.save(path)
        finally:
            artifact_mod.SCHEMA_VERSION = original
        with pytest.raises(IndexArtifactError, match="schema"):
            ItemsetIndex.open(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(IndexArtifactError):
            ItemsetIndex.open(tmp_path / "never-written.idx")


class TestIndexLedger:
    def test_build_and_query_are_recorded(self, tiny_db, tmp_path):
        from repro.obs.ledger import Ledger

        ledger = Ledger(tmp_path / "runs")
        index = ItemsetIndex.build(tiny_db, 1, ledger=ledger)
        path = index.save(tmp_path / "t.idx")
        repro.mine(tiny_db, min_support=2, index=path, ledger=ledger)
        kinds = [record.kind for record in ledger.last(10)]
        assert kinds.count("index-build") == 1
        assert kinds.count("index-query") == 1
        query = ledger.last(1)[0]
        assert query.config["index_config_hash"] == index.config_hash
        assert query.dataset["name"] == tiny_db.name


class TestLifecycle:
    """Satellite: closed-index behavior across every Queryable method."""

    @pytest.fixture
    def opened(self, tiny_db, tmp_path):
        path = ItemsetIndex.build(tiny_db, 1).save(tmp_path / "life.idx")
        return ItemsetIndex.open(path)

    def test_every_queryable_method_raises_after_close(self, opened):
        opened.close()
        for call in (
            lambda: opened.frequent_at(2),
            lambda: opened.support_of((1,)),
            lambda: opened.top_k(3),
            lambda: opened.rules(min_confidence=0.5),
            lambda: opened.closed_itemsets(),
        ):
            with pytest.raises(IndexArtifactError, match="closed"):
                call()

    def test_double_close_is_idempotent(self, opened):
        opened.close()
        opened.close()  # must not raise
        with pytest.raises(IndexArtifactError, match="closed"):
            opened.frequent_at(1)

    def test_context_manager_reentry_is_idempotent(self, opened):
        with opened as index:
            assert index is opened
            index.frequent_at(1)
        # Re-entering after __exit__ closed it: __exit__'s second close is
        # a no-op, and queries inside fail the same way as outside.
        with opened:
            with pytest.raises(IndexArtifactError, match="closed"):
                opened.top_k(1)

    def test_close_before_any_query(self, tiny_db, tmp_path):
        path = ItemsetIndex.build(tiny_db, 1).save(tmp_path / "c.idx")
        index = ItemsetIndex.open(path)
        index.close()
        with pytest.raises(IndexArtifactError, match="closed"):
            index.support_of((1,))
