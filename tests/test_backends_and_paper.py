"""Tests for execution backends and the canonical paper configuration."""

import pytest

from repro import paper
from repro.backends import eclat_multiprocessing, mine_serial
from repro.backends.multiprocessing_backend import chunked
from repro.core import eclat
from repro.errors import ConfigurationError


class TestSerialBackend:
    def test_dispatch(self, tiny_db):
        a = mine_serial(tiny_db, 2, "apriori", "tidset")
        e = mine_serial(tiny_db, 2, "eclat", "diffset")
        assert a.same_itemsets(e)

    def test_unknown_algorithm(self, tiny_db):
        with pytest.raises(ConfigurationError):
            mine_serial(tiny_db, 2, "magic")


class TestMultiprocessingBackend:
    @pytest.mark.parametrize("rep", ["tidset", "diffset"])
    def test_matches_serial(self, small_dense_db, rep):
        serial = eclat(small_dense_db, 0.4, rep)
        parallel = eclat_multiprocessing(
            small_dense_db, 0.4, rep, n_workers=2
        )
        assert parallel.itemsets == serial.itemsets

    def test_single_worker(self, tiny_db):
        result = eclat_multiprocessing(tiny_db, 2, "tidset", n_workers=1)
        assert result.itemsets == eclat(tiny_db, 2, "tidset").itemsets

    def test_empty_result(self, tiny_db):
        result = eclat_multiprocessing(tiny_db, 5, "tidset", n_workers=2)
        assert len(result) == 0

    def test_invalid_item_order(self, tiny_db):
        with pytest.raises(ConfigurationError):
            eclat_multiprocessing(tiny_db, 2, item_order="weird")

    def test_chunked_helper(self):
        assert chunked(range(5), 2) == [[0, 1], [2, 3], [4]]
        with pytest.raises(ConfigurationError):
            chunked(range(3), 0)


class TestPaperConfig:
    def test_thread_counts(self):
        assert paper.THREAD_COUNTS[0] == 1
        assert paper.THREAD_COUNTS[-1] == 1024
        assert 16 in paper.THREAD_COUNTS

    def test_rows_cover_table1(self):
        rows = paper.paper_rows()
        assert [r.dataset for r in rows] == [
            "chess", "mushroom", "pumsb", "pumsb_star",
        ]
        for row in rows:
            assert 0 < row.min_support < 1
            assert "@" in row.label

    def test_quick_rows_subset(self):
        quick = {r.dataset for r in paper.quick_rows()}
        assert quick <= {r.dataset for r in paper.paper_rows()}

    def test_row_loads_dataset(self):
        row = paper.quick_rows()[0]
        db = row.load()
        assert db.name == row.dataset
