"""Tests for the cost-trace collectors (AprioriTrace / EclatTrace)."""

import numpy as np
import pytest

from repro.core import run_apriori, run_eclat
from repro.parallel import AprioriTrace, EclatTrace, toplevel_view


@pytest.fixture
def apriori_trace(paper_db):
    trace = AprioriTrace()
    run = run_apriori(paper_db, 3, "tidset", sink=trace)
    return trace, run


@pytest.fixture
def eclat_trace(paper_db):
    trace = EclatTrace()
    run = run_eclat(paper_db, 3, "tidset", sink=trace)
    return trace.finalize(), run


class TestAprioriTrace:
    def test_singleton_record(self, apriori_trace):
        trace, _ = apriori_trace
        assert trace.singletons is not None
        assert trace.singletons.payload_bytes.size == 6
        # Kept: A B C E (supports 4, 3, 5, 6 vs threshold 3).
        assert trace.singletons.kept_mask.tolist() == [
            True, True, True, False, True, False,
        ]

    def test_generation_records(self, apriori_trace):
        trace, run = apriori_trace
        assert len(trace.generations) == run.n_generations - 1
        gen2 = trace.generations[0]
        assert gen2.generation == 2
        assert gen2.n_candidates == 6  # AB AC AE BC BE CE
        assert gen2.kept_mask.sum() == 4  # AC AE BE CE survive

    def test_parent_bytes_match_payloads(self, apriori_trace):
        trace, _ = apriori_trace
        gen2 = trace.generations[0]
        kept_payloads = trace.singletons.payload_bytes[
            trace.singletons.kept_mask
        ]
        assert (gen2.left_bytes == kept_payloads[gen2.left_parent]).all()
        # Tidset reads sum to left + right bytes.
        assert gen2.total_read_bytes == int(
            gen2.left_bytes.sum() + gen2.right_bytes.sum()
        )

    def test_cross_generation_parent_linkage(self, apriori_trace):
        trace, _ = apriori_trace
        gen3 = trace.generations[1]
        gen2 = trace.generations[0]
        n_survivors = int(gen2.kept_mask.sum())
        assert gen3.left_parent.max() < n_survivors
        assert gen3.right_parent.max() < n_survivors

    def test_totals(self, apriori_trace):
        trace, _ = apriori_trace
        assert trace.total_candidates() == 7  # six pairs + ACE
        assert trace.total_payload_bytes() > 0


class TestEclatTrace:
    def test_level_structure(self, eclat_trace):
        trace, run = eclat_trace
        assert trace.n_toplevel_tasks == 4  # A B C E frequent
        assert trace.max_depth >= 2
        assert trace.total_combines() == 7  # six depth-1 pairs + ACE

    def test_level1_members_match_singletons(self, eclat_trace):
        trace, _ = eclat_trace
        level1 = trace.levels[0]
        assert level1.n_members == 4
        assert level1.creator_task.tolist() == [-1, -1, -1, -1]

    def test_child_payloads_propagate(self, eclat_trace):
        trace, _ = eclat_trace
        level2 = trace.levels[1]
        level1 = trace.levels[0]
        frequent = level1.child_index >= 0
        expected = np.zeros(int(frequent.sum()), np.int64)
        expected[level1.child_index[frequent]] = level1.child_payload[frequent]
        assert (level2.member_payload_bytes == expected).all()

    def test_creator_tasks_valid(self, eclat_trace):
        trace, _ = eclat_trace
        for prev, level in zip(trace.levels, trace.levels[1:]):
            assert (level.creator_task >= 0).all()
            assert (level.creator_task < prev.n_members).all()

    def test_toplevel_view_conserves_work(self, eclat_trace):
        trace, run = eclat_trace
        view = toplevel_view(trace)
        assert view.n_tasks == 4
        total_cpu = sum(int(lv.combine_cpu.sum()) for lv in trace.levels)
        assert int(view.cpu_ops.sum()) == total_cpu
        assert int(view.n_combines.sum()) == trace.total_combines()

    def test_toplevel_shared_is_depth1_only(self, eclat_trace):
        trace, _ = eclat_trace
        view = toplevel_view(trace)
        level1 = trace.levels[0]
        depth1_reads = int(
            level1.member_payload_bytes[level1.combine_left].sum()
            + level1.member_payload_bytes[level1.combine_right].sum()
        )
        assert int(view.shared_read_bytes.sum()) == depth1_reads
        assert (view.shared_distinct_bytes <= view.shared_read_bytes).all()

    def test_empty_run(self, tiny_db):
        trace = EclatTrace()
        run_eclat(tiny_db, 100, "tidset", sink=trace)
        finalized = trace.finalize()
        assert finalized.levels == []
        view = toplevel_view(finalized)
        assert view.n_tasks == 0
