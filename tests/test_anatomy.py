"""Run anatomy: bucket attribution, critical path, flamegraphs, explain.

The synthetic tests pin the derivation rules on hand-built span streams
(where every microsecond is known); the backend tests assert the same
invariants on real shared-memory traces, including the fault-injection
acceptance check: a deliberately slowed task must be named as the top
contributor by both the critical path and ``explain``.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import InMemorySink, ObsContext
from repro.obs.anatomy import (
    ANATOMY_SCHEMA,
    BUCKETS,
    analyze,
    anatomy_summary,
    classify_span,
    explain,
    flamegraph_collapsed,
    flamegraph_speedscope,
    load_events,
    render_anatomy,
    validate_speedscope,
)
from repro.obs.ledger import Ledger
from repro.obs.trace import ChromeTraceSink, JsonlSink, TraceEvent, US_PER_SECOND


def _span(name, ts, dur, *, pid=0, tid=0, cat=""):
    return TraceEvent(name, "X", ts=ts, dur=dur, pid=pid, tid=tid, cat=cat)


def _two_lane_events():
    """Parent lane [0, 1000]µs; one worker lane with wait + task + gap."""
    return [
        _span("shared_memory.mine", 0.0, 1000.0, cat="mine"),
        _span("worker.attach", 0.0, 100.0, pid=7, cat="setup"),
        _span("task.wait", 100.0, 100.0, pid=7, cat="wait"),
        _span("task.eclat", 200.0, 400.0, pid=7, cat="task"),
    ]


class TestClassifySpan:
    def test_cat_mapping(self):
        assert classify_span("x", "mine") == "compute"
        assert classify_span("x", "task") == "compute"
        assert classify_span("x", "steal") == "steal"
        assert classify_span("x", "rebuild") == "steal"
        assert classify_span("x", "dispatch") == "ipc"
        assert classify_span("x", "setup") == "ipc"
        assert classify_span("x", "io") == "io"
        assert classify_span("x", "wait") == "idle"

    def test_name_prefix_fallback(self):
        assert classify_span("task.wait") == "idle"
        assert classify_span("worker.attach") == "ipc"
        assert classify_span("outofcore.scan") == "io"
        assert classify_span("anything.else") == "compute"

    def test_container_bucket(self):
        assert classify_span("engine.mine", "engine") == "idle"
        assert classify_span("shared_memory.mine", "mine") == "idle"
        assert classify_span(
            "engine.mine", "engine", container_bucket="compute"
        ) == "compute"


class TestBucketInvariant:
    def test_lane_buckets_sum_to_wall(self):
        anatomy = analyze(_two_lane_events())
        assert anatomy.check() == []
        for lane in anatomy.lanes:
            assert sum(lane.buckets.values()) == pytest.approx(lane.wall_us)

    def test_worker_lane_split(self):
        anatomy = analyze(_two_lane_events())
        worker = next(lane for lane in anatomy.lanes if lane.pid == 7)
        assert worker.buckets["ipc"] == pytest.approx(100.0)
        assert worker.buckets["idle"] == pytest.approx(100.0)  # task.wait
        assert worker.buckets["compute"] == pytest.approx(400.0)

    def test_container_self_time_is_idle(self):
        anatomy = analyze(_two_lane_events())
        parent = next(lane for lane in anatomy.lanes if lane.pid == 0)
        assert parent.buckets["idle"] == pytest.approx(1000.0)
        assert parent.buckets["compute"] == 0.0

    def test_container_only_trace_counts_as_compute(self):
        """A serial run with no inner spans: the container IS the work."""
        anatomy = analyze([_span("engine.mine", 0.0, 500.0, cat="engine")])
        assert anatomy.buckets_seconds()["compute"] == pytest.approx(
            500.0 / US_PER_SECOND)

    def test_nested_self_time(self):
        anatomy = analyze([
            _span("eclat.task1", 0.0, 100.0, cat="mine"),
            _span("kernel.isect", 20.0, 40.0, cat="kernel"),
        ])
        lane = anatomy.lanes[0]
        root = lane.roots[0]
        assert root.self_us == pytest.approx(60.0)
        assert root.children[0].self_us == pytest.approx(40.0)

    def test_uncovered_lane_time_is_idle(self):
        anatomy = analyze([
            _span("a", 0.0, 100.0, cat="mine"),
            _span("b", 400.0, 100.0, cat="mine"),
        ])
        lane = anatomy.lanes[0]
        assert lane.buckets["idle"] == pytest.approx(300.0)
        assert lane.buckets["compute"] == pytest.approx(200.0)


class TestMirrorLanes:
    def test_dispatch_echo_excluded_from_totals(self):
        events = _two_lane_events() + [
            _span("task0", 200.0, 400.0, pid=0, tid=1, cat="dispatch"),
        ]
        anatomy = analyze(events)
        mirror = next(lane for lane in anatomy.lanes if lane.tid == 1)
        assert mirror.mirror
        totals = anatomy.buckets_seconds()
        with_mirrors = anatomy.buckets_seconds(include_mirrors=True)
        assert with_mirrors["ipc"] > totals["ipc"]
        # Mirror spans also stay off the critical path.
        assert all(step.tid != 1 or step.pid != 0
                   for step in anatomy.critical_path)

    def test_real_worker_lane_is_not_a_mirror(self):
        anatomy = analyze(_two_lane_events())
        assert not any(lane.mirror for lane in anatomy.lanes)


class TestCriticalPath:
    def test_contributions_sum_to_wall(self):
        anatomy = analyze(_two_lane_events())
        total = sum(step.contribution_us for step in anatomy.critical_path)
        assert total == pytest.approx(1000.0)

    def test_per_step_contributions(self):
        anatomy = analyze(_two_lane_events())
        contributions = dict(
            (name, us) for name, us, _ in anatomy.critical_contributors())
        # task.eclat [200,600] + the tail gap [600,1000] each bound 400µs;
        # task.wait and worker.attach cover the first 200µs.
        assert contributions["task.eclat"] == pytest.approx(400 / US_PER_SECOND)
        assert contributions["(idle)"] == pytest.approx(400 / US_PER_SECOND)
        assert contributions["task.wait"] == pytest.approx(100 / US_PER_SECOND)
        assert contributions["worker.attach"] == pytest.approx(
            100 / US_PER_SECOND)

    def test_two_lane_overlap_picks_last_finisher(self):
        anatomy = analyze([
            _span("short", 0.0, 100.0, pid=1, cat="task"),
            _span("long", 50.0, 900.0, pid=2, cat="task"),
        ])
        contributors = dict(
            (name, us) for name, us, _ in anatomy.critical_contributors())
        assert contributors["long"] == pytest.approx(900.0 / US_PER_SECOND)

    def test_summary_shape(self):
        summary = analyze(_two_lane_events()).summary()
        assert summary["schema"] == ANATOMY_SCHEMA
        assert set(summary["buckets"]) == set(BUCKETS)
        assert summary["n_lanes"] == 2
        assert all({"name", "seconds", "bucket"} <= set(entry)
                   for entry in summary["critical_path"])


class TestLoadEvents:
    def test_in_memory_sink(self):
        sink = InMemorySink()
        with sink.span("task.a", cat="mine"):
            pass
        events, dropped = load_events(sink)
        assert dropped == 0
        assert any(e.name == "task.a" for e in events)

    def test_chrome_sink_and_document_file(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(path)
        with sink.span("task.b", cat="mine"):
            pass
        events, _ = load_events(sink)
        assert any(e.name == "task.b" for e in events)
        sink.close()
        events, dropped = load_events(path)
        assert dropped == 0
        assert any(e.name == "task.b" for e in events)

    def test_json_array_file(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps([
            {"name": "t", "ph": "X", "ts": 0.0, "dur": 5.0},
        ]))
        events, dropped = load_events(path)
        assert (len(events), dropped) == (1, 0)

    def test_snapshot_phase_key(self):
        events, dropped = load_events([
            {"name": "t", "phase": "X", "ts": 0.0, "dur": 5.0},
        ])
        assert (len(events), dropped) == (1, 0)

    def test_junk_records_counted_not_fatal(self):
        events, dropped = load_events([
            {"name": "ok", "ph": "X", "ts": 0.0, "dur": 1.0},
            {"nonsense": True},
            42,
        ])
        assert (len(events), dropped) == (1, 2)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_events(tmp_path / "absent.jsonl")


class TestJsonlCrashWindow:
    """Satellite: flush-per-event JsonlSink + torn-line-tolerant loader."""

    def test_events_on_disk_without_close(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        with sink.span("task.a", cat="mine"):
            pass
        sink.instant("mark", 5.0)
        # No close(): a crash here must not lose the flushed events.
        events, dropped = load_events(path)
        assert dropped == 0
        assert {e.name for e in events} >= {"task.a", "mark"}
        sink.close()

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        with sink.span("task.a", cat="mine"):
            pass
        sink.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"name": "torn", "ph": "X", "ts": 12')  # mid-crash
        events, dropped = load_events(path)
        assert dropped == 1
        assert any(e.name == "task.a" for e in events)
        anatomy = analyze(path)
        assert anatomy.dropped == 1
        assert anatomy.check() == []


class TestFlamegraphs:
    def test_collapsed_format(self):
        anatomy = analyze(_two_lane_events())
        lines = flamegraph_collapsed(anatomy).strip().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack
            assert int(count) >= 1

    def test_collapsed_counts_sum_to_self_time(self):
        anatomy = analyze([
            _span("eclat.task1", 0.0, 100.0, cat="mine"),
            _span("kernel.isect", 20.0, 40.0, cat="kernel"),
        ])
        total = sum(int(line.rsplit(" ", 1)[1])
                    for line in flamegraph_collapsed(anatomy).splitlines())
        assert total == pytest.approx(100.0, abs=2.0)

    def test_speedscope_validates(self):
        anatomy = analyze(_two_lane_events())
        document = flamegraph_speedscope(anatomy)
        validate_speedscope(document)  # must not raise
        assert document["$schema"].endswith("file-format-schema.json")
        assert len(document["profiles"]) == len(anatomy.lanes)

    def test_validate_rejects_unbalanced_stack(self):
        anatomy = analyze(_two_lane_events())
        document = flamegraph_speedscope(anatomy)
        profile = document["profiles"][0]
        profile["events"].append(
            {"type": "O", "frame": 0, "at": profile["endValue"]})
        with pytest.raises(ValueError, match="unclosed"):
            validate_speedscope(document)

    def test_validate_rejects_bad_frame_index(self):
        anatomy = analyze(_two_lane_events())
        document = flamegraph_speedscope(anatomy)
        document["profiles"][0]["events"][0]["frame"] = 9999
        with pytest.raises(ValueError):
            validate_speedscope(document)


class TestCounterTracks:
    def test_counter_samples_summarised(self):
        sink = InMemorySink()
        sink.counter_sample("resource", 10.0, {"rss_bytes": 100.0}, pid=3)
        sink.counter_sample("resource", 20.0, {"rss_bytes": 300.0}, pid=3)
        sink.counter_sample("resource", 30.0, {"rss_bytes": 200.0}, pid=3)
        with sink.span("task.a", cat="mine"):
            pass
        anatomy = analyze(sink)
        track = anatomy.counter_tracks["pid3.resource.rss_bytes"]
        assert track == {"n": 3.0, "min": 100.0, "max": 300.0, "last": 200.0}


class TestExplain:
    def _summary(self, wall, **buckets):
        return {"schema": ANATOMY_SCHEMA, "wall_seconds": wall,
                "buckets": buckets, "critical_path": [], "n_spans": 1,
                "n_lanes": 1}

    def test_top_is_largest_non_idle_delta(self):
        base = self._summary(1.0, compute=0.5, idle=0.5)
        slow = self._summary(2.0, compute=1.3, idle=0.7)
        result = explain(base, slow)
        assert result.wall_delta_s == pytest.approx(1.0)
        assert result.top is not None
        assert result.top.bucket == "compute"
        assert result.top.delta_s == pytest.approx(0.8)

    def test_speedup_direction(self):
        base = self._summary(2.0, io=1.5, idle=0.5)
        fast = self._summary(0.6, io=0.1, idle=0.5)
        result = explain(base, fast)
        assert result.top.bucket == "io"
        assert result.top.delta_s == pytest.approx(-1.4)

    def test_idle_only_fallback(self):
        base = self._summary(1.0, idle=1.0)
        slow = self._summary(2.0, idle=2.0)
        assert explain(base, slow).top.bucket == "idle"

    def test_render_mentions_labels_and_buckets(self):
        base = self._summary(1.0, compute=1.0)
        slow = self._summary(2.0, compute=2.0)
        text = explain(base, slow).render(base_label="a", current_label="b")
        assert "a -> b" in text
        assert "compute" in text
        assert "+1.000s" in text


class TestAnatomySummaryHelper:
    def test_none_on_empty_sink(self):
        assert anatomy_summary(InMemorySink()) is None

    def test_never_raises_on_junk(self):
        assert anatomy_summary(object()) is None

    def test_summary_roundtrips_through_json(self):
        summary = anatomy_summary(_two_lane_events())
        assert summary == json.loads(json.dumps(summary))


class TestRenderAnatomy:
    def test_report_sections(self):
        sink = InMemorySink()
        sink.counter_sample("resource", 5.0, {"rss_bytes": 1.0})
        text = render_anatomy(analyze(_two_lane_events() + sink.events))
        assert "run wall:" in text
        assert "bucket" in text
        assert "critical path" in text
        assert "resource tracks" in text


class TestSharedMemoryAnatomy:
    def test_invariants_on_real_trace(self, paper_db):
        from repro.backends.shared_memory_backend import (
            run_eclat_shared_memory,
        )

        obs = ObsContext(sink=InMemorySink())
        run_eclat_shared_memory(paper_db, 2, n_workers=2, obs=obs)
        anatomy = analyze(obs.sink)
        assert anatomy.check() == []
        assert anatomy.n_spans > 0
        totals = anatomy.buckets_seconds()
        assert totals["compute"] > 0.0
        # Worker lanes (nonzero pids) made it through procmerge.
        assert any(lane.pid != 0 for lane in anatomy.lanes)
        validate_speedscope(flamegraph_speedscope(anatomy))

    def test_fault_injection_names_slowed_task(self, paper_db):
        """Acceptance: a task slowed by an injected sleep is the top
        critical-path contributor, and explain blames compute."""
        from repro.backends.shared_memory_backend import (
            run_eclat_shared_memory,
        )

        def run(fault):
            obs = ObsContext(sink=InMemorySink())
            run_eclat_shared_memory(
                paper_db, 2, n_workers=2, obs=obs, _fault=fault)
            return analyze(obs.sink)

        base = run(None)
        slow = run({"slow_task": 0, "slow_seconds": 0.4})

        name, seconds, bucket = slow.critical_contributors(top=1)[0]
        assert name.startswith("task.")
        assert bucket == "compute"
        assert seconds >= 0.3

        result = explain(base.summary(), slow.summary())
        assert result.top is not None
        assert result.top.bucket == "compute"
        assert result.top.delta_s >= 0.3


class TestLedgerAnatomy:
    def test_mine_records_anatomy_extra(self, paper_db, tmp_path):
        from repro.engine import mine

        ledger = Ledger(tmp_path / "runs")
        obs = ObsContext(sink=InMemorySink())
        mine(paper_db, min_support=2, obs=obs, ledger=ledger)
        record = ledger.records()[-1]
        summary = record.extra["anatomy"]
        assert summary["schema"] == ANATOMY_SCHEMA
        assert summary["wall_seconds"] > 0.0
        assert set(summary["buckets"]) == set(BUCKETS)

    def test_obs_compare_sees_anatomy_buckets(self, paper_db, tmp_path):
        from repro.engine import mine
        from repro.obs.compare import _flatten_seconds

        ledger = Ledger(tmp_path / "runs")
        obs = ObsContext(sink=InMemorySink())
        mine(paper_db, min_support=2, obs=obs, ledger=ledger)
        flat = _flatten_seconds(ledger.records()[-1].to_json_dict())
        assert "anatomy.compute_seconds" in flat
