"""The pre-engine entry points still work — as warning-emitting shims.

Each legacy function must (a) emit ``DeprecationWarning`` and (b) return
results identical to the engine path it forwards to.
"""

import warnings

import pytest

import repro
from repro.backends import eclat_multiprocessing, mine_serial
from repro.core import run_apriori, run_eclat


def _engine_reference(db, algorithm, representation, min_support):
    return repro.mine(
        db, algorithm=algorithm, representation=representation,
        backend="serial", min_support=min_support,
    )


class TestRunAprioriShim:
    def test_warns(self, tiny_db):
        with pytest.warns(DeprecationWarning, match="run_apriori"):
            run_apriori(tiny_db, 2, "tidset")

    def test_identical_results(self, tiny_db):
        with pytest.warns(DeprecationWarning):
            run = run_apriori(tiny_db, 2, "tidset")
        expected = _engine_reference(tiny_db, "apriori", "tidset", 2)
        assert run.result.itemsets == expected.itemsets
        # The full run object survives the shim (table + trace included).
        assert run.n_generations >= 1
        assert run.total_cost.cpu_ops > 0

    def test_options_forwarded(self, tiny_db):
        with pytest.warns(DeprecationWarning):
            capped = run_apriori(tiny_db, 2, "tidset", max_generations=1)
        assert capped.n_generations == 1


class TestRunEclatShim:
    def test_warns(self, tiny_db):
        with pytest.warns(DeprecationWarning, match="run_eclat"):
            run_eclat(tiny_db, 2, "diffset")

    def test_identical_results(self, tiny_db):
        with pytest.warns(DeprecationWarning):
            run = run_eclat(tiny_db, 2, "diffset")
        expected = _engine_reference(tiny_db, "eclat", "diffset", 2)
        assert run.result.itemsets == expected.itemsets
        assert run.n_toplevel_tasks >= 1


class TestMineSerialShim:
    def test_warns(self, tiny_db):
        with pytest.warns(DeprecationWarning, match="mine_serial"):
            mine_serial(tiny_db, 2, "eclat", "tidset")

    @pytest.mark.parametrize("algorithm", ["apriori", "eclat"])
    def test_identical_results(self, tiny_db, algorithm):
        with pytest.warns(DeprecationWarning):
            result = mine_serial(tiny_db, 2, algorithm, "tidset")
        expected = _engine_reference(tiny_db, algorithm, "tidset", 2)
        assert result.itemsets == expected.itemsets
        assert result.backend == "serial"


class TestEclatMultiprocessingShim:
    def test_warns(self, tiny_db):
        with pytest.warns(DeprecationWarning, match="eclat_multiprocessing"):
            eclat_multiprocessing(tiny_db, 2, "tidset", n_workers=1)

    def test_identical_results(self, tiny_db):
        with pytest.warns(DeprecationWarning):
            result = eclat_multiprocessing(tiny_db, 2, "tidset", n_workers=1)
        expected = _engine_reference(tiny_db, "eclat", "tidset", 2)
        assert result.itemsets == expected.itemsets
        assert result.backend == "multiprocessing"


class TestClosedItemsetsViaCharmShim:
    def test_warns(self, tiny_db):
        from repro.core.charm import closed_itemsets_via_charm

        with pytest.warns(DeprecationWarning, match="closed_itemsets_via_charm"):
            closed_itemsets_via_charm(tiny_db, 2)

    def test_identical_results(self, tiny_db):
        from repro.core.charm import closed_itemsets_via_charm

        with pytest.warns(DeprecationWarning):
            legacy = closed_itemsets_via_charm(tiny_db, 2)
        engine = repro.mine(tiny_db, algorithm="charm", min_support=2)
        assert legacy == dict(engine.itemsets)


class TestNewPathsDoNotWarn:
    def test_mine_and_wrappers_are_clean(self, tiny_db):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            repro.mine(tiny_db, min_support=2)
            repro.mine(tiny_db, algorithm="charm", min_support=2)
            repro.apriori(tiny_db, 2, "tidset")
            repro.eclat(tiny_db, 2, "diffset")
            repro.engine.execute(
                tiny_db, algorithm="eclat", min_support=2,
            )

    def test_index_paths_are_clean(self, tiny_db, tmp_path):
        from repro.index import ItemsetIndex

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            path = ItemsetIndex.build(tiny_db, 1).save(tmp_path / "t.idx")
            with ItemsetIndex.open(path) as index:
                index.frequent_at(2)
                index.top_k(3)
            repro.mine(tiny_db, min_support=2, index=path)

    def test_scalability_pipeline_is_clean(self, tiny_db):
        from repro.parallel import run_scalability_study

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_scalability_study(
                tiny_db, "eclat", "tidset", 2, thread_counts=[1, 2],
            )
