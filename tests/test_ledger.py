"""The run ledger: round-trip, querying, schema tolerance, defaults."""

from __future__ import annotations

import json

import pytest

from repro.datasets import parse_fimi
from repro.obs import ObsContext
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    Ledger,
    RunRecord,
    config_hash,
    default_ledger,
    fingerprint_database,
    record_run,
    reset_default_ledger,
    set_default_ledger,
)


@pytest.fixture
def db():
    return parse_fimi("1 2 3\n1 2\n2 3\n1 3\n1 2 3", name="tiny")


def _record(i: int = 0, **overrides) -> RunRecord:
    fields = dict(
        kind="mine",
        config={"algorithm": "eclat", "backend": "serial", "min_support": 2},
        dataset={"name": "tiny", "n_transactions": 5, "n_items": 3,
                 "sha256": "abc123def456"},
        wall_seconds=0.5 + i,
        cpu_seconds=0.4 + i,
        max_rss_bytes=1e6,
        n_itemsets=7,
    )
    fields.update(overrides)
    return RunRecord(**fields)


class TestConfigHash:
    def test_insertion_order_irrelevant(self):
        a = {"backend": "serial", "algorithm": "eclat", "min_support": 2}
        b = {"min_support": 2, "algorithm": "eclat", "backend": "serial"}
        assert config_hash(a) == config_hash(b)
        assert len(config_hash(a)) == 12

    def test_different_configs_differ(self):
        assert config_hash({"min_support": 2}) != config_hash({"min_support": 3})


class TestFingerprint:
    def test_content_sensitive(self, db):
        fp = fingerprint_database(db)
        assert fp["name"] == "tiny"
        assert fp["n_transactions"] == 5
        other = parse_fimi("1 2 3\n1 2\n2 3\n1 3\n1 2", name="tiny")
        assert fingerprint_database(other)["sha256"] != fp["sha256"]


class TestRoundTrip:
    def test_append_and_read_back(self, tmp_path):
        ledger = Ledger(tmp_path)
        written = [ledger.append(_record(i)) for i in range(3)]
        read = ledger.records()
        assert [r.run_id for r in read] == [r.run_id for r in written]
        assert read[0].wall_seconds == pytest.approx(0.5)
        assert read[2].to_json_dict() == written[2].to_json_dict()

    def test_stable_chronological_ordering(self, tmp_path):
        ledger = Ledger(tmp_path)
        for i in range(5):
            ledger.append(_record(i))
        walls = [r.wall_seconds for r in ledger.records()]
        assert walls == sorted(walls)
        assert [r.wall_seconds for r in ledger.last(2)] == walls[-2:]

    def test_query_by_config_hash(self, tmp_path):
        ledger = Ledger(tmp_path)
        a = ledger.append(_record(0))
        ledger.append(
            _record(1, config={"algorithm": "apriori", "backend": "serial"})
        )
        ledger.append(_record(2))
        hits = ledger.query(config_hash=a.config_hash)
        assert len(hits) == 2
        assert all(h.config_hash == a.config_hash for h in hits)
        assert ledger.query(algorithm="apriori")[0].wall_seconds == pytest.approx(1.5)
        assert ledger.query(dataset="nope") == []

    def test_find_by_prefix_and_index(self, tmp_path):
        ledger = Ledger(tmp_path)
        first = ledger.append(_record(0))
        last = ledger.append(_record(1))
        assert ledger.find(first.run_id[:6]).run_id == first.run_id
        assert ledger.find("-1").run_id == last.run_id
        assert ledger.find("-2").run_id == first.run_id
        assert ledger.find("-99") is None
        assert ledger.find("zzzzzz") is None


class TestTailFollowRotate:
    """The O(tail) read path and the size caps behind ``repro obs gc``."""

    def test_tail_is_the_records_suffix(self, tmp_path):
        ledger = Ledger(tmp_path)
        for i in range(7):
            ledger.append(_record(i))
        everything = ledger.records()
        for n in (1, 3, 7, 50):
            tail = ledger.tail(n)
            assert [r.run_id for r in tail] == [
                r.run_id for r in everything[-n:]
            ]
        assert ledger.tail(0) == []
        assert ledger.last(2) == ledger.tail(2)  # same semantics

    def test_tail_crosses_block_boundaries(self, tmp_path, monkeypatch):
        """Records straddling the backwards-read block boundary must still
        parse — the carry logic, exercised with a tiny block size."""
        import repro.obs.ledger as ledger_mod

        monkeypatch.setattr(ledger_mod, "_TAIL_BLOCK_BYTES", 64)
        ledger = Ledger(tmp_path)
        for i in range(20):
            ledger.append(_record(i))
        walls = [r.wall_seconds for r in ledger.tail(5)]
        assert walls == [pytest.approx(0.5 + i) for i in range(15, 20)]

    def test_tail_skips_corrupt_lines(self, tmp_path):
        ledger = Ledger(tmp_path)
        ledger.append(_record(0))
        with ledger.path.open("a") as handle:
            handle.write("{torn by a crash\n[]\n\n")
        ledger.append(_record(1))
        assert [r.wall_seconds for r in ledger.tail(2)] == [
            pytest.approx(0.5), pytest.approx(1.5),
        ]

    def test_tail_missing_file(self, tmp_path):
        assert Ledger(tmp_path / "never").tail(3) == []

    def test_follow_yields_only_new_records(self, tmp_path):
        ledger = Ledger(tmp_path)
        ledger.append(_record(0))  # precedes follow() -> never yielded
        seen: list[RunRecord] = []
        polls = [0]

        def stop() -> bool:
            polls[0] += 1
            if polls[0] == 1:
                ledger.append(_record(1))
                ledger.append(_record(2))
            return polls[0] > 3 or len(seen) >= 2

        for record in ledger.follow(poll_seconds=0.01, stop=stop):
            seen.append(record)
        assert [r.wall_seconds for r in seen] == [
            pytest.approx(1.5), pytest.approx(2.5),
        ]

    def test_follow_ignores_partial_appends(self, tmp_path):
        """A record caught mid-append (no trailing newline yet) is not
        consumed until the line is complete."""
        ledger = Ledger(tmp_path)
        ledger.root.mkdir(parents=True, exist_ok=True)
        ledger.path.write_text("")
        seen: list[RunRecord] = []
        polls = [0]
        full_line = json.dumps(_record(1).to_json_dict(), default=str) + "\n"

        def stop() -> bool:
            polls[0] += 1
            if polls[0] == 1:
                with ledger.path.open("a") as handle:
                    handle.write(full_line[:20])  # torn write
            elif polls[0] == 2:
                assert seen == []  # the torn half must not have been parsed
                with ledger.path.open("a") as handle:
                    handle.write(full_line[20:])
            return polls[0] > 4 or len(seen) >= 1

        for record in ledger.follow(poll_seconds=0.01, stop=stop):
            seen.append(record)
        assert len(seen) == 1
        assert seen[0].wall_seconds == pytest.approx(1.5)

    def test_rotate_caps_and_keeps_newest(self, tmp_path):
        ledger = Ledger(tmp_path)
        for i in range(6):
            ledger.append(_record(i))
        assert ledger.rotate(keep_records=2) == 4
        assert [r.wall_seconds for r in ledger.records()] == [
            pytest.approx(4.5), pytest.approx(5.5),
        ]
        assert ledger.rotate(keep_records=2) == 0  # already under the cap
        assert not ledger.path.with_name(
            ledger.path.name + ".tmp"
        ).exists()

    def test_rotate_rejects_negative(self, tmp_path):
        with pytest.raises(ValueError):
            Ledger(tmp_path).rotate(keep_records=-1)

    def test_iter_records_is_lazy(self, tmp_path):
        ledger = Ledger(tmp_path)
        for i in range(3):
            ledger.append(_record(i))
        iterator = ledger.iter_records()
        first = next(iterator)
        assert first.wall_seconds == pytest.approx(0.5)


class TestSchemaVersioning:
    def test_records_are_stamped(self, tmp_path):
        ledger = Ledger(tmp_path)
        ledger.append(_record())
        line = json.loads(ledger.path.read_text().splitlines()[0])
        assert line["schema"] == LEDGER_SCHEMA_VERSION

    def test_future_schema_still_loads(self, tmp_path):
        """Records from a newer version load (unknown fields ignored) and
        keep their original schema stamp."""
        ledger = Ledger(tmp_path)
        future = _record().to_json_dict()
        future["schema"] = LEDGER_SCHEMA_VERSION + 5
        future["field_from_the_future"] = {"x": 1}
        ledger.root.mkdir(parents=True, exist_ok=True)
        ledger.path.write_text(json.dumps(future) + "\n")
        [record] = ledger.records()
        assert record.schema == LEDGER_SCHEMA_VERSION + 5
        assert record.kind == "mine"

    def test_corrupt_lines_skipped(self, tmp_path):
        ledger = Ledger(tmp_path)
        ledger.append(_record(0))
        with ledger.path.open("a") as handle:
            handle.write("{truncated by a cra")  # crash mid-append
            handle.write("\n[1, 2, 3]\n\n")      # wrong JSON shape + blank
        ledger.append(_record(1))
        records = ledger.records()
        assert len(records) == 2
        assert [r.wall_seconds for r in records] == [
            pytest.approx(0.5), pytest.approx(1.5),
        ]

    def test_missing_file_is_empty(self, tmp_path):
        assert Ledger(tmp_path / "never").records() == []


class TestDefaultResolution:
    """REPRO_LEDGER is set to 0 by conftest; exercise the other branches."""

    def test_env_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert default_ledger() is None

    def test_env_directory(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "runs"))
        ledger = default_ledger()
        assert ledger is not None
        assert ledger.root == tmp_path / "runs"

    def test_set_default_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        installed = Ledger(tmp_path)
        set_default_ledger(installed)
        try:
            assert default_ledger() is installed
        finally:
            reset_default_ledger()
        assert default_ledger() is None


class TestRecordRun:
    def test_explicit_ledger_records(self, db, tmp_path):
        ledger = Ledger(tmp_path)
        obs = ObsContext()
        obs.metrics.counter("mine.intersections").inc(3)
        record = record_run(
            "mine", db=db,
            config={"algorithm": "eclat", "backend": "serial"},
            wall_seconds=0.1, cpu_seconds=0.1, n_itemsets=9,
            obs=obs, ledger=ledger,
        )
        assert record is not None
        [read] = ledger.records()
        assert read.dataset["name"] == "tiny"
        assert read.metrics["counters"]["mine.intersections"] == 3
        assert read.max_rss_bytes > 0

    def test_no_ledger_no_write(self, db):
        assert record_run(
            "mine", db=db, config={}, wall_seconds=0.1, cpu_seconds=0.1,
        ) is None

    def test_mine_records_via_engine(self, db, tmp_path):
        import repro

        ledger = Ledger(tmp_path)
        result = repro.mine(db, min_support=2, ledger=ledger)
        [record] = ledger.records()
        assert record.kind == "mine"
        assert record.n_itemsets == len(result)
        assert record.config["algorithm"] == "eclat"
        assert record.wall_seconds > 0
        # Identical config -> identical hash; changed support -> new hash.
        repro.mine(db, min_support=2, ledger=ledger)
        repro.mine(db, min_support=3, ledger=ledger)
        hashes = [r.config_hash for r in ledger.records()]
        assert hashes[0] == hashes[1] != hashes[2]

    def test_simulate_records_and_rusage_notes(self, db, tmp_path):
        from repro.parallel import run_scalability_study

        ledger = Ledger(tmp_path)
        study = run_scalability_study(
            db, "eclat", "tidset", 2, thread_counts=[1, 2], ledger=ledger,
        )
        assert study.notes["rusage"]["max_rss_bytes"] > 0
        kinds = [r.kind for r in ledger.records()]
        assert "simulate" in kinds
        simulate = ledger.query(kind="simulate")[0]
        assert simulate.config["thread_counts"] == [1, 2]
        assert set(simulate.extra["runtimes"]) == {"1", "2"}


class TestTailBlockBoundaryEdges:
    """Satellite bugfix audit: the backward 64 KiB block reader's carry
    logic around newlines at block boundaries and torn final lines."""

    def test_every_boundary_alignment(self, tmp_path, monkeypatch):
        # Sweeping the block size over a whole record-length range walks a
        # read boundary through every byte position — including exactly on
        # a newline — so any carry bug shows up as a lost/mangled record.
        import repro.obs.ledger as ledger_mod

        ledger = Ledger(tmp_path)
        for i in range(12):
            ledger.append(_record(i))
        expected = [r.run_id for r in ledger.records()]
        record_bytes = len(
            ledger.path.read_bytes().splitlines(keepends=True)[0]
        )
        for block in range(8, 8 + record_bytes + 1):
            monkeypatch.setattr(ledger_mod, "_TAIL_BLOCK_BYTES", block)
            for n in (1, 5, 12, 50):
                got = [r.run_id for r in ledger.tail(n)]
                assert got == expected[-n:], f"block={block} n={n}"

    def test_newline_exactly_on_block_boundary(self, tmp_path, monkeypatch):
        # Place a backward-read boundary exactly ON a record's trailing
        # newline, and exactly one byte AFTER it — the two alignments where
        # a wrong carry would split or drop the straddling record.
        import repro.obs.ledger as ledger_mod

        ledger = Ledger(tmp_path)
        for i in range(6):
            ledger.append(_record(i))
        raw = ledger.path.read_bytes()
        size = len(raw)
        nl_index = raw.index(b"\n")  # first record's trailing newline
        expected = [pytest.approx(0.5 + i) for i in range(6)]
        for block in (size - nl_index, size - nl_index - 1):
            monkeypatch.setattr(ledger_mod, "_TAIL_BLOCK_BYTES", block)
            assert [r.wall_seconds for r in ledger.tail(6)] == expected

    def test_torn_final_line_is_skipped(self, tmp_path, monkeypatch):
        # A crash mid-append leaves a JSON prefix with no trailing newline;
        # tail must skip it and still return the complete records.
        import repro.obs.ledger as ledger_mod

        monkeypatch.setattr(ledger_mod, "_TAIL_BLOCK_BYTES", 64)
        ledger = Ledger(tmp_path)
        for i in range(5):
            ledger.append(_record(i))
        with ledger.path.open("ab") as handle:
            handle.write(b'{"schema": 1, "kind": "mine", "wall_se')
        tail = ledger.tail(10)
        assert [r.wall_seconds for r in tail] == [
            pytest.approx(0.5 + i) for i in range(5)
        ]

    def test_complete_final_line_without_newline_is_kept(
        self, tmp_path, monkeypatch
    ):
        # The other half of the crash window: the JSON made it out but the
        # newline didn't.  The record is complete, so tail includes it.
        import repro.obs.ledger as ledger_mod

        monkeypatch.setattr(ledger_mod, "_TAIL_BLOCK_BYTES", 64)
        ledger = Ledger(tmp_path)
        for i in range(3):
            ledger.append(_record(i))
        last = _record(99)
        with ledger.path.open("ab") as handle:
            handle.write(json.dumps(last.to_json_dict()).encode("utf-8"))
        tail = ledger.tail(10)
        assert len(tail) == 4
        assert tail[-1].wall_seconds == pytest.approx(99.5)


def _hammer_ledger(path: str, n_records: int, tag: int) -> None:
    """Child-process body for the concurrent-append test (must be
    module-level so multiprocessing can import it)."""
    ledger = Ledger(path)
    # Pad extra so each line spans several KiB: a torn write would be
    # easy to produce if appends were not a single atomic syscall.
    padding = f"writer-{tag}-" + "x" * 4096
    for i in range(n_records):
        ledger.append(_record(i, extra={"tag": tag, "i": i, "pad": padding}))


class TestConcurrentAppends:
    def test_two_processes_never_tear_lines(self, tmp_path):
        """Interleaved appends from two processes keep every line intact.

        The serve layer appends serve-query records from multiple worker
        threads and processes concurrently with engine mine records; a
        buffered text-mode append could flush one record across several
        write(2) calls, letting another writer's line land in the middle.
        ``Ledger.append`` must therefore issue one O_APPEND write per
        record.  Torn lines would fail JSON parsing and be dropped by the
        reader, so an exact record count proves atomicity.
        """
        import multiprocessing

        n_each = 150
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_hammer_ledger, args=(str(tmp_path), n_each, tag))
            for tag in (1, 2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        records = Ledger(tmp_path).records()
        assert len(records) == 2 * n_each
        seen = {(r.extra["tag"], r.extra["i"]) for r in records}
        assert len(seen) == 2 * n_each
        # Every line is valid JSON ending in exactly one newline.
        with Ledger(tmp_path).path.open("rb") as handle:
            for line in handle:
                assert line.endswith(b"\n")
                json.loads(line)
