"""Tests for association-rule metrics and generation."""

import math

import pytest

from repro.core import apriori
from repro.core.result import from_mapping
from repro.errors import ConfigurationError, MiningError
from repro.rules import (
    AssociationRule,
    confidence,
    conviction,
    generate_rules,
    leverage,
    lift,
    top_rules_for,
)


class TestMetrics:
    def test_confidence(self):
        assert confidence(0.3, 0.6) == pytest.approx(0.5)

    def test_confidence_zero_antecedent(self):
        assert confidence(0.0, 0.0) == 0.0

    def test_confidence_validates(self):
        with pytest.raises(ConfigurationError):
            confidence(1.5, 0.5)

    def test_lift_independent(self):
        assert lift(0.25, 0.5, 0.5) == pytest.approx(1.0)

    def test_lift_positive_correlation(self):
        assert lift(0.4, 0.5, 0.5) > 1.0

    def test_lift_zero_consequent(self):
        assert lift(0.0, 0.5, 0.0) == 0.0

    def test_leverage_independent_is_zero(self):
        assert leverage(0.25, 0.5, 0.5) == pytest.approx(0.0)

    def test_leverage_sign(self):
        assert leverage(0.4, 0.5, 0.5) > 0
        assert leverage(0.1, 0.5, 0.5) < 0

    def test_conviction_perfect_rule(self):
        assert conviction(0.5, 0.5, 0.6) == math.inf

    def test_conviction_independent(self):
        assert conviction(0.25, 0.5, 0.5) == pytest.approx(1.0)


class TestGeneration:
    def _result(self):
        # diapers (0) and beer (1): the Section II anecdote.
        return from_mapping(
            {(0,): 60, (1,): 50, (0, 1): 45, (2,): 80, (0, 2): 48},
            n_transactions=100,
        )

    def test_strong_rule_found(self):
        rules = generate_rules(self._result(), min_confidence=0.7)
        found = {(r.antecedent, r.consequent) for r in rules}
        assert ((0,), (1,)) in found  # diapers => beer at 0.75 confidence

    def test_confidence_values(self):
        rules = generate_rules(self._result(), min_confidence=0.0)
        by_pair = {(r.antecedent, r.consequent): r for r in rules}
        rule = by_pair[((0,), (1,))]
        assert rule.confidence == pytest.approx(0.75)
        assert rule.support == pytest.approx(0.45)
        assert rule.lift == pytest.approx(0.75 / 0.5)

    def test_min_confidence_filters(self):
        rules = generate_rules(self._result(), min_confidence=0.9)
        assert all(r.confidence >= 0.9 for r in rules)
        # beer => diapers has confidence 0.9 exactly
        assert any(r.antecedent == (1,) for r in rules)

    def test_min_lift_filters(self):
        rules = generate_rules(self._result(), min_confidence=0.0, min_lift=1.2)
        assert all(r.lift >= 1.2 for r in rules)

    def test_sorted_by_confidence(self):
        rules = generate_rules(self._result(), min_confidence=0.0)
        confs = [r.confidence for r in rules]
        assert confs == sorted(confs, reverse=True)

    def test_singletons_produce_no_rules(self):
        result = from_mapping({(0,): 10, (1,): 5}, n_transactions=10)
        assert generate_rules(result) == []

    def test_invalid_confidence(self):
        with pytest.raises(ConfigurationError):
            generate_rules(self._result(), min_confidence=1.2)

    def test_missing_transaction_count(self):
        result = from_mapping({(0, 1): 2, (0,): 3, (1,): 3}, n_transactions=0)
        with pytest.raises(MiningError):
            generate_rules(result)

    def test_closure_violation_detected(self):
        result = from_mapping({(0, 1): 2, (0,): 3}, n_transactions=10)
        with pytest.raises(MiningError, match="downward closure"):
            generate_rules(result, min_confidence=0.0)

    def test_end_to_end_with_miner(self, small_dense_db):
        result = apriori(small_dense_db, 0.4, "tidset")
        rules = generate_rules(result, min_confidence=0.8)
        assert rules, "dense data should yield strong rules"
        for rule in rules[:10]:
            # Verify confidence against true supports.
            ante = small_dense_db.support_of(rule.antecedent)
            union = small_dense_db.support_of(rule.antecedent + rule.consequent)
            assert rule.confidence == pytest.approx(union / ante)

    def test_top_rules_for(self):
        rules = generate_rules(self._result(), min_confidence=0.0)
        top = top_rules_for(rules, item=0, limit=2)
        assert len(top) <= 2
        assert all(0 in r.antecedent for r in top)

    def test_rule_is_dataclass_with_str(self):
        rule = AssociationRule((0,), (1,), 0.4, 0.8, 1.5, 0.1, 2.0)
        assert "=>" in str(rule)
