"""Edge-case tests across the datasets package."""

import numpy as np
import pytest

from repro.datasets import (
    PAPER_STATS,
    QuestGenerator,
    TransactionDatabase,
    parse_fimi,
)
from repro.datasets.synthetic import DenseAttributeGenerator
from repro.errors import DatasetError


class TestFimiEdges:
    def test_crlf_line_endings(self):
        db = parse_fimi("1 2\r\n3 4\r\n")
        assert db.n_transactions == 2
        assert db[1].tolist() == [3, 4]

    def test_large_item_ids(self):
        db = parse_fimi("1000000 2000000\n")
        assert db.n_items == 2000001
        assert db[0].tolist() == [1000000, 2000000]

    def test_duplicate_items_in_line_collapse(self):
        db = parse_fimi("5 5 5 1\n")
        assert db[0].tolist() == [1, 5]

    def test_single_item_lines(self):
        db = parse_fimi("7\n7\n7\n")
        assert db.item_supports()[7] == 3


class TestTransactionDbEdges:
    def test_all_empty_transactions(self):
        db = TransactionDatabase([[], [], []])
        assert db.n_transactions == 3
        assert db.avg_length == 0.0
        assert db.tidlists() == []

    def test_density_bounds(self, small_dense_db):
        assert 0.0 < small_dense_db.density <= 1.0

    def test_without_items_empty_set(self, tiny_db):
        same = tiny_db.without_items([])
        assert [t.tolist() for t in same] == [t.tolist() for t in tiny_db]

    def test_head_zero(self, tiny_db):
        assert tiny_db.head(0).n_transactions == 0

    def test_support_of_duplicated_query(self, tiny_db):
        assert tiny_db.support_of([1, 1, 2]) == tiny_db.support_of([1, 2])

    def test_negative_in_canonical_fast_path_not_validated(self):
        # The fast path trusts the caller; this documents the contract.
        rows = [np.array([0, 3], dtype=np.int32)]
        db = TransactionDatabase(rows, assume_canonical=True)
        assert db.n_items == 4


class TestGeneratorsEdges:
    def test_quest_name_override(self):
        db = QuestGenerator(seed=1).generate(5, name="custom")
        assert db.name == "custom"

    def test_dense_ladder_monotone_supports(self):
        """Shared-attribute dominance descends along the ladder."""
        gen = DenseAttributeGenerator(
            domain_sizes=(4,) * 8,
            n_shared_attributes=8,
            shared_peak=0.98,
            shared_floor=0.6,
            seed=17,
        )
        db = gen.generate(4000)
        supports = db.item_supports() / db.n_transactions
        dominants = [
            float(supports[a * 4 : (a + 1) * 4].max()) for a in range(8)
        ]
        # First attribute clearly above the last (monotone trend, with
        # sampling noise tolerated in between).
        assert dominants[0] > dominants[-1] + 0.1

    def test_dense_single_shared_attribute(self):
        gen = DenseAttributeGenerator(
            domain_sizes=(3, 3), n_shared_attributes=1, shared_peak=0.9, seed=2
        )
        db = gen.generate(500)
        assert db.n_transactions == 500

    def test_paper_stats_sizes_sane(self):
        for info in PAPER_STATS.values():
            assert info.n_items > 0
            assert info.surrogate_transactions <= info.n_transactions


class TestStatsRow:
    def test_size_label_units(self, tiny_db):
        from repro.datasets.transaction_db import _human_size

        assert _human_size(500) == "500B"
        assert _human_size(2048) == "2K"
        assert _human_size(3 << 20) == "3.0M"
