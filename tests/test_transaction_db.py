"""Unit tests for the horizontal transaction database container."""

import numpy as np
import pytest

from repro.datasets.transaction_db import DatasetStats, TransactionDatabase
from repro.errors import DatasetError


class TestConstruction:
    def test_transactions_are_sorted(self):
        db = TransactionDatabase([[3, 1, 2]])
        assert db[0].tolist() == [1, 2, 3]

    def test_transactions_are_deduplicated(self):
        db = TransactionDatabase([[1, 1, 2, 2, 2]])
        assert db[0].tolist() == [1, 2]

    def test_negative_item_rejected(self):
        with pytest.raises(DatasetError):
            TransactionDatabase([[1, -2]])

    def test_n_items_inferred_from_max(self):
        db = TransactionDatabase([[0, 7], [3]])
        assert db.n_items == 8

    def test_explicit_n_items_respected(self):
        db = TransactionDatabase([[0, 1]], n_items=10)
        assert db.n_items == 10

    def test_explicit_n_items_too_small_rejected(self):
        with pytest.raises(DatasetError):
            TransactionDatabase([[0, 5]], n_items=5)

    def test_empty_database(self, empty_db):
        assert empty_db.n_transactions == 0
        assert empty_db.n_items == 0
        assert empty_db.avg_length == 0.0

    def test_empty_transactions_kept(self):
        db = TransactionDatabase([[1], [], [2]])
        assert db.n_transactions == 3
        assert db[1].size == 0

    def test_from_lists_roundtrip(self):
        db = TransactionDatabase.from_lists([[1, 2], [2, 3]], name="x")
        assert db.name == "x"
        assert [t.tolist() for t in db] == [[1, 2], [2, 3]]

    def test_assume_canonical_fast_path(self):
        rows = [np.array([0, 2, 5], dtype=np.int32)]
        db = TransactionDatabase(rows, assume_canonical=True)
        assert db[0].tolist() == [0, 2, 5]
        assert db.n_items == 6


class TestStatistics:
    def test_avg_length(self, tiny_db):
        assert tiny_db.avg_length == pytest.approx(12 / 5)

    def test_density(self):
        db = TransactionDatabase([[0, 1], [0]], n_items=4)
        assert db.density == pytest.approx((3 / 2) / 4)

    def test_item_supports(self, tiny_db):
        supports = tiny_db.item_supports()
        assert supports[1] == 4
        assert supports[2] == 4
        assert supports[3] == 4
        assert supports[0] == 0

    def test_item_supports_cached(self, tiny_db):
        assert tiny_db.item_supports() is tiny_db.item_supports()

    def test_stats_row_shape(self, tiny_db):
        stats = tiny_db.stats()
        assert isinstance(stats, DatasetStats)
        name, items, length, txs, size = stats.row()
        assert name == "tiny"
        assert items == 4
        assert txs == 5

    def test_size_bytes_matches_fimi_text(self, tiny_db):
        from repro.datasets.fimi import dumps_fimi

        assert tiny_db.size_bytes() == len(dumps_fimi(tiny_db))


class TestVerticalViews:
    def test_tidlists_cover_all_items(self, tiny_db):
        tidlists = tiny_db.tidlists()
        assert len(tidlists) == tiny_db.n_items
        assert tidlists[1].tolist() == [0, 1, 3, 4]
        assert tidlists[2].tolist() == [0, 1, 2, 4]
        assert tidlists[3].tolist() == [0, 2, 3, 4]

    def test_tidlists_sorted(self, small_sparse_db):
        for tids in small_sparse_db.tidlists():
            assert (np.diff(tids) > 0).all()

    def test_tidlists_lengths_match_supports(self, small_dense_db):
        supports = small_dense_db.item_supports()
        for item, tids in enumerate(small_dense_db.tidlists()):
            assert tids.size == supports[item]

    def test_tidlists_empty_db(self, empty_db):
        assert empty_db.tidlists() == []

    def test_support_of_oracle(self, tiny_db):
        assert tiny_db.support_of([1, 2]) == 3
        assert tiny_db.support_of([1, 2, 3]) == 2
        assert tiny_db.support_of([]) == 5

    def test_support_of_unknown_item(self, tiny_db):
        # item 0 never occurs but is in the universe
        assert tiny_db.support_of([0]) == 0


class TestTransforms:
    def test_without_items(self, tiny_db):
        db = tiny_db.without_items([2])
        assert all(2 not in t.tolist() for t in db)
        assert db.n_transactions == tiny_db.n_transactions
        assert db.n_items == tiny_db.n_items  # universe preserved

    def test_frequency_capped_removes_dominant(self, tiny_db):
        capped = tiny_db.frequency_capped(0.8)
        # items 1,2,3 each have support 4/5 = 0.8 >= cap -> all removed
        assert all(t.size == 0 for t in capped)

    def test_frequency_capped_keeps_below_cap(self, tiny_db):
        capped = tiny_db.frequency_capped(0.81)
        assert capped.item_supports().sum() == tiny_db.item_supports().sum()

    def test_frequency_capped_validates(self, tiny_db):
        with pytest.raises(DatasetError):
            tiny_db.frequency_capped(0.0)
        with pytest.raises(DatasetError):
            tiny_db.frequency_capped(1.5)

    def test_head(self, tiny_db):
        assert tiny_db.head(2).n_transactions == 2
        assert tiny_db.head(100).n_transactions == 5
