"""repro.obs.live — progress, heartbeats, stall detection, and ETA.

Covers the tracker contract (monotone fractions ending at exactly 1.0 — a
hypothesis property), the ETA blend, the status-file schema + atomic-write
discipline, the stall watchdog end-to-end against the shared-memory
backend's fault-injection harness, and the CLI surface (``mine
--progress``, ``obs watch``, ``obs gc``).
"""

from __future__ import annotations

import glob
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import build_parser, main
from repro.datasets.fimi import write_fimi
from repro.obs import ObsContext
from repro.obs.ledger import Ledger, RunRecord
from repro.obs.live import (
    DEFAULT_LIVE_DIR,
    LIVE_SCHEMA_VERSION,
    EtaEstimator,
    ProgressTracker,
    atomic_write_json,
    default_live_dir,
    find_status,
    history_seconds,
    list_status_files,
    progress_line,
    prune_status_files,
    read_status,
    render_status,
    validate_status,
    worker_heartbeat,
)
from repro.obs.trace import InMemorySink


def _shm_segments() -> set[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        pytest.skip("/dev/shm not available on this platform")
    return set(glob.glob("/dev/shm/psm_*"))


@pytest.fixture
def no_shm_leak():
    before = _shm_segments()
    yield
    assert _shm_segments() - before == set()


def _tracker(**overrides) -> ProgressTracker:
    """An in-memory tracker with throttling off (tests drive every write)."""
    fields = dict(backend="test", algorithm="eclat", dataset="tiny",
                  min_write_interval=0.0)
    fields.update(overrides)
    return ProgressTracker(**fields)


class TestEtaEstimator:
    def test_nothing_known(self):
        assert EtaEstimator().estimate(1.0, 0, 0) == (None, None)

    def test_throughput_only(self):
        eta, source = EtaEstimator().estimate(10.0, 5, 10)
        assert eta == pytest.approx(10.0)
        assert source == "throughput"

    def test_all_done_is_zero(self):
        eta, _ = EtaEstimator().estimate(10.0, 10, 10)
        assert eta == 0.0

    def test_prior_before_first_completion(self):
        eta, source = EtaEstimator(history_seconds=100.0).estimate(30.0, 0, 10)
        assert eta == pytest.approx(70.0)
        assert source == "history"

    def test_model_prior_when_no_history(self):
        eta, source = EtaEstimator(predicted_seconds=50.0).estimate(10.0, 0, 4)
        assert eta == pytest.approx(40.0)
        assert source == "model"

    def test_history_beats_model(self):
        estimator = EtaEstimator(history_seconds=100.0, predicted_seconds=5.0)
        assert estimator.prior() == (100.0, "history")

    def test_blend_weights_by_fraction(self):
        # throughput = 10 * 8 / 2 = 40; prior remainder = 100 - 10 = 90;
        # f = 0.2 -> 0.2 * 40 + 0.8 * 90 = 80.
        eta, source = EtaEstimator(history_seconds=100.0).estimate(10.0, 2, 10)
        assert eta == pytest.approx(80.0)
        assert source == "blend"

    def test_exhausted_prior_never_negative(self):
        eta, _ = EtaEstimator(history_seconds=5.0).estimate(60.0, 1, 10)
        assert eta >= 0.0


class TestHistorySeconds:
    def _append(self, ledger, wall, config=None, sha="datasha"):
        ledger.append(RunRecord(
            kind="mine",
            config=config or {"algorithm": "eclat", "min_support": 2},
            dataset={"name": "tiny", "n_transactions": 5, "n_items": 3,
                     "sha256": sha},
            wall_seconds=wall, cpu_seconds=wall, max_rss_bytes=0,
            n_itemsets=1,
        ))

    def test_median_of_matching_runs(self, tmp_path):
        ledger = Ledger(tmp_path)
        for wall in (1.0, 9.0, 2.0):
            self._append(ledger, wall)
        self._append(ledger, 100.0, config={"algorithm": "apriori"})
        self._append(ledger, 100.0, sha="othersha")
        match = ledger.records()[0].config_hash
        assert history_seconds(ledger, match, "datasha") == pytest.approx(2.0)

    def test_no_match_is_none(self, tmp_path):
        ledger = Ledger(tmp_path)
        self._append(ledger, 1.0)
        assert history_seconds(ledger, "nope", "datasha") is None
        assert history_seconds(Ledger(tmp_path / "never"), "x", "y") is None


class TestProgressTracker:
    def test_fraction_monotone_under_mid_run_spawns(self):
        tracker = _tracker()
        tracker.add_total(4)
        tracker.task_done(3)
        assert tracker.fraction == pytest.approx(0.75)
        # Worksteal spawns grow the total; the published fraction must not
        # move backwards.
        tracker.add_total(4)
        assert tracker.fraction == pytest.approx(0.75)
        tracker.task_done(5)
        assert tracker.fraction == 1.0

    def test_finish_done_pins_one_even_without_totals(self):
        tracker = _tracker()
        tracker.finish("done")
        document = tracker.status()
        assert document["state"] == "done"
        assert document["progress"]["fraction"] == 1.0
        assert document["progress"]["total"] >= 1
        validate_status(document)

    def test_finish_failed_keeps_partial_fraction(self):
        tracker = _tracker()
        tracker.add_total(4)
        tracker.task_done(1)
        tracker.finish("failed")
        document = tracker.status()
        assert document["state"] == "failed"
        assert document["progress"]["fraction"] == pytest.approx(0.25)
        validate_status(document)

    def test_finish_rejects_unknown_state(self):
        with pytest.raises(ValueError):
            _tracker().finish("paused")

    def test_status_file_written_atomically(self, tmp_path):
        tracker = _tracker(directory=tmp_path)
        tracker.add_total(2)
        tracker.task_done(1)
        document = read_status(tracker.path)
        validate_status(document)
        assert document["run_id"] == tracker.run_id
        assert document["schema"] == LIVE_SCHEMA_VERSION
        assert not list(tmp_path.glob("*.tmp"))

    def test_heartbeat_merges_and_drops_malformed_fields(self):
        tracker = _tracker()
        beat = worker_heartbeat(tasks_done=3, busy_seconds=1.5)
        beat["rss_bytes"] = "garbage"  # a bad value costs a reading, not the run
        tracker.heartbeat(0, beat)
        [worker] = tracker.status()["workers"]
        assert worker["pid"] == os.getpid()
        assert worker["tasks_done"] == 3
        assert worker["busy_seconds"] == pytest.approx(1.5)
        assert worker["rss_bytes"] == 0.0

    def test_stall_flag_set_and_cleared_by_heartbeat(self):
        tracker = _tracker()
        tracker.heartbeat(1)
        tracker.record_stall(1)
        assert tracker.stalls == 1
        assert tracker.status()["workers"][0]["stalled"] is True
        tracker.heartbeat(1)  # recovery clears the flag, keeps the count
        assert tracker.status()["workers"][0]["stalled"] is False
        assert tracker.status()["stalls"] == 1

    def test_write_throttling_and_force(self, tmp_path):
        tracker = _tracker(directory=tmp_path, min_write_interval=3600.0)
        tracker.add_total(10)  # first write lands
        tracker.task_done(4)   # throttled away
        assert read_status(tracker.path)["progress"]["completed"] == 0
        tracker.write(force=True)
        assert read_status(tracker.path)["progress"]["completed"] == 4

    def test_broken_renderer_never_kills_the_run(self):
        def bad_renderer(document):
            raise RuntimeError("terminal went away")

        tracker = _tracker(on_update=bad_renderer)
        tracker.add_total(1)  # first callback blows up -> renderer dropped
        tracker.task_done(1)
        assert tracker.on_update is None
        assert tracker.fraction == 1.0

    def test_unwritable_directory_degrades_to_in_memory(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the directory should go")
        tracker = _tracker(directory=blocker / "sub")
        tracker.add_total(2)
        tracker.task_done(2)
        tracker.finish("done")  # no raise; tracking still works
        assert tracker.fraction == 1.0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["add_total", "task_done"]),
                  st.integers(min_value=1, max_value=5)),
        max_size=30,
    ))
    def test_property_fractions_monotone_and_end_at_one(self, ops):
        """The module contract: published fractions never move backwards and
        every completed run ends at exactly 1.0."""
        tracker = _tracker()
        seen = [tracker.fraction]
        for op, n in ops:
            getattr(tracker, op)(n)
            seen.append(tracker.fraction)
        tracker.finish("done")
        seen.append(tracker.fraction)
        assert all(later >= earlier for earlier, later in zip(seen, seen[1:]))
        assert all(0.0 <= value <= 1.0 for value in seen)
        assert seen[-1] == 1.0
        validate_status(tracker.status())


class TestAtomicWrite:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "status.json"
        assert atomic_write_json(path, {"x": 1}) is True
        assert json.loads(path.read_text()) == {"x": 1}
        assert not list(tmp_path.glob("*.tmp"))

    def test_failure_returns_false(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        assert atomic_write_json(blocker / "sub" / "x.json", {}) is False


class TestValidateStatus:
    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            validate_status([1, 2, 3])

    def test_rejects_wrong_schema(self):
        document = _tracker().status()
        document["schema"] = LIVE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            validate_status(document)

    def test_rejects_out_of_range_fraction(self):
        document = _tracker().status()
        document["progress"]["fraction"] = 1.5
        with pytest.raises(ValueError, match="fraction"):
            validate_status(document)

    def test_rejects_done_below_one(self):
        tracker = _tracker()
        tracker.finish("done")
        document = tracker.status()
        document["progress"]["fraction"] = 0.5
        with pytest.raises(ValueError, match="done"):
            validate_status(document)

    def test_rejects_bad_workers(self):
        document = _tracker().status()
        document["workers"] = [{"worker_id": "zero", "stalled": "nope"}]
        with pytest.raises(ValueError, match="worker"):
            validate_status(document)


class TestStatusFiles:
    def _write(self, directory, run_id, mtime):
        tracker = _tracker(run_id=run_id, directory=directory)
        tracker.write(force=True)
        os.utime(tracker.path, (mtime, mtime))
        return tracker.path

    def test_find_by_prefix_and_index(self, tmp_path):
        old = self._write(tmp_path, "aaa111", 100)
        new = self._write(tmp_path, "bbb222", 200)
        assert list_status_files(tmp_path) == [old, new]
        assert find_status("-1", tmp_path) == new
        assert find_status("-2", tmp_path) == old
        assert find_status("-3", tmp_path) is None
        assert find_status("aaa", tmp_path) == old
        assert find_status("zzz", tmp_path) is None

    def test_prune_keeps_newest_and_removes_dumps(self, tmp_path):
        victim = self._write(tmp_path, "aaa111", 100)
        victim.with_name("aaa111.stacks.txt").write_text("dump")
        survivor = self._write(tmp_path, "bbb222", 200)
        assert prune_status_files(tmp_path, keep=1) == 2
        assert list_status_files(tmp_path) == [survivor]
        assert not victim.with_name("aaa111.stacks.txt").exists()
        with pytest.raises(ValueError):
            prune_status_files(tmp_path, keep=-1)

    def test_read_status_tolerates_garbage(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{torn write")
        assert read_status(path) is None
        assert read_status(tmp_path / "missing.json") is None

    def test_default_dir_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_LIVE", "0")
        assert default_live_dir() is None
        monkeypatch.setenv("REPRO_LIVE", "off")
        assert default_live_dir() is None
        monkeypatch.delenv("REPRO_LIVE")
        assert default_live_dir() == DEFAULT_LIVE_DIR  # on by default
        monkeypatch.setenv("REPRO_LIVE", "on")
        assert default_live_dir() == DEFAULT_LIVE_DIR
        monkeypatch.setenv("REPRO_LIVE", "/elsewhere/live")
        assert str(default_live_dir()) == "/elsewhere/live"


class TestRendering:
    def test_progress_line_is_one_line(self):
        tracker = _tracker()
        tracker.add_total(4)
        tracker.task_done(1)
        line = progress_line(tracker.status())
        assert "\n" not in line
        assert "1/4" in line and "25.0%" in line

    def test_render_status_flags_stalls(self):
        tracker = _tracker()
        tracker.add_total(2)
        tracker.heartbeat(0, worker_heartbeat(tasks_done=1))
        tracker.record_stall(0)
        text = render_status(tracker.status())
        assert "** STALLED **" in text
        assert "stalls 1" in text
        assert "[" in text and "]" in text  # the bar


class TestBackendIntegration:
    def test_shared_memory_run_publishes_status(self, paper_db, tmp_path,
                                                no_shm_leak):
        import repro

        repro.mine(paper_db, backend="shared_memory", min_support=2,
                   n_workers=2, live=tmp_path)
        [path] = list_status_files(tmp_path)
        document = read_status(path)
        validate_status(document)
        assert document["state"] == "done"
        assert document["progress"]["fraction"] == 1.0
        assert document["workers"]  # heartbeats arrived
        assert all(w["pid"] for w in document["workers"])

    def test_worksteal_run_reports_scheduler_counters(self, paper_db,
                                                      tmp_path):
        import repro

        repro.mine(paper_db, backend="multiprocessing", min_support=2,
                   n_workers=2, schedule="worksteal", live=tmp_path)
        [path] = list_status_files(tmp_path)
        document = read_status(path)
        validate_status(document)
        assert document["state"] == "done"
        assert document["scheduler"] is not None
        assert document["scheduler"]["outstanding"] == 0

    def test_hung_worker_stalls_dumps_and_respawns(self, paper_db, tmp_path,
                                                   no_shm_leak):
        """The acceptance path: a hung worker produces a stall event, a
        traceback dump, and a clean respawn (the timeout fault path still
        owns recovery)."""
        from repro.backends.shared_memory_backend import (
            run_eclat_shared_memory,
        )

        obs = ObsContext(sink=InMemorySink())
        tracker = _tracker(directory=tmp_path, stall_timeout=0.2)
        result = run_eclat_shared_memory(
            paper_db, 2, n_workers=2, obs=obs, task_timeout=1.0,
            live=tracker, _fault={"hang_task": 0, "hang_seconds": 60.0},
        )
        assert len(result.itemsets) > 0
        counters = obs.metrics.counters()
        assert counters["shared_memory.stalls"] >= 1
        assert counters["shared_memory.tasks.retried"] >= 1
        assert counters["shared_memory.workers.respawned"] >= 1
        stall_events = [ev for ev in obs.sink.events if ev.name == "stall"]
        assert stall_events and stall_events[0].args["quiet_seconds"] > 0.2
        assert tracker.stalls >= 1
        document = read_status(tracker.path)
        assert document["stalls"] >= 1
        dump = tracker.stack_dump_path()
        if stall_events[0].args["traceback_dumped"]:
            assert 'File "' in dump.read_text()


class TestCli:
    @pytest.fixture
    def fimi_file(self, tmp_path, paper_db):
        path = tmp_path / "data.dat"
        write_fimi(paper_db, path)
        return str(path)

    def test_mine_progress_renders_stderr_line(self, fimi_file, capsys):
        # REPRO_LIVE=0 (conftest) -> the tracker stays in-memory but the
        # renderer still gets every update.
        assert main(["mine", fimi_file, "-s", "2", "--progress",
                     "--no-ledger"]) == 0
        err = capsys.readouterr().err
        assert "%" in err and "eclat" in err
        assert "done" in err

    def test_mine_live_dir_writes_valid_status(self, fimi_file, tmp_path,
                                               capsys):
        live_dir = tmp_path / "live"
        assert main(["mine", fimi_file, "-s", "2", "-b", "shared_memory",
                     "-w", "2", "--live-dir", str(live_dir),
                     "--no-ledger"]) == 0
        [path] = list_status_files(live_dir)
        validate_status(read_status(path))

    def test_mine_no_live_writes_nothing(self, fimi_file, tmp_path,
                                         monkeypatch, capsys):
        live_dir = tmp_path / "live"
        monkeypatch.setenv("REPRO_LIVE", str(live_dir))
        assert main(["mine", fimi_file, "-s", "2", "--no-live",
                     "--no-ledger"]) == 0
        assert list_status_files(live_dir) == []

    def test_obs_watch_once(self, fimi_file, tmp_path, capsys):
        live_dir = tmp_path / "live"
        main(["mine", fimi_file, "-s", "2", "--live-dir", str(live_dir),
              "--no-ledger"])
        assert main(["obs", "watch", "-1", "--once",
                     "--live-dir", str(live_dir)]) == 0
        out = capsys.readouterr().out
        assert "progress" in out and "[done]" in out

    def test_obs_watch_exits_on_terminal_state(self, fimi_file, tmp_path,
                                               capsys):
        live_dir = tmp_path / "live"
        main(["mine", fimi_file, "-s", "2", "--live-dir", str(live_dir),
              "--no-ledger"])
        # No --once: the loop still returns because the run is finished.
        assert main(["obs", "watch", "-1", "--live-dir", str(live_dir)]) == 0

    def test_obs_watch_unknown_run_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "watch", "zzz", "--live-dir", str(tmp_path)])

    def test_obs_gc_caps_both_stores(self, fimi_file, tmp_path, capsys):
        live_dir, runs_dir = tmp_path / "live", tmp_path / "runs"
        for _ in range(3):
            main(["mine", fimi_file, "-s", "2", "--live-dir", str(live_dir),
                  "--ledger-dir", str(runs_dir)])
        capsys.readouterr()
        assert main(["obs", "gc", "--keep", "1", "--live-keep", "1",
                     "--ledger-dir", str(runs_dir),
                     "--live-dir", str(live_dir)]) == 0
        out = capsys.readouterr().out
        assert "dropped 2 record(s)" in out
        assert len(Ledger(runs_dir).records()) == 1
        assert len(list_status_files(live_dir)) == 1

    def test_obs_tail_follow_flag_parses(self):
        args = build_parser().parse_args(["obs", "tail", "--follow"])
        assert args.follow is True and args.poll == 0.5
