"""Property-based tests for schedule and simulator invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.machine import BLACKLIGHT
from repro.openmp import ScheduleSpec, simulate_parallel_for
from repro.openmp.events import check_trace
from repro.openmp.schedule import chunk_boundaries, static_assignment

n_iter = st.integers(min_value=0, max_value=200)
n_threads = st.integers(min_value=1, max_value=64)
schedules = st.one_of(
    st.just(ScheduleSpec("static")),
    st.builds(ScheduleSpec, st.just("static"), st.integers(1, 7)),
    st.builds(ScheduleSpec, st.just("dynamic"), st.integers(1, 7)),
    st.builds(ScheduleSpec, st.just("guided"), st.integers(1, 4)),
)


@settings(max_examples=80, deadline=None)
@given(n=n_iter, t=n_threads, chunk=st.one_of(st.none(), st.integers(1, 9)))
def test_static_assignment_is_total_and_balanced(n, t, chunk):
    asg = static_assignment(n, t, chunk)
    assert asg.size == n
    if n:
        assert asg.min() >= 0 and asg.max() < t
        counts = np.bincount(asg, minlength=t)
        if chunk is None:
            assert counts.max() - counts.min() <= 1
        else:
            assert counts.max() - counts.min() <= chunk


@settings(max_examples=80, deadline=None)
@given(n=n_iter, t=n_threads, spec=schedules)
def test_chunks_partition_iteration_space(n, t, spec):
    bounds = chunk_boundaries(n, t, spec)
    covered = []
    for start, end in bounds:
        covered.extend(range(start, end))
    assert covered == list(range(n))


@settings(max_examples=60, deadline=None)
@given(
    durations=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        max_size=60,
    ),
    t=n_threads,
    spec=schedules,
)
def test_simulator_lower_bounds(durations, t, spec):
    d = np.asarray(durations)
    out = simulate_parallel_for(d, t, spec, machine=BLACKLIGHT)
    if d.size == 0:
        assert out.makespan == 0.0
        return
    # Makespan can never beat the critical path or the mean bound.
    assert out.makespan >= d.max() - 1e-12
    assert out.makespan >= d.sum() / t - 1e-12
    # Every iteration ran on a real thread.
    assert out.iteration_thread.size == d.size
    assert out.iteration_thread.max() < t
    # Total busy time >= total work (overheads only add).
    assert out.total_busy >= d.sum() - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    durations=st.lists(
        st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=40,
    ),
    t=n_threads,
    spec=schedules,
)
def test_simulator_trace_is_consistent(durations, t, spec):
    d = np.asarray(durations)
    out = simulate_parallel_for(d, t, spec, machine=BLACKLIGHT, collect_events=True)
    check_trace(out.events, d.size)


@settings(max_examples=40, deadline=None)
@given(
    duration=st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
    n=st.integers(min_value=1, max_value=60),
)
def test_more_threads_never_hurt_static_uniform(duration, n):
    """With uniform iterations, widening the team never slows static.

    (The guarantee does NOT hold for heterogeneous durations: contiguous
    blocks can shift a heavy iteration into a loaded block as the team
    grows — hypothesis found such a counterexample, which is a real
    property of OpenMP static scheduling, so the test pins uniform costs.)
    """
    d = np.full(n, duration)
    spans = [
        simulate_parallel_for(d, t, ScheduleSpec("static")).makespan
        for t in (1, 2, 4, 8)
    ]
    for narrow, wide in zip(spans, spans[1:]):
        assert wide <= narrow + 1e-12
