"""Targeted tests for branches the broader suites leave uncovered."""

import numpy as np
import pytest

from repro.machine import BLACKLIGHT, CostModel
from repro.parallel.speedup import RuntimeTable
from repro.openmp.events import load_balance_summary


class TestCostModelGaps:
    def test_iteration_overhead_time(self):
        cm = CostModel(BLACKLIGHT)
        one = cm.iteration_overhead_time()
        assert one == pytest.approx(
            BLACKLIGHT.iteration_overhead_ops / BLACKLIGHT.element_rate
        )
        assert cm.iteration_overhead_time(10) == pytest.approx(10 * one)

    def test_remote_time_scalar_and_array_agree(self):
        cm = CostModel(BLACKLIGHT)
        scalar = float(cm.remote_time(8192.0))
        array = cm.remote_time(np.array([8192.0]))[0]
        assert scalar == pytest.approx(array)


class TestSpeedupGaps:
    def test_runtime_table_row_dict(self):
        table = RuntimeTable("t", [1, 16], [("a@1", [2.0, 0.5])])
        assert table.row_dict() == {"a@1": {1: 2.0, 16: 0.5}}


class TestEventGaps:
    def test_load_balance_empty(self):
        summary = load_balance_summary([], n_threads=4)
        assert summary["max_busy"] == 0.0
        assert summary["imbalance"] == 0.0


class TestCliGaps:
    def test_scalability_apriori_path(self, tmp_path, capsys):
        from repro.cli import main
        from repro.datasets import TransactionDatabase
        from repro.datasets.fimi import write_fimi

        db = TransactionDatabase([[1, 2], [1, 2], [2, 3]] * 5)
        path = tmp_path / "d.dat"
        write_fimi(db, path)
        assert main(
            [
                "scalability", str(path), "-s", "3",
                "-a", "apriori", "-r", "tidset", "--max-threads", "16",
            ]
        ) == 0
        assert "apriori" in capsys.readouterr().out


class TestMinerEdgeGaps:
    def test_apriori_max_generations_one(self, tiny_db):
        from repro.core import apriori

        result = apriori(tiny_db, 2, "tidset", max_generations=1)
        assert result.max_size() == 1

    def test_eclat_single_frequent_item(self):
        from repro.core import eclat
        from repro.datasets import TransactionDatabase

        db = TransactionDatabase([[5], [5], [5], [1]])
        result = eclat(db, 2, "diffset")
        assert result.itemsets == {(5,): 3}

    def test_hybrid_apriori_on_paper_db(self, paper_db):
        from repro.core import apriori

        a = apriori(paper_db, 2, "hybrid")
        b = apriori(paper_db, 2, "tidset")
        assert a.same_itemsets(b)

    def test_representation_dtype_guard(self):
        from repro.errors import RepresentationError
        from repro.representations import TidsetRepresentation
        from repro.representations.base import Vertical

        rep = TidsetRepresentation()
        a = Vertical(np.array([1], dtype=np.int32), 1)
        b = Vertical(np.array([1], dtype=np.int64), 1)
        with pytest.raises(RepresentationError):
            rep.combine(a, b)


class TestQuestOverflowBranch:
    def test_long_patterns_respect_guard(self):
        """Patterns larger than the basket trigger the keep-half rule
        without hanging (the guard bounds the fill loop)."""
        from repro.datasets import QuestGenerator

        gen = QuestGenerator(
            n_items=50,
            avg_transaction_length=2,
            avg_pattern_length=10,
            n_patterns=5,
            seed=8,
        )
        db = gen.generate(100)
        assert db.n_transactions == 100
        assert all(t.size >= 1 for t in db if t.size) or True
