"""Unit tests for the Apriori miner."""

import pytest

from repro.core import apriori, run_apriori
from repro.core.apriori import AprioriRun
from repro.representations.base import OpCost

EXPECTED_TINY = {
    (1,): 4, (2,): 4, (3,): 4,
    (1, 2): 3, (1, 3): 3, (2, 3): 3,
    (1, 2, 3): 2,
}


@pytest.mark.parametrize("rep", ["tidset", "bitvector", "diffset"])
class TestCorrectness:
    def test_tiny_db(self, tiny_db, rep):
        result = apriori(tiny_db, 2, rep)
        assert result.itemsets == EXPECTED_TINY

    def test_threshold_excludes(self, tiny_db, rep):
        result = apriori(tiny_db, 3, rep)
        assert (1, 2, 3) not in result
        assert (1, 2) in result

    def test_relative_threshold(self, tiny_db, rep):
        assert apriori(tiny_db, 0.4, rep).itemsets == EXPECTED_TINY

    def test_figure2_example(self, paper_db, rep):
        result = apriori(paper_db, 3, rep)
        assert result.support((0, 2, 4)) == 3  # ACE
        assert (3,) not in result  # D infrequent
        assert (5,) not in result  # F infrequent

    def test_no_frequent_items(self, tiny_db, rep):
        # Threshold 5 exceeds every item's support (4) -> empty result.
        assert len(apriori(tiny_db, 5, rep)) == 0

    def test_empty_db(self, empty_db, rep):
        assert len(apriori(empty_db, 1, rep)) == 0

    def test_single_item_db(self, single_item_db, rep):
        result = apriori(single_item_db, 2, rep)
        assert result.itemsets == {(0,): 3}

    def test_matches_oracle_supports(self, small_dense_db, rep):
        result = apriori(small_dense_db, 0.5, rep)
        assert len(result) > 0
        for items in list(result)[:20]:
            assert result.support(items) == small_dense_db.support_of(items)


class TestRunApriori:
    def test_run_returns_metadata(self, tiny_db):
        run = run_apriori(tiny_db, 2, "tidset")
        assert isinstance(run, AprioriRun)
        assert run.n_generations == 3
        assert isinstance(run.total_cost, OpCost)
        assert run.total_cost.cpu_ops > 0

    def test_level_table_contents(self, tiny_db):
        run = run_apriori(tiny_db, 2, "tidset")
        assert run.table[1].n_frequent == 3
        assert run.table[2].n_frequent == 3
        assert run.table[3].n_frequent == 1
        assert run.table[3].itemsets == [(1, 2, 3)]

    def test_verticals_released(self, tiny_db):
        run = run_apriori(tiny_db, 2, "tidset")
        for level in run.table.levels():
            assert level.verticals is None

    def test_max_generations_cap(self, tiny_db):
        run = run_apriori(tiny_db, 2, "tidset", max_generations=2)
        assert run.result.max_size() == 2

    def test_prune_toggle_same_result(self, small_dense_db):
        with_prune = apriori(small_dense_db, 0.4, "tidset", prune=True)
        without = apriori(small_dense_db, 0.4, "tidset", prune=False)
        assert with_prune.same_itemsets(without)

    def test_result_labels(self, tiny_db):
        result = apriori(tiny_db, 2, "diffset")
        assert result.algorithm == "apriori"
        assert result.representation == "diffset"
        assert result.dataset == "tiny"

    def test_sink_receives_all_generations(self, tiny_db):
        events = []

        class Sink:
            def on_singletons(self, level, build_cost):
                events.append(("singletons", level.generation))

            def on_count_task(self, generation, *args):
                events.append(("count", generation))

            def on_generation_done(self, level, candidate_gen_ops):
                events.append(("done", level.generation))

        run_apriori(tiny_db, 2, "tidset", sink=Sink())
        assert ("singletons", 1) in events
        assert ("done", 3) in events
        counts = [e for e in events if e[0] == "count"]
        assert len(counts) == 3 + 1  # three pairs in gen2, one triple in gen3
