"""Regression tests for the vectorized-path bug sweep.

Three bugs are pinned here so they cannot come back:

* ``_mine_class_vectorized`` used to recurse once per equivalence-class
  level — deep frequent chains grew the interpreter stack linearly.  The
  walk is now an explicit heap stack, so the Python frame depth must stay
  **constant** in the chain length.
* ``_record_batch`` used to charge the Eclat broadcast kernel ``2 * n``
  row-reads per batch, but the kernel reads the left operand once — the
  honest figure is ``(n + 1)`` rows.  The serial miners genuinely re-read
  the left row per combine, so the two backends' read counters differ by
  exactly one left-row read per *extra* intersection in a batch.
* ``pack_database`` used to materialize a dense ``n_items x
  n_transactions`` byte mask; it now packs in 64-row blocks, so peak
  transient memory is bounded by the block, not the database.
"""

import inspect
import tracemalloc

import numpy as np
import pytest

import repro
from repro.datasets.transaction_db import TransactionDatabase
from repro.engine import vectorized as vec_mod
from repro.obs import ObsContext
from repro.representations import bitvector_numpy as bv
from repro.representations.bitvector_numpy import (
    PACK_BLOCK_ROWS,
    bytes_for,
    pack_database,
)


def _dense_db(n_items: int, n_rows: int = 16) -> TransactionDatabase:
    """Every row holds every item: one maximal chain of length n_items."""
    return TransactionDatabase(
        [list(range(n_items)) for _ in range(n_rows)],
        name=f"dense{n_items}",
    )


class TestIterativeClassWalk:
    def _max_frame_depth(self, db, min_support) -> int:
        """Mine with vectorized Eclat, recording the deepest Python stack
        observed inside the class-join kernel."""
        depths = []
        original = vec_mod.intersect_block

        def probed(left, rights):
            depths.append(len(inspect.stack()))
            return original(left, rights)

        vec_mod.intersect_block = probed
        try:
            repro.mine(
                db, algorithm="eclat", backend="vectorized",
                min_support=min_support,
            )
        finally:
            vec_mod.intersect_block = original
        assert depths, "kernel never ran"
        return max(depths)

    def test_frame_depth_constant_in_chain_length(self):
        """A 12-item chain must not use a single Python frame more than a
        6-item chain — the walk is iterative, not recursive."""
        shallow = self._max_frame_depth(_dense_db(6), min_support=16)
        deep = self._max_frame_depth(_dense_db(12), min_support=16)
        assert deep == shallow

    def test_deep_chain_is_exact(self):
        """All 2**12 - 1 itemsets of the 12-item chain come back."""
        db = _dense_db(12)
        result = repro.mine(
            db, algorithm="eclat", backend="vectorized", min_support=16,
        )
        assert len(result.itemsets) == 2**12 - 1
        assert all(s == 16 for s in result.itemsets.values())


class TestReadByteAccounting:
    @pytest.fixture(params=["figure2", "small-dense"])
    def db(self, request, paper_db, small_dense_db):
        return paper_db if request.param == "figure2" else small_dense_db

    def test_eclat_broadcast_reads_left_row_once(self, db):
        """serial_reads - vec_reads == B * (intersections - batches):
        the serial miner re-reads the left row per combine; the broadcast
        kernel reads it once per batch."""
        serial, vec = ObsContext(), ObsContext()
        r1 = repro.mine(
            db, algorithm="eclat", backend="serial",
            representation="bitvector_numpy", min_support=3, obs=serial,
        )
        r2 = repro.mine(
            db, algorithm="eclat", backend="vectorized", min_support=3,
            obs=vec,
        )
        assert r1.itemsets == r2.itemsets
        s, v = serial.metrics.counters(), vec.metrics.counters()
        assert s["mine.intersections"] == v["mine.intersections"]
        assert s["mine.bytes_written"] == v["mine.bytes_written"]
        B = bytes_for(db.n_transactions)
        saved = B * (v["mine.intersections"] - v["eclat.vectorized.batches"])
        assert s["mine.intersection_read_bytes"] - saved == (
            v["mine.intersection_read_bytes"]
        )

    def test_apriori_pairwise_reads_agree_with_serial(self, db):
        """The pairwise kernel has no shared operand — serial and vectorized
        Apriori must report identical read/write/intersection counts."""
        serial, vec = ObsContext(), ObsContext()
        r1 = repro.mine(
            db, algorithm="apriori", backend="serial",
            representation="bitvector_numpy", min_support=3, obs=serial,
        )
        r2 = repro.mine(
            db, algorithm="apriori", backend="vectorized", min_support=3,
            obs=vec,
        )
        assert r1.itemsets == r2.itemsets
        s, v = serial.metrics.counters(), vec.metrics.counters()
        for name in (
            "mine.intersections",
            "mine.intersection_read_bytes",
            "mine.bytes_written",
        ):
            assert s[name] == v[name], name


class TestBlockedPacking:
    @pytest.mark.parametrize(
        "n_items",
        [1, PACK_BLOCK_ROWS - 1, PACK_BLOCK_ROWS, PACK_BLOCK_ROWS + 1, 130],
    )
    def test_matches_naive_dense_pack(self, n_items):
        """Block packing is bit-identical to the one-shot dense pack for
        every alignment of n_items against the block size."""
        rng = np.random.default_rng(n_items)
        n_rows = 77
        transactions = [
            sorted(rng.choice(n_items, size=rng.integers(1, n_items + 1),
                              replace=False).tolist())
            for _ in range(n_rows)
        ]
        db = TransactionDatabase(transactions, name="rand")
        mask = np.zeros((db.n_items, n_rows), dtype=np.uint8)
        for item, tids in enumerate(db.tidlists()):
            mask[item, tids] = 1
        naive = np.packbits(mask, axis=1, bitorder="little")
        np.testing.assert_array_equal(pack_database(db), naive)

    def test_peak_memory_is_block_bounded(self):
        """Packing 256 items x 8192 transactions must never allocate the
        2 MiB dense mask; the transient is one 64-row block (512 KiB)."""
        n_items, n_rows = 256, 8192
        transactions = [[i % n_items, (i * 7 + 3) % n_items] for i in range(n_rows)]
        db = TransactionDatabase(transactions, name="wide")
        dense_mask_bytes = n_items * n_rows  # what the old code allocated
        pack_database(db)  # warm imports/caches outside the measurement
        tracemalloc.start()
        try:
            matrix = pack_database(db)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert matrix.shape == (n_items, bytes_for(n_rows))
        # Generous bound: tidlists + output + one block is well under the
        # dense mask alone.
        assert peak < dense_mask_bytes * 0.75

    def test_block_constant_sane(self):
        assert PACK_BLOCK_ROWS >= 1
        assert bv.PACK_BLOCK_ROWS == PACK_BLOCK_ROWS
