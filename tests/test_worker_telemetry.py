"""Cross-process tracing end to end: worker lanes, load balance, durability.

The acceptance bar for the telemetry tentpole: a shared-memory mine with a
Chrome trace sink produces ONE valid JSON trace with one process lane per
worker OS pid, worker task spans remapped onto the parent timeline, and —
when a worker is killed mid-run — a still-valid trace holding whatever
partial telemetry arrived before the abort.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.backends.shared_memory_backend import run_eclat_shared_memory
from repro.core import brute_force
from repro.errors import ParallelExecutionError
from repro.obs import ChromeTraceSink, InMemorySink, ObsContext

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

WORKERS = 2


def _load_trace(path) -> list[dict]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)  # must be one valid JSON document
    assert isinstance(document["traceEvents"], list)
    return document["traceEvents"]


def _chrome_mine(db, tmp_path, backend: str, **options):
    path = tmp_path / "trace.json"
    obs = ObsContext(sink=ChromeTraceSink(path))
    try:
        result = repro.mine(
            db, algorithm="eclat", backend=backend, min_support=2,
            n_workers=WORKERS, obs=obs, **options,
        )
    finally:
        obs.close()
    return result, obs, _load_trace(path)


class TestSharedMemoryWorkerLanes:
    @pytest.fixture
    def traced(self, paper_db, tmp_path):
        return _chrome_mine(paper_db, tmp_path, "shared_memory")

    def test_one_lane_per_worker_process(self, traced):
        """Duration events land on pid 0 (parent) plus one pid per worker."""
        _result, _obs, events = traced
        lanes = {e["pid"] for e in events if e["ph"] == "X"}
        worker_lanes = lanes - {0}
        assert len(worker_lanes) == WORKERS
        named = {
            e["pid"]: e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert named[0].startswith("parent")
        for pid in worker_lanes:
            assert f"pid {pid}" in named[pid]

    def test_worker_spans_cover_attach_and_tasks(self, traced):
        _result, _obs, events = traced
        worker_events = [e for e in events if e["ph"] == "X" and e["pid"] != 0]
        names = {e["name"] for e in worker_events}
        assert "worker.attach" in names
        assert "task.eclat" in names
        # Dispatch spans mirror each task on the parent lane.
        dispatch = [
            e for e in events
            if e["pid"] == 0 and e.get("cat") == "dispatch"
        ]
        task_spans = [e for e in worker_events if e["name"] == "task.eclat"]
        assert len(dispatch) == len(task_spans)

    def test_worker_timestamps_on_parent_timeline(self, traced):
        """Remapped worker spans nest inside the parent's mine span."""
        _result, _obs, events = traced
        [mine_span] = [e for e in events if e["name"] == "shared_memory.mine"]
        for e in events:
            if e["ph"] == "X" and e["pid"] != 0 and e["name"] == "task.eclat":
                assert e["ts"] >= mine_span["ts"]
                assert e["ts"] + e["dur"] <= mine_span["ts"] + mine_span["dur"] + 1

    def test_result_unchanged_by_tracing(self, traced, paper_db):
        result, _obs, _events = traced
        assert result.itemsets == brute_force(paper_db, 2).itemsets


class TestMultiprocessingWorkerLanes:
    def test_one_lane_per_worker_process(self, paper_db, tmp_path):
        _result, obs, events = _chrome_mine(
            paper_db, tmp_path, "multiprocessing",
        )
        worker_lanes = {e["pid"] for e in events if e["ph"] == "X"} - {0}
        assert 1 <= len(worker_lanes) <= WORKERS
        names = {e["name"] for e in events if e["ph"] == "X" and e["pid"] != 0}
        assert "task.eclat" in names
        counters = obs.metrics.counters()
        busy = [
            v for k, v in counters.items()
            if k.startswith("multiprocessing.worker") and k.endswith(".busy_s")
        ]
        assert busy and all(v > 0 for v in busy)
        assert counters["obs.snapshots.merged"] == counters["eclat.toplevel.tasks"]


class TestLoadBalanceSummary:
    def test_gauges_from_merged_worker_counters(self, paper_db):
        obs = ObsContext(sink=InMemorySink())
        run_eclat_shared_memory(paper_db, 2, n_workers=2, obs=obs)
        gauges = obs.metrics.gauges()
        counters = obs.metrics.counters()
        busy = [
            counters[f"shared_memory.worker{w}.busy_s"] for w in range(2)
        ]
        assert gauges["shared_memory.load_balance.max_busy"] == max(busy)
        assert gauges["shared_memory.load_balance.min_busy"] == min(busy)
        assert gauges["shared_memory.load_balance.mean_busy"] == pytest.approx(
            sum(busy) / 2
        )
        assert gauges["shared_memory.load_balance.imbalance"] >= 0
        assert 0 <= gauges["shared_memory.load_balance.idle_fraction"] <= 1
        # Workers also report time spent waiting on the task queue.
        assert any(
            k.endswith(".wait_s") and k.startswith("shared_memory.worker")
            for k in counters
        )

    def test_no_obs_records_nothing(self, paper_db):
        result = run_eclat_shared_memory(paper_db, 2, n_workers=2)
        assert result.itemsets  # and no crash without an ObsContext


class TestTraceDurabilityOnAbort:
    def test_killed_worker_leaves_valid_trace(self, paper_db, tmp_path):
        """Retry budget 0 + a killed worker aborts the run; the trace file
        must still be one valid JSON document containing the mine span."""
        path = tmp_path / "abort_trace.json"
        obs = ObsContext(sink=ChromeTraceSink(path))
        with pytest.raises(ParallelExecutionError):
            run_eclat_shared_memory(
                paper_db, 2, n_workers=2, max_task_retries=0,
                obs=obs, _fault={"kill_task": 0},
            )
        obs.close()
        events = _load_trace(path)
        assert any(e["name"] == "shared_memory.mine" for e in events)

    def test_partial_worker_telemetry_survives_abort(self, paper_db, tmp_path):
        """Tasks completed before the fault keep their worker-lane spans."""
        path = tmp_path / "partial_trace.json"
        obs = ObsContext(sink=ChromeTraceSink(path))
        with pytest.raises(ParallelExecutionError):
            run_eclat_shared_memory(
                # Kill on a later task so earlier ones complete and merge.
                paper_db, 2, n_workers=2, max_task_retries=0,
                obs=obs, _fault={"kill_task": 2},
            )
        obs.close()
        events = _load_trace(path)
        worker_tasks = [
            e for e in events
            if e["ph"] == "X" and e["pid"] != 0 and e["name"] == "task.eclat"
        ]
        assert worker_tasks  # partial telemetry, not a corrupted/empty trace

    def test_unclosed_sink_never_leaves_truncated_file(self, tmp_path):
        """close() writes atomically: before it, no file; after, valid JSON.
        A crash mid-write can leave a stale .tmp but never a half-written
        trace at the target path."""
        path = tmp_path / "atomic.json"
        sink = ChromeTraceSink(path)
        with sink.span("work"):
            pass
        assert not path.exists()
        sink.close()
        json.loads(path.read_text())
        assert not path.with_name(path.name + ".tmp").exists()
