"""Unit tests for the NumPy-packed bitvector kernels."""

import numpy as np
import pytest

from repro.representations import get_representation
from repro.representations.bitvector import popcount, tids_to_bits
from repro.representations.bitvector_numpy import (
    POPCOUNT8,
    bytes_for,
    intersect_block,
    intersect_pairs,
    pack_database,
    pack_tids,
    popcount_bytes,
    popcount_rows,
    unpack_tids,
)


class TestPackingKernels:
    def test_popcount_table_is_exact(self):
        assert POPCOUNT8.shape == (256,)
        for byte in (0, 1, 2, 3, 0x0F, 0x80, 0xAA, 0xFF):
            assert POPCOUNT8[byte] == bin(byte).count("1")

    def test_bytes_for(self):
        assert bytes_for(0) == 0
        assert bytes_for(1) == 1
        assert bytes_for(8) == 1
        assert bytes_for(9) == 2

    @pytest.mark.parametrize("n", [1, 7, 8, 9, 64, 100])
    def test_pack_unpack_roundtrip(self, n):
        rng = np.random.default_rng(n)
        tids = np.sort(rng.choice(n, size=max(1, n // 3), replace=False))
        tids = tids.astype(np.int32)
        packed = pack_tids(tids, n)
        assert packed.dtype == np.uint8
        assert packed.size == bytes_for(n)
        np.testing.assert_array_equal(unpack_tids(packed, n), tids)
        assert popcount_bytes(packed) == tids.size

    def test_popcount_matches_word_bitvector(self):
        tids = np.array([0, 3, 17, 63, 64, 100], dtype=np.int32)
        packed = pack_tids(tids, 128)
        words = tids_to_bits(tids, 128)
        assert popcount_bytes(packed) == popcount(words) == 6

    def test_empty_mask(self):
        empty = np.empty(0, dtype=np.uint8)
        assert popcount_bytes(empty) == 0
        assert unpack_tids(empty, 0).size == 0

    def test_pack_database_rows_are_item_tidlists(self, tiny_db):
        matrix = pack_database(tiny_db)
        assert matrix.shape[0] == tiny_db.n_items
        for item, tids in enumerate(tiny_db.tidlists()):
            np.testing.assert_array_equal(
                unpack_tids(matrix[item], tiny_db.n_transactions), tids
            )

    def test_popcount_rows(self):
        matrix = np.array([[0xFF, 0x01], [0x00, 0x00], [0x0F, 0xF0]], np.uint8)
        np.testing.assert_array_equal(popcount_rows(matrix), [9, 0, 8])


class TestBlockKernels:
    def test_intersect_block_matches_pairwise(self, small_dense_db):
        matrix = pack_database(small_dense_db)
        children, supports = intersect_block(matrix[0], matrix[1:])
        for j in range(1, matrix.shape[0]):
            expected = matrix[0] & matrix[j]
            np.testing.assert_array_equal(children[j - 1], expected)
            assert supports[j - 1] == popcount_bytes(expected)

    def test_intersect_pairs_matches_pairwise(self, small_dense_db):
        matrix = pack_database(small_dense_db)
        lefts = matrix[:-1]
        rights = matrix[1:]
        children, supports = intersect_pairs(lefts, rights)
        assert children.shape == lefts.shape
        np.testing.assert_array_equal(supports, popcount_rows(lefts & rights))


class TestRepresentationContract:
    def test_registered(self):
        rep = get_representation("bitvector_numpy")
        assert rep.name == "bitvector_numpy"

    def test_combine_matches_tidset(self, paper_db):
        packed = get_representation("bitvector_numpy")
        tidset = get_representation("tidset")
        p_single = packed.build_singletons(paper_db)
        t_single = tidset.build_singletons(paper_db)
        for i in range(paper_db.n_items):
            for j in range(i + 1, paper_db.n_items):
                pv, p_cost = packed.combine(p_single[i], p_single[j])
                tv, _ = tidset.combine(t_single[i], t_single[j])
                assert pv.support == tv.support
                np.testing.assert_array_equal(
                    unpack_tids(pv.payload, paper_db.n_transactions), tv.payload
                )
                assert p_cost.cpu_ops > 0

    def test_min_support_skips_payloads(self, tiny_db):
        rep = get_representation("bitvector_numpy")
        singletons = rep.build_singletons(tiny_db, min_support=100)
        assert all(v.payload.size == 0 for v in singletons)
        assert any(v.support > 0 for v in singletons)

    def test_payload_bytes(self, tiny_db):
        rep = get_representation("bitvector_numpy")
        (first, *_rest) = rep.build_singletons(tiny_db)
        assert rep.payload_bytes(first) == bytes_for(tiny_db.n_transactions)
