"""The regression gate: comparison semantics and the obs CLI family."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs.compare import (
    MetricDelta,
    compare_records,
    load_record,
    render_comparison,
)
from repro.obs.ledger import Ledger, RunRecord


def _bench_kernels(block_speedup: float) -> dict:
    return {
        "dataset": "chess", "n_transactions": 3196, "n_items": 75,
        "n_pairs": 2775, "smoke": False,
        "seconds": {"python_loop": 0.075, "numpy_block": 0.075 / block_speedup},
        "speedup_over_python": {"numpy_block": block_speedup},
    }


def _ledger_record(wall: float, **dataset_overrides) -> dict:
    dataset = {"name": "tiny", "n_transactions": 5, "n_items": 3,
               "sha256": "abc123def456"}
    dataset.update(dataset_overrides)
    return RunRecord(
        kind="mine",
        config={"algorithm": "eclat", "backend": "serial", "min_support": 2},
        dataset=dataset,
        wall_seconds=wall, cpu_seconds=wall * 0.9, max_rss_bytes=1e6,
    ).to_json_dict()


class TestMetricDelta:
    def test_lower_is_better_direction(self):
        worse = MetricDelta("wall", "lower", baseline=1.0, current=1.3)
        assert worse.regressed(0.25)
        assert not worse.regressed(0.35)
        better = MetricDelta("wall", "lower", baseline=1.0, current=0.5)
        assert not better.regressed(0.25)

    def test_higher_is_better_direction(self):
        worse = MetricDelta("speedup", "higher", baseline=10.0, current=7.0)
        assert worse.regressed(0.25)
        ok = MetricDelta("speedup", "higher", baseline=10.0, current=8.0)
        assert not ok.regressed(0.25)

    def test_zero_baseline(self):
        assert MetricDelta("x", "lower", 0.0, 1.0).ratio == float("inf")
        assert MetricDelta("x", "lower", 0.0, 0.0).ratio == 1.0


class TestCompareRecords:
    def test_ledger_records_compare_on_cost(self):
        comparison = compare_records(_ledger_record(1.0), _ledger_record(1.1))
        names = {d.name for d in comparison.deltas}
        assert names == {"wall_seconds", "cpu_seconds", "max_rss_bytes"}
        assert comparison.regressions(0.25) == []
        assert comparison.exit_code(0.25) == 0

    def test_synthetic_30pct_slowdown_fails_gate(self):
        comparison = compare_records(_ledger_record(1.0), _ledger_record(1.3))
        regressed = comparison.regressions(0.25)
        assert {d.name for d in regressed} == {"wall_seconds", "cpu_seconds"}
        assert comparison.exit_code(0.25) == 1

    def test_bench_kernels_shape_and_ratios_only(self):
        comparison = compare_records(
            _bench_kernels(12.0), _bench_kernels(6.0), ratios_only=True,
        )
        [delta] = comparison.deltas
        assert delta.name == "speedup_over_python.numpy_block"
        assert delta.direction == "higher"
        assert comparison.exit_code(0.25) == 1

    def test_different_dataset_is_incomparable(self):
        comparison = compare_records(
            _ledger_record(1.0), _ledger_record(2.0, sha256="fff000fff000"),
        )
        assert not comparison.comparable
        assert "sha256" in comparison.reason
        assert comparison.exit_code(0.25) == 0          # skip by default
        assert comparison.exit_code(0.25, strict=True) == 2

    def test_bench_serve_shape_and_ratio_flags(self):
        def record(speedup: float, rps: float) -> dict:
            return {
                "dataset": "T10I4",
                "min_support": 0.02,
                "smoke": False,
                "requests_per_second": {"cold": rps, "cache_hit": rps * 30},
                "latency_p50_seconds": {"cold": 0.09, "cache_hit": 0.003},
                "latency_p99_seconds": {"cold": 0.10, "cache_hit": 0.02},
                "speedup_vs_cold": {"cache_hit": speedup},
            }

        comparison = compare_records(record(30.0, 10.0), record(28.0, 9.5))
        names = {d.name for d in comparison.deltas}
        assert "requests_per_second.cold" in names
        assert "latency_p50_seconds.cache_hit" in names
        assert "speedup_vs_cold.cache_hit" in names
        assert comparison.exit_code(0.25) == 0
        # Same machine, halved throughput: the full comparison catches it.
        assert compare_records(
            record(30.0, 10.0), record(30.0, 5.0)
        ).exit_code(0.25) == 1

        # Cross-machine mode: throughput is higher-is-better but machine
        # bound, so ratios_only keeps ONLY the speedup ratios — a 2x
        # slower machine must not fail the gate.
        ratios = compare_records(
            record(30.0, 10.0), record(28.0, 5.0), ratios_only=True,
        )
        assert [d.name for d in ratios.deltas] == ["speedup_vs_cold.cache_hit"]
        assert ratios.exit_code(0.25) == 0

        # A genuine serve regression (cache hits barely faster than cold)
        # does fail it.
        regressed = compare_records(
            record(30.0, 10.0), record(2.0, 10.0), ratios_only=True,
        )
        assert regressed.exit_code(0.25) == 1

    def test_serve_workload_mismatch_is_incomparable(self):
        base = {"dataset": "T10I4", "min_support": 0.02,
                "speedup_vs_cold": {"cache_hit": 30.0}}
        other = {"dataset": "T10I4", "min_support": 0.05,
                 "speedup_vs_cold": {"cache_hit": 30.0}}
        comparison = compare_records(base, other)
        assert not comparison.comparable
        assert "min_support" in comparison.reason

    def test_metric_restriction(self):
        comparison = compare_records(
            _ledger_record(1.0), _ledger_record(2.0),
            metrics=["wall_seconds"],
        )
        assert [d.name for d in comparison.deltas] == ["wall_seconds"]

    def test_render_mentions_failures(self):
        comparison = compare_records(_ledger_record(1.0), _ledger_record(1.5))
        text = render_comparison(comparison, 0.25)
        assert "FAIL" in text and "wall_seconds" in text


class TestLoadRecord:
    def test_from_file(self, tmp_path):
        path = tmp_path / "record.json"
        path.write_text(json.dumps(_ledger_record(1.0)))
        assert load_record(path)["wall_seconds"] == 1.0

    def test_from_ledger_token(self, tmp_path):
        ledger = Ledger(tmp_path)
        written = ledger.append(RunRecord.from_json_dict(_ledger_record(1.0)))
        assert load_record("-1", ledger)["run_id"] == written.run_id
        assert load_record(written.run_id[:6], ledger)["run_id"] == written.run_id

    def test_unknown_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_record("no-such-thing", Ledger(tmp_path))


class TestObsCli:
    """The acceptance criterion: ``repro obs compare`` exits nonzero on a
    synthetic >25% slowdown pair, zero when within threshold."""

    @pytest.fixture
    def pair(self, tmp_path):
        base = tmp_path / "base.json"
        slow = tmp_path / "slow.json"
        base.write_text(json.dumps(_ledger_record(1.0)))
        slow.write_text(json.dumps(_ledger_record(1.4)))  # 40% slower
        return base, slow

    def test_compare_exits_nonzero_past_threshold(self, pair, capsys):
        base, slow = pair
        assert main(["obs", "compare", str(base), str(slow)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_passes_within_threshold(self, pair, capsys):
        base, slow = pair
        assert main(
            ["obs", "compare", str(base), str(slow), "--threshold", "0.5"]
        ) == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_missing_record_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["obs", "compare", "nope.json", "also-nope.json",
                  "--ledger-dir", str(tmp_path)])

    def test_tail_and_report(self, tmp_path, capsys):
        ledger = Ledger(tmp_path)
        record = ledger.append(RunRecord.from_json_dict(_ledger_record(1.0)))
        assert main(["obs", "tail", "--ledger-dir", str(tmp_path)]) == 0
        assert record.run_id in capsys.readouterr().out
        assert main(
            ["obs", "report", "-1", "--ledger-dir", str(tmp_path)]
        ) == 0
        dumped = json.loads(capsys.readouterr().out)
        assert dumped["run_id"] == record.run_id

    def test_tail_empty_ledger(self, tmp_path, capsys):
        assert main(["obs", "tail", "--ledger-dir", str(tmp_path)]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_mine_ledger_dir_flag_records(self, tmp_path, capsys):
        fimi = tmp_path / "data.fimi"
        fimi.write_text("1 2 3\n1 2\n2 3\n1 3\n1 2 3\n")
        ledger_dir = tmp_path / "runs"
        assert main([
            "mine", str(fimi), "-s", "2", "-b", "serial",
            "--ledger-dir", str(ledger_dir),
        ]) == 0
        [record] = Ledger(ledger_dir).records()
        assert record.kind == "mine"
        assert record.config["backend"] == "serial"

    def test_mine_no_ledger_flag_writes_nothing(self, tmp_path, capsys,
                                                monkeypatch):
        fimi = tmp_path / "data.fimi"
        fimi.write_text("1 2 3\n1 2\n2 3\n1 3\n1 2 3\n")
        # Even an ambient REPRO_LEDGER directory must be ignored.
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "ambient"))
        assert main(["mine", str(fimi), "-s", "2", "--no-ledger"]) == 0
        assert not (tmp_path / "ambient").exists()
