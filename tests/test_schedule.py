"""Tests for the OpenMP schedule semantics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.openmp.schedule import (
    APRIORI_SCHEDULE,
    ECLAT_SCHEDULE,
    ScheduleSpec,
    chunk_boundaries,
    static_assignment,
    validate_assignment,
)


class TestScheduleSpec:
    def test_paper_clauses(self):
        assert APRIORI_SCHEDULE.kind == "static"
        assert ECLAT_SCHEDULE == ScheduleSpec("dynamic", 1)

    def test_str(self):
        assert str(ScheduleSpec("dynamic", 4)) == "schedule(dynamic,4)"
        assert str(ScheduleSpec("static")) == "schedule(static)"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScheduleSpec("wavefront")
        with pytest.raises(ConfigurationError):
            ScheduleSpec("static", 0)


class TestStaticAssignment:
    def test_contiguous_blocks(self):
        asg = static_assignment(10, 3)
        assert asg.tolist() == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_even_split(self):
        asg = static_assignment(8, 4)
        assert np.bincount(asg).tolist() == [2, 2, 2, 2]

    def test_fewer_iterations_than_threads(self):
        asg = static_assignment(3, 8)
        assert asg.tolist() == [0, 1, 2]

    def test_chunked_round_robin(self):
        asg = static_assignment(7, 2, chunk_size=2)
        assert asg.tolist() == [0, 0, 1, 1, 0, 0, 1]

    def test_chunk_one_interleaves(self):
        asg = static_assignment(6, 3, chunk_size=1)
        assert asg.tolist() == [0, 1, 2, 0, 1, 2]

    def test_zero_iterations(self):
        assert static_assignment(0, 4).size == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            static_assignment(5, 0)
        validate_assignment(static_assignment(5, 2), 2)
        with pytest.raises(ConfigurationError):
            validate_assignment(np.array([0, 5]), 2)


class TestChunkBoundaries:
    def _coverage(self, bounds, n):
        seen = []
        for start, end in bounds:
            assert start < end
            seen.extend(range(start, end))
        assert seen == list(range(n))

    def test_static_block_boundaries(self):
        bounds = chunk_boundaries(10, 3, ScheduleSpec("static"))
        assert bounds == [(0, 4), (4, 7), (7, 10)]

    def test_dynamic_fixed_chunks(self):
        bounds = chunk_boundaries(7, 3, ScheduleSpec("dynamic", 3))
        assert bounds == [(0, 3), (3, 6), (6, 7)]
        self._coverage(bounds, 7)

    def test_dynamic_default_chunk_one(self):
        bounds = chunk_boundaries(4, 2, ScheduleSpec("dynamic"))
        assert len(bounds) == 4

    def test_guided_chunks_shrink(self):
        bounds = chunk_boundaries(1000, 4, ScheduleSpec("guided"))
        sizes = [e - s for s, e in bounds]
        # Non-increasing except possibly the tail, and full coverage.
        assert all(a >= b for a, b in zip(sizes, sizes[1:-1] and sizes[1:]))
        self._coverage(bounds, 1000)

    def test_guided_respects_min_chunk(self):
        bounds = chunk_boundaries(100, 4, ScheduleSpec("guided", 8))
        sizes = [e - s for s, e in bounds]
        assert all(s >= 8 for s in sizes[:-1])
        self._coverage(bounds, 100)

    def test_empty_loop(self):
        assert chunk_boundaries(0, 4, ScheduleSpec("dynamic", 1)) == []

    def test_worksteal_default_targets_eight_chunks_per_thread(self):
        bounds = chunk_boundaries(64, 2, ScheduleSpec("worksteal"))
        # ceil(64 / (8 * 2)) = 4 iterations per stealable chunk.
        assert all(e - s == 4 for s, e in bounds)
        assert len(bounds) == 16
        self._coverage(bounds, 64)

    def test_worksteal_explicit_chunk(self):
        bounds = chunk_boundaries(7, 3, ScheduleSpec("worksteal", 3))
        assert bounds == [(0, 3), (3, 6), (6, 7)]
        self._coverage(bounds, 7)

    def test_worksteal_small_loop_never_emits_empty_chunks(self):
        bounds = chunk_boundaries(3, 8, ScheduleSpec("worksteal"))
        assert bounds == [(0, 1), (1, 2), (2, 3)]


class TestWorkstealSpec:
    def test_valid_kind(self):
        from repro.openmp import WORKSTEAL_SCHEDULE

        assert WORKSTEAL_SCHEDULE.kind == "worksteal"
        assert str(ScheduleSpec("worksteal")) == "schedule(worksteal)"

    def test_chunk_validation_applies(self):
        with pytest.raises(ConfigurationError):
            ScheduleSpec("worksteal", 0)
