"""Tests for the adaptive hybrid tidset/diffset representation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import apriori, brute_force, eclat, run_eclat
from repro.datasets.transaction_db import TransactionDatabase
from repro.representations import HybridRepresentation, get_representation
from repro.representations.hybrid import DIFFSET_KIND, TIDSET_KIND, HybridVertical


class TestEncodingChoice:
    def test_dense_item_encoded_as_diffset(self, paper_db):
        rep = HybridRepresentation()
        singles = rep.build_singletons(paper_db)
        # E is in all 6 transactions -> complement (empty) is far smaller.
        assert singles[4].kind == DIFFSET_KIND
        assert singles[4].payload.size == 0

    def test_sparse_item_encoded_as_tidset(self, paper_db):
        rep = HybridRepresentation()
        singles = rep.build_singletons(paper_db)
        # D appears once -> tidset of size 1 wins.
        assert singles[3].kind == TIDSET_KIND
        assert singles[3].payload.size == 1

    def test_payload_never_larger_than_half_db(self, small_dense_db):
        rep = HybridRepresentation()
        half = small_dense_db.n_transactions / 2
        for v in rep.build_singletons(small_dense_db, min_support=1):
            assert v.payload.size <= half + 1

    def test_min_support_skips_payloads(self, paper_db):
        rep = HybridRepresentation()
        singles = rep.build_singletons(paper_db, min_support=3)
        assert singles[3].payload.size == 0
        assert singles[3].support == 1


class TestCombinations:
    @pytest.fixture
    def singles(self, paper_db):
        return HybridRepresentation().build_singletons(paper_db)

    def test_all_parent_kind_combinations(self, paper_db, singles):
        rep = HybridRepresentation()
        kinds = {v.kind for v in singles if v.support >= 2}
        assert kinds == {TIDSET_KIND, DIFFSET_KIND}
        # Exhaustively combine every frequent pair and verify supports
        # against the database oracle (this walks every kind combination).
        frequent = [
            (i, v) for i, v in enumerate(singles) if v.support >= 2
        ]
        for a, (i, vi) in enumerate(frequent):
            for j, vj in frequent[a + 1 :]:
                child, cost = rep.combine(vi, vj)
                assert child.support == paper_db.support_of([i, j])
                assert cost.cpu_ops > 0
                assert isinstance(child, HybridVertical)

    def test_registry(self):
        assert get_representation("hybrid").name == "hybrid"


class TestMiningCorrectness:
    def test_tiny(self, tiny_db):
        assert apriori(tiny_db, 2, "hybrid").same_itemsets(
            apriori(tiny_db, 2, "tidset")
        )

    def test_eclat_dense(self, small_dense_db):
        assert eclat(small_dense_db, 0.4, "hybrid").same_itemsets(
            eclat(small_dense_db, 0.4, "tidset")
        )

    def test_eclat_sparse(self, small_sparse_db):
        assert eclat(small_sparse_db, 0.05, "hybrid").same_itemsets(
            eclat(small_sparse_db, 0.05, "tidset")
        )

    @settings(max_examples=50, deadline=None)
    @given(
        transactions=st.lists(
            st.lists(st.integers(min_value=0, max_value=7), max_size=6),
            max_size=12,
        ),
        min_sup=st.integers(min_value=1, max_value=5),
    )
    def test_property_matches_brute_force(self, transactions, min_sup):
        db = TransactionDatabase(transactions, n_items=8, name="hypo")
        expected = brute_force(db, min_sup).itemsets
        assert eclat(db, min_sup, "hybrid").itemsets == expected
        assert apriori(db, min_sup, "hybrid").itemsets == expected


class TestAdaptiveAdvantage:
    def test_never_reads_more_than_best_pure_format(self, small_dense_db):
        hybrid = run_eclat(small_dense_db, 0.4, "hybrid").total_cost
        tid = run_eclat(small_dense_db, 0.4, "tidset").total_cost
        dif = run_eclat(small_dense_db, 0.4, "diffset").total_cost
        assert hybrid.bytes_read <= 1.2 * min(tid.bytes_read, dif.bytes_read)

    def test_beats_diffset_on_sparse_data(self, small_sparse_db):
        hybrid = run_eclat(small_sparse_db, 0.03, "hybrid").total_cost
        dif = run_eclat(small_sparse_db, 0.03, "diffset").total_cost
        assert hybrid.bytes_read < dif.bytes_read
