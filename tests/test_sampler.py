"""Resource sampler, Prometheus export, and the anatomy CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.datasets.fimi import write_fimi
from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import ConfigurationError
from repro.obs import InMemorySink, ObsContext
from repro.obs.anatomy import analyze
from repro.obs.metrics import MetricsRegistry
from repro.obs.sampler import (
    COUNTER_NAME,
    ResourceSampler,
    maybe_start_sampler,
    sample_resources,
)

EXPECTED_KEYS = {"rss_bytes", "cpu_seconds", "io_read_bytes", "io_write_bytes"}


@pytest.fixture
def fimi_file(tmp_path):
    db = TransactionDatabase(
        [[1, 2, 3], [1, 2], [2, 3], [1, 3], [1, 2, 3]] * 3, name="samplerdb"
    )
    path = tmp_path / "data.dat"
    write_fimi(db, path)
    return str(path)


class TestSampleResources:
    def test_keys_and_sanity(self):
        values = sample_resources()
        assert set(values) == EXPECTED_KEYS
        assert values["rss_bytes"] > 0
        assert values["cpu_seconds"] >= 0


class TestResourceSampler:
    def test_emits_counter_events(self):
        sink = InMemorySink()
        sampler = ResourceSampler(sink, 0.01, pid=9)
        sampler.start()
        import time

        time.sleep(0.05)
        sampler.stop()
        samples = [e for e in sink.events if e.phase == "C"]
        assert len(samples) >= 2  # immediate start sample + final stop sample
        assert all(e.name == COUNTER_NAME and e.pid == 9 for e in samples)
        assert all(set(e.args) == EXPECTED_KEYS for e in samples)
        # Timestamps are relative to the sink epoch and non-decreasing.
        stamps = [e.ts for e in samples]
        assert stamps == sorted(stamps)

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            ResourceSampler(InMemorySink(), 0.0)
        with pytest.raises(ConfigurationError):
            ResourceSampler(InMemorySink(), -1.0)

    def test_stop_is_idempotent(self):
        sampler = ResourceSampler(InMemorySink(), 0.01).start()
        sampler.stop()
        sampler.stop()

    def test_context_manager(self):
        sink = InMemorySink()
        with ResourceSampler(sink, 0.01):
            pass
        assert any(e.phase == "C" for e in sink.events)

    def test_metrics_gauges(self):
        metrics = MetricsRegistry()
        with ResourceSampler(InMemorySink(), 0.01, metrics=metrics):
            pass
        gauges = metrics.gauges()
        assert gauges["resource.peak_rss_bytes"] > 0
        assert gauges["resource.samples"] >= 1


class TestMaybeStartSampler:
    def test_none_without_obs_or_interval(self):
        assert maybe_start_sampler(None) is None
        assert maybe_start_sampler(ObsContext(sink=InMemorySink())) is None

    def test_starts_from_obs_interval(self):
        obs = ObsContext(sink=InMemorySink(), sample_interval=0.01)
        sampler = maybe_start_sampler(obs)
        assert sampler is not None
        sampler.stop()
        assert any(e.phase == "C" for e in obs.sink.events)

    def test_explicit_interval_overrides(self):
        obs = ObsContext(sink=InMemorySink())
        sampler = maybe_start_sampler(obs, interval=0.01)
        assert sampler is not None
        sampler.stop()


class TestSamplerThroughBackends:
    def test_shared_memory_worker_lanes_sampled(self, paper_db):
        from repro.backends.shared_memory_backend import (
            run_eclat_shared_memory,
        )

        obs = ObsContext(sink=InMemorySink(), sample_interval=0.005)
        run_eclat_shared_memory(paper_db, 2, n_workers=2, obs=obs)
        pids = {e.pid for e in obs.sink.events
                if e.phase == "C" and e.name == COUNTER_NAME}
        assert any(pid != 0 for pid in pids)  # worker samples merged in

    def test_multiprocessing_worker_lanes_sampled(self, paper_db):
        from repro.backends.multiprocessing_backend import (
            run_eclat_multiprocessing,
        )

        obs = ObsContext(sink=InMemorySink(), sample_interval=0.005)
        run_eclat_multiprocessing(
            paper_db, 2, representation="tidset", n_workers=2, obs=obs)
        pids = {e.pid for e in obs.sink.events
                if e.phase == "C" and e.name == COUNTER_NAME}
        assert any(pid != 0 for pid in pids)

    def test_out_of_core_sampled_and_io_attributed(self, paper_db, tmp_path):
        from repro.outofcore import mine_out_of_core

        path = tmp_path / "data.dat"
        write_fimi(paper_db, path)
        obs = ObsContext(sink=InMemorySink(), sample_interval=0.005)
        mine_out_of_core(path, min_support=2, obs=obs, n_partitions=2)
        assert any(e.phase == "C" for e in obs.sink.events)
        assert obs.metrics.counters()["outofcore.read_bytes"] > 0
        anatomy = analyze(obs.sink)
        assert anatomy.check() == []
        assert anatomy.buckets_seconds()["io"] > 0.0
        names = {e.name for e in obs.sink.events if e.phase == "X"}
        assert "outofcore.scan" in names
        assert "outofcore.partition" in names
        assert "outofcore.count_chunk" in names


class TestPrometheusExport:
    def test_counters_gauges_histograms(self):
        metrics = MetricsRegistry()
        metrics.counter("mine.intersections").inc(7)
        metrics.gauge("shared_memory.n_workers").set(4)
        metrics.histogram("worker.task_s").observe(0.5)
        metrics.histogram("worker.task_s").observe(1.5)
        text = metrics.to_prometheus()
        assert "# TYPE repro_mine_intersections_total counter" in text
        assert "repro_mine_intersections_total 7" in text
        assert "# TYPE repro_shared_memory_n_workers gauge" in text
        assert "repro_shared_memory_n_workers 4" in text
        assert "# TYPE repro_worker_task_s summary" in text
        assert 'repro_worker_task_s{quantile="0.5"}' in text
        assert "repro_worker_task_s_sum 2" in text
        assert "repro_worker_task_s_count 2" in text
        assert text.endswith("\n")

    def test_empty_registry_is_empty_string(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_name_sanitization(self):
        metrics = MetricsRegistry()
        metrics.counter("1weird.name-x").inc(1)
        text = metrics.to_prometheus()
        assert "repro__1weird_name_x_total 1" in text


class TestCliObservability:
    def test_metrics_prom_flag(self, fimi_file, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        assert main(["mine", fimi_file, "-s", "2",
                     "--metrics-prom", str(prom)]) == 0
        text = prom.read_text()
        assert text.startswith("# TYPE repro_")
        assert "prometheus metrics written" in capsys.readouterr().out

    def test_sample_interval_flag(self, fimi_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["mine", fimi_file, "-s", "2", "--trace-out", str(trace),
                     "--sample-interval", "0.01"]) == 0
        document = json.loads(trace.read_text())
        assert any(e.get("ph") == "C" and e.get("name") == COUNTER_NAME
                   for e in document["traceEvents"])

    def test_sample_interval_rejects_nonpositive(self, fimi_file):
        with pytest.raises(SystemExit):
            main(["mine", fimi_file, "-s", "2", "--sample-interval", "0"])

    def _trace(self, fimi_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["mine", fimi_file, "-s", "2", "-b", "shared_memory",
                     "-w", "2", "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        return trace

    def test_obs_anatomy_check(self, fimi_file, tmp_path, capsys):
        trace = self._trace(fimi_file, tmp_path, capsys)
        assert main(["obs", "anatomy", str(trace), "--check"]) == 0
        out = capsys.readouterr().out
        assert "run wall:" in out
        assert "check ok" in out

    def test_obs_anatomy_json(self, fimi_file, tmp_path, capsys):
        trace = self._trace(fimi_file, tmp_path, capsys)
        assert main(["obs", "anatomy", str(trace), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert "buckets" in summary and "critical_path" in summary

    def test_obs_anatomy_rejects_empty(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text('{"traceEvents": []}')
        with pytest.raises(SystemExit):
            main(["obs", "anatomy", str(empty)])

    def test_obs_flame_both_formats(self, fimi_file, tmp_path, capsys):
        trace = self._trace(fimi_file, tmp_path, capsys)
        assert main(["obs", "flame", str(trace)]) == 0
        speedscope = tmp_path / "trace.speedscope.json"
        document = json.loads(speedscope.read_text())
        assert document["profiles"]
        assert main(["obs", "flame", str(trace), "--format", "collapsed"]) == 0
        collapsed = (tmp_path / "trace.collapsed.txt").read_text()
        assert collapsed.strip()

    def test_obs_explain_traces(self, fimi_file, tmp_path, capsys):
        trace_a = self._trace(fimi_file, tmp_path, capsys)
        trace_b = tmp_path / "b.json"
        assert main(["mine", fimi_file, "-s", "2", "-b", "shared_memory",
                     "-w", "2", "--trace-out", str(trace_b)]) == 0
        capsys.readouterr()
        assert main(["obs", "explain", str(trace_a), str(trace_b)]) == 0
        out = capsys.readouterr().out
        assert "wall:" in out
        assert "bucket" in out

    def test_obs_explain_ledger_runs(self, fimi_file, tmp_path, capsys):
        runs = tmp_path / "runs"
        for trace in ("a.json", "b.json"):
            assert main([
                "mine", fimi_file, "-s", "2", "-b", "shared_memory",
                "-w", "2", "--trace-out", str(tmp_path / trace),
                "--ledger-dir", str(runs),
            ]) == 0
        capsys.readouterr()
        assert main(["obs", "explain", "-2", "-1",
                     "--ledger-dir", str(runs)]) == 0
        out = capsys.readouterr().out
        assert "predicted vs actual" in out

    def test_obs_explain_missing_anatomy(self, fimi_file, tmp_path, capsys):
        runs = tmp_path / "runs"
        # No --trace-out: the ledger record carries no anatomy summary.
        assert main(["mine", fimi_file, "-s", "2",
                     "--ledger-dir", str(runs)]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="trace-out"):
            main(["obs", "explain", "-1", "-1", "--ledger-dir", str(runs)])
