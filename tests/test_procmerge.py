"""Cross-process telemetry protocol: snapshots, merging, fault tolerance."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import InMemorySink, ObsContext
from repro.obs.metrics import sample_rusage
from repro.obs.procmerge import (
    SNAPSHOT_SCHEMA,
    WorkerTelemetry,
    merge_snapshot,
    remap_timestamp_us,
    snapshot,
)
from repro.obs.trace import TraceEvent, US_PER_SECOND


def _worker_snapshot(pid: int = 4242) -> dict:
    """A realistic snapshot: one span, one relative counter, one histogram."""
    telemetry = WorkerTelemetry(True, pid=pid)
    obs = telemetry.obs
    with obs.sink.span("task.eclat", cat="mine", args={"task_id": 3}):
        pass
    obs.metrics.counter("worker.busy_s").inc(0.25)
    obs.metrics.counter("mine.intersections").inc(7)
    obs.metrics.gauge("worker.depth").set(2)
    obs.metrics.histogram("worker.task_s").observe(0.25)
    return telemetry.drain()


class TestWorkerTelemetry:
    def test_disabled_is_zero_overhead(self):
        telemetry = WorkerTelemetry(False)
        assert telemetry.obs is None
        assert telemetry.drain() is None

    def test_drain_resets(self):
        telemetry = WorkerTelemetry(True, pid=1)
        telemetry.obs.metrics.counter("worker.busy_s").inc(1.0)
        first = telemetry.drain()
        second = telemetry.drain()
        assert first["counters"] == {"worker.busy_s": 1.0}
        assert second["counters"] == {}
        assert second["events"] == []

    def test_snapshot_shape(self):
        snap = _worker_snapshot(pid=77)
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["pid"] == 77
        assert isinstance(snap["epoch"], float)
        assert len(snap["events"]) == 1
        assert snap["histogram_values"] == {"worker.task_s": [0.25]}


class TestMergeSnapshot:
    def test_merges_events_onto_worker_lane(self):
        parent = ObsContext(sink=InMemorySink())
        assert merge_snapshot(parent, _worker_snapshot(pid=99))
        durations = parent.sink.by_phase("X")
        assert len(durations) == 1
        assert durations[0].pid == 99
        assert durations[0].name == "task.eclat"

    def test_epoch_remap_aligns_clocks(self):
        """A worker event 10ms after ITS epoch lands 10ms + (epoch delta)
        after the PARENT's epoch."""
        parent = ObsContext(sink=InMemorySink())
        snap = {
            "schema": SNAPSHOT_SCHEMA,
            "pid": 5,
            "epoch": parent.sink.epoch + 1.0,  # worker clock started 1s later
            "events": [
                TraceEvent("t", "X", ts=10_000.0, dur=5.0).to_dict()
            ],
            "counters": {},
            "gauges": {},
            "histogram_values": {},
        }
        assert merge_snapshot(parent, snap)
        event = parent.sink.by_phase("X")[0]
        assert event.ts == pytest.approx(10_000.0 + US_PER_SECOND, rel=1e-9)

    def test_prefix_rebinds_worker_relative_names_only(self):
        parent = ObsContext(sink=InMemorySink())
        merge_snapshot(parent, _worker_snapshot(), prefix="shared_memory.worker3")
        counters = parent.metrics.counters()
        assert counters["shared_memory.worker3.busy_s"] == 0.25
        assert counters["mine.intersections"] == 7  # absolute name untouched
        assert parent.metrics.gauges()["shared_memory.worker3.depth"] == 2
        assert parent.metrics.histogram_values()[
            "shared_memory.worker3.task_s"
        ] == [0.25]

    def test_lane_named_once_per_pid(self):
        parent = ObsContext(sink=InMemorySink())
        seen = set()
        for _ in range(3):
            merge_snapshot(
                parent, _worker_snapshot(pid=11),
                lane_name="worker 0 (pid 11)", seen_pids=seen,
            )
        metadata = [
            e for e in parent.sink.events
            if e.phase == "M" and e.name == "process_name"
        ]
        assert len(metadata) == 1
        assert metadata[0].pid == 11

    def test_counters_accumulate_across_snapshots(self):
        parent = ObsContext(sink=InMemorySink())
        merge_snapshot(parent, _worker_snapshot(), prefix="w")
        merge_snapshot(parent, _worker_snapshot(), prefix="w")
        assert parent.metrics.counters()["w.busy_s"] == 0.5
        assert parent.metrics.counters()["obs.snapshots.merged"] == 2


class TestFaultTolerance:
    """Partial telemetry from a dying worker must never corrupt the parent."""

    @pytest.mark.parametrize(
        "snap",
        [
            None,
            "garbage",
            {},
            {"schema": 999, "pid": 1},          # unknown schema version
            {"schema": SNAPSHOT_SCHEMA},        # missing pid
            {"schema": SNAPSHOT_SCHEMA, "pid": "not-an-int"},
        ],
    )
    def test_unintelligible_snapshot_is_dropped_not_raised(self, snap):
        parent = ObsContext(sink=InMemorySink())
        assert merge_snapshot(parent, snap) is False
        assert parent.sink.events == []
        if snap is not None:
            assert parent.metrics.counters()["obs.snapshots.dropped"] == 1

    def test_truncated_events_dropped_rest_merged(self):
        snap = _worker_snapshot(pid=8)
        snap["events"].append({"name": "broken"})  # no phase/ts
        snap["events"].append(42)
        parent = ObsContext(sink=InMemorySink())
        assert merge_snapshot(parent, snap, prefix="w")
        assert len(parent.sink.by_phase("X")) == 1  # the good event survived
        counters = parent.metrics.counters()
        assert counters["obs.events.dropped"] == 2
        assert counters["w.busy_s"] == 0.25  # metrics still merged

    def test_bad_epoch_drops_events_keeps_metrics(self):
        snap = _worker_snapshot(pid=8)
        snap["epoch"] = "not-a-float"
        parent = ObsContext(sink=InMemorySink())
        assert merge_snapshot(parent, snap, prefix="w")
        assert parent.sink.by_phase("X") == []
        assert parent.metrics.counters()["w.busy_s"] == 0.25

    def test_malformed_counter_values_dropped_individually(self):
        snap = _worker_snapshot(pid=8)
        snap["counters"]["worker.bad"] = "NaN-ish garbage"
        parent = ObsContext(sink=InMemorySink())
        assert merge_snapshot(parent, snap, prefix="w")
        counters = parent.metrics.counters()
        assert counters["w.busy_s"] == 0.25
        assert "w.bad" not in counters


class TestTraceEventDictRoundTrip:
    def test_round_trip(self):
        event = TraceEvent(
            "name", "X", ts=1.5, dur=2.5, pid=3, tid=4, cat="c",
            args={"k": 1},
        )
        assert TraceEvent.from_dict(event.to_dict()) == event

    @pytest.mark.parametrize(
        "record", [{}, {"name": "x"}, {"name": "x", "phase": "X", "ts": "?"}]
    )
    def test_malformed_raises(self, record):
        with pytest.raises((TypeError, ValueError, KeyError)):
            TraceEvent.from_dict(record)


class TestSampleRusage:
    def test_fields_present_and_sane(self):
        sample = sample_rusage()
        for key in (
            "max_rss_bytes", "user_seconds", "system_seconds",
            "minor_page_faults", "major_page_faults",
            "voluntary_ctx_switches", "involuntary_ctx_switches",
        ):
            assert key in sample
            assert sample[key] >= 0
        # This process has certainly used some memory and CPU by now.
        assert sample["max_rss_bytes"] > 1024 * 1024
        assert sample["user_seconds"] > 0

    def test_children_variant(self):
        # No children may have run yet; only shape is guaranteed.
        assert set(sample_rusage(children=True)) == set(sample_rusage())


class TestRemapTimestampProperties:
    """Hypothesis: the epoch remap preserves order and run-window bounds."""

    epochs = st.floats(min_value=0.0, max_value=1e6,
                       allow_nan=False, allow_infinity=False)
    stamps = st.lists(
        st.floats(min_value=0.0, max_value=1e9,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=20,
    )

    @settings(max_examples=100, deadline=None)
    @given(stamps=stamps, worker_epoch=epochs, parent_epoch=epochs)
    def test_monotone(self, stamps, worker_epoch, parent_epoch):
        """Remapping is order-preserving: sorted in, sorted out."""
        remapped = [
            remap_timestamp_us(ts, worker_epoch, parent_epoch)
            for ts in sorted(stamps)
        ]
        assert remapped == sorted(remapped)

    @settings(max_examples=100, deadline=None)
    @given(stamps=stamps,
           start_delay=st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False, allow_infinity=False))
    def test_inside_parent_run_window(self, stamps, start_delay):
        """A worker event inside the worker's lifetime lands inside the
        parent's run window: at/after the worker's spawn point on the
        parent timeline, never before the parent epoch."""
        parent_epoch = 1000.0
        worker_epoch = parent_epoch + start_delay  # workers spawn later
        spawn_offset_us = start_delay * US_PER_SECOND
        for ts in stamps:
            remapped = remap_timestamp_us(ts, worker_epoch, parent_epoch)
            assert remapped >= spawn_offset_us - 1e-6
            assert remapped >= 0.0
            # Relative distances survive the remap exactly.
            assert remapped - spawn_offset_us == pytest.approx(ts, abs=1e-3)

    @settings(max_examples=50, deadline=None)
    @given(offset=st.floats(min_value=-100.0, max_value=100.0,
                            allow_nan=False, allow_infinity=False))
    def test_roundtrip(self, offset):
        """Remapping there and back is the identity (up to float eps)."""
        worker_epoch, parent_epoch = 500.0 + offset, 500.0
        ts = 12_345.0
        there = remap_timestamp_us(ts, worker_epoch, parent_epoch)
        back = remap_timestamp_us(there, parent_epoch, worker_epoch)
        assert back == pytest.approx(ts, abs=1e-3)

    @settings(max_examples=50, deadline=None)
    @given(start_delay=st.floats(min_value=0.001, max_value=10.0,
                                 allow_nan=False, allow_infinity=False),
           durations=st.lists(
               st.floats(min_value=0.0, max_value=1e6,
                         allow_nan=False, allow_infinity=False),
               min_size=1, max_size=5))
    def test_merged_events_keep_order_and_window(self, start_delay, durations):
        """End-to-end: events merged from a snapshot stay ordered and
        inside [worker spawn, ∞) on the parent lane."""
        parent = ObsContext(sink=InMemorySink())
        worker_epoch = parent.sink.epoch + start_delay
        ts = 0.0
        events = []
        for i, dur in enumerate(durations):
            events.append(TraceEvent(f"t{i}", "X", ts=ts, dur=dur).to_dict())
            ts += dur + 1.0
        snap = {
            "schema": SNAPSHOT_SCHEMA,
            "pid": 7,
            "epoch": worker_epoch,
            "events": events,
            "counters": {},
            "gauges": {},
            "histogram_values": {},
        }
        assert merge_snapshot(parent, snap)
        merged = parent.sink.by_phase("X")
        stamps = [event.ts for event in merged]
        assert stamps == sorted(stamps)
        spawn_offset_us = start_delay * US_PER_SECOND
        assert all(s >= spawn_offset_us - 1e-6 for s in stamps)
