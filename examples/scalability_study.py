"""Reproduce one of the paper's scalability curves end to end.

Runs the full pipeline on the mushroom surrogate: mine once with cost
tracing, replay the trace on the simulated Blacklight at 1..1024 threads
for all three representations and both algorithms, and print the paper-
style runtime/speedup tables plus per-region bottleneck diagnostics.

Run with:  python examples/scalability_study.py
"""

from repro import paper
from repro.analysis import (
    karp_flatt_series,
    render_runtime_table,
    render_speedup_series,
)
from repro.datasets import make_mushroom
from repro.parallel import run_scalability_study, runtime_table, speedup_series


def main() -> None:
    db = make_mushroom()
    support = paper.PAPER_SUPPORTS["mushroom"]
    print(f"dataset: {db.stats().row()}, min_support={support}")

    for algorithm in ("apriori", "eclat"):
        studies = []
        for representation in paper.REPRESENTATION_NAMES:
            study = run_scalability_study(
                db,
                algorithm,
                representation,
                support,
                thread_counts=paper.THREAD_COUNTS,
            )
            # Re-label rows by representation so one table compares formats.
            study.dataset = representation
            studies.append(study)

        print()
        print(
            render_runtime_table(
                runtime_table(
                    studies,
                    f"{algorithm.upper()} on mushroom — simulated seconds "
                    "(rows = representation)",
                )
            )
        )
        print()
        print(
            render_speedup_series(
                speedup_series(studies),
                title=f"{algorithm.upper()} speedup vs one thread",
            )
        )

        # Bottleneck diagnostics at full machine width.
        print("\nbottlenecks at 1024 threads:")
        for study in studies:
            simulated = study.times[1024]
            limited = simulated.link_limited_regions or ["compute-bound"]
            kf = karp_flatt_series(study.runtimes())[1024]
            print(
                f"  {study.representation:9s}: "
                f"{simulated.total_seconds * 1e3:7.2f} ms, "
                f"Karp-Flatt serial fraction {kf:.3f}, "
                f"link-limited regions: {', '.join(limited)}"
            )


if __name__ == "__main__":
    main()
