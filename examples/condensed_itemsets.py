"""Condensed representations: all vs closed vs maximal frequent itemsets.

Dense data makes the full frequent lattice explode; the closed sets
(CHARM) keep every support losslessly, and the maximal sets (GenMax) keep
just the frontier.  This example mines the chess surrogate three ways and
shows the compression, then verifies the recovery property: every frequent
itemset's support can be reconstructed from the closed sets alone.

Run with:  python examples/condensed_itemsets.py
"""

from repro.core import charm, eclat, genmax
from repro.core.itemset import is_subset
from repro.datasets import make_chess


def main() -> None:
    db = make_chess()
    support = 0.85  # slightly higher than the paper tables: snappier demo
    print(f"dataset: {db.stats().row()}, min_support={support}")

    frequent = eclat(db, support, "diffset")
    closed = charm(db, support)
    maximal = genmax(db, support)

    print(
        f"\nall frequent: {len(frequent):5d} itemsets"
        f"\nclosed:       {len(closed):5d} itemsets "
        f"({len(frequent) / max(len(closed), 1):.1f}x compression)"
        f"\nmaximal:      {len(maximal):5d} itemsets "
        f"({len(frequent) / max(len(maximal), 1):.1f}x compression)"
    )

    # Lossless recovery: support(X) = max support of a closed superset.
    checked = 0
    for items, expected in list(frequent.itemsets.items())[:500]:
        recovered = max(
            s for c, s in closed.itemsets.items() if is_subset(items, c)
        )
        assert recovered == expected, items
        checked += 1
    print(f"\nrecovered {checked} supports exactly from the closed sets")

    # The maximal frontier determines frequency membership.
    for items in list(frequent.itemsets)[:500]:
        assert any(
            is_subset(items, m) for m in maximal.itemsets
        ), items
    print("every frequent itemset lies under a maximal set")

    print("\nlargest maximal itemsets:")
    for items, sup in sorted(
        maximal.itemsets.items(), key=lambda kv: -len(kv[0])
    )[:5]:
        print(f"  size {len(items)}: {items} (support {sup})")


if __name__ == "__main__":
    main()
