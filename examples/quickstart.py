"""Quickstart: mine frequent itemsets three ways and check they agree.

Run with:  python examples/quickstart.py
"""

from repro import apriori, eclat, fpgrowth
from repro.datasets import parse_fimi

# A small market-basket database in FIMI text format: one transaction per
# line, items as integers.  (Use repro.datasets.read_fimi for files.)
GROCERIES = """\
1 2 5
2 4
2 3
1 2 4
1 3
2 3
1 3
1 2 3 5
1 2 3
"""


def main() -> None:
    db = parse_fimi(GROCERIES, name="groceries")
    print(f"database: {db.n_transactions} transactions, {db.n_items} item ids")

    # Mine with all three algorithms.  `min_support` accepts an absolute
    # count (int) or a fraction of transactions (float); representation is
    # any of "tidset" / "bitvector" / "diffset" for the vertical miners.
    by_apriori = apriori(db, min_support=2, representation="tidset")
    by_eclat = eclat(db, min_support=2, representation="diffset")
    by_fpgrowth = fpgrowth(db, min_support=2)

    assert by_apriori.same_itemsets(by_eclat)
    assert by_apriori.same_itemsets(by_fpgrowth)
    print(by_apriori.summary())

    print("\nfrequent itemsets (support >= 2):")
    for items, support in sorted(
        by_apriori.itemsets.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        label = ",".join(str(i) for i in items)
        print(f"  {{{label}}}: {support}")

    # Relative thresholds work the same way.
    at_40pct = eclat(db, min_support=0.4, representation="tidset")
    print(f"\nat 40% relative support: {len(at_40pct)} itemsets")


if __name__ == "__main__":
    main()
