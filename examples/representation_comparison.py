"""Compare the vertical representations on dense census-style data.

Shows the Section II-B trade-offs directly: per-generation memory
footprints, measured traffic, and real wall-clock mining time for tidset,
bitvector, and diffset on the chess surrogate — plus the genuinely parallel
process-pool backend and the NumPy-vectorized backend, all driven through
the one ``repro.mine()`` entry point.

Run with:  python examples/representation_comparison.py
"""

import time

import repro
from repro import paper
from repro.analysis import render_grid
from repro.datasets import make_chess
from repro.engine import execute


def main() -> None:
    db = make_chess()
    support = paper.PAPER_SUPPORTS["chess"]
    print(f"dataset: {db.stats().row()}, min_support={support}")

    rows = []
    results = {}
    for representation in paper.REPRESENTATION_NAMES:
        start = time.perf_counter()
        run = execute(
            db, algorithm="eclat", min_support=support,
            representation=representation,
        )
        elapsed = time.perf_counter() - start
        results[representation] = run.result
        cost = run.total_cost
        rows.append(
            [
                representation,
                f"{elapsed:.2f}s",
                f"{cost.cpu_ops / 1e6:.1f}M",
                f"{cost.bytes_read / 1e6:.1f}MB",
                f"{cost.bytes_written / 1e6:.1f}MB",
                str(len(run.result)),
            ]
        )

    print()
    print(
        render_grid(
            ["format", "wall time", "element ops", "read", "written", "itemsets"],
            rows,
            title="Eclat on chess: measured cost by representation",
        )
    )

    # All three agree, of course.
    assert results["tidset"].same_itemsets(results["bitvector"])
    assert results["tidset"].same_itemsets(results["diffset"])

    # Real parallelism (process pool over top-level classes).  This is the
    # paper's task decomposition running on actual cores — the simulator
    # handles the 1024-thread what-ifs, this handles "does the
    # decomposition work".
    start = time.perf_counter()
    parallel = repro.mine(
        db, algorithm="eclat", representation="diffset",
        backend="multiprocessing", min_support=support, n_workers=2,
    )
    elapsed = time.perf_counter() - start
    assert parallel.itemsets == results["diffset"].itemsets
    print(
        f"\nprocess-pool Eclat (2 workers, diffset): {elapsed:.2f}s, "
        f"{len(parallel)} itemsets — identical to serial"
    )

    # And the NumPy block-kernel backend: packed bytes, one broadcast AND
    # per equivalence-class expansion.
    start = time.perf_counter()
    vectorized = repro.mine(
        db, algorithm="eclat", backend="vectorized", min_support=support,
    )
    elapsed = time.perf_counter() - start
    assert vectorized.itemsets == results["tidset"].itemsets
    print(
        f"vectorized Eclat ({vectorized.representation}): {elapsed:.2f}s, "
        f"{len(vectorized)} itemsets — identical again"
    )


if __name__ == "__main__":
    main()
