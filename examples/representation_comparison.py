"""Compare the three vertical representations on dense census-style data.

Shows the Section II-B trade-offs directly: per-generation memory
footprints, measured traffic, and real wall-clock mining time for tidset,
bitvector, and diffset on the chess surrogate — plus the genuinely parallel
process-pool Eclat backend for a real-hardware sanity check.

Run with:  python examples/representation_comparison.py
"""

import time

from repro import paper
from repro.analysis import render_grid
from repro.backends import eclat_multiprocessing
from repro.core import run_eclat
from repro.datasets import make_chess


def main() -> None:
    db = make_chess()
    support = paper.PAPER_SUPPORTS["chess"]
    print(f"dataset: {db.stats().row()}, min_support={support}")

    rows = []
    results = {}
    for representation in paper.REPRESENTATION_NAMES:
        start = time.perf_counter()
        run = run_eclat(db, support, representation)
        elapsed = time.perf_counter() - start
        results[representation] = run.result
        cost = run.total_cost
        rows.append(
            [
                representation,
                f"{elapsed:.2f}s",
                f"{cost.cpu_ops / 1e6:.1f}M",
                f"{cost.bytes_read / 1e6:.1f}MB",
                f"{cost.bytes_written / 1e6:.1f}MB",
                str(len(run.result)),
            ]
        )

    print()
    print(
        render_grid(
            ["format", "wall time", "element ops", "read", "written", "itemsets"],
            rows,
            title="Eclat on chess: measured cost by representation",
        )
    )

    # All three agree, of course.
    assert results["tidset"].same_itemsets(results["bitvector"])
    assert results["tidset"].same_itemsets(results["diffset"])

    # Real parallelism (process pool over top-level classes).  This is the
    # paper's task decomposition running on actual cores — the simulator
    # handles the 1024-thread what-ifs, this handles "does the
    # decomposition work".
    start = time.perf_counter()
    parallel = eclat_multiprocessing(db, support, "diffset", n_workers=2)
    elapsed = time.perf_counter() - start
    assert parallel.itemsets == results["diffset"].itemsets
    print(
        f"\nprocess-pool Eclat (2 workers, diffset): {elapsed:.2f}s, "
        f"{len(parallel)} itemsets — identical to serial"
    )


if __name__ == "__main__":
    main()
