"""What-if studies on the machine model.

The NUMA machine is an explicit, parameterized object — so questions the
paper could not ask of its fixed hardware take a few lines here:

* What if the interconnect were ideal (uniform memory)?
* What if NumaLink had twice the effective bisection bandwidth?
* What if blades carried 64 cores instead of 16?

Each variant replays the same measured Apriori-with-tidset trace from the
chess surrogate, isolating the machine's contribution to the famous stall.

Run with:  python examples/machine_whatif.py
"""

from repro import paper
from repro.analysis import render_grid
from repro.datasets import make_chess
from repro.machine import BLACKLIGHT, UNIFORM_MEMORY
from repro.parallel import apriori_time_curve, run_scalability_study

THREADS = [1, 16, 64, 256, 1024]

VARIANTS = {
    "blacklight (paper)": BLACKLIGHT,
    "uniform memory": UNIFORM_MEMORY,
    "2x bisection": BLACKLIGHT.with_overrides(
        name="2x-bisection",
        bisection_bandwidth=2 * BLACKLIGHT.bisection_bandwidth,
    ),
    "64-core blades": BLACKLIGHT.with_overrides(
        name="fat-blades", cores_per_blade=64
    ),
}


def main() -> None:
    db = make_chess()
    support = paper.PAPER_SUPPORTS["chess"]
    base = run_scalability_study(
        db, "apriori", "tidset", support, thread_counts=THREADS
    )
    trace = base.trace
    print(f"trace: apriori/tidset on {db.name}@{support:g}")

    rows = []
    for label, machine in VARIANTS.items():
        times = apriori_time_curve(trace, THREADS, machine=machine)
        t1 = times[1].total_seconds
        rows.append(
            [label]
            + [f"{t1 / times[t].total_seconds:5.1f}x" for t in THREADS]
        )

    print()
    print(
        render_grid(
            ["machine"] + [f"{t} thr" for t in THREADS],
            rows,
            title="Apriori+tidset speedup under machine variants",
        )
    )
    print(
        "\nReading: the stall is interconnect-made — uniform memory or more\n"
        "bisection recovers scaling without touching a line of the miner;\n"
        "fatter blades push the cliff out (more threads before traffic\n"
        "leaves the blade)."
    )


if __name__ == "__main__":
    main()
