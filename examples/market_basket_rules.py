"""Market-basket association rules — the Section II use case.

Generates a synthetic retail basket stream with the IBM Quest-style
generator, mines it, and derives "customers who bought X also buy Y" rules
with confidence/lift/conviction scores (the diapers-and-beer workflow).

Run with:  python examples/market_basket_rules.py
"""

from repro.core import fpgrowth
from repro.datasets import QuestGenerator
from repro.rules import generate_rules, top_rules_for


def main() -> None:
    # 4,000 baskets over a 300-product catalogue with embedded co-purchase
    # patterns (the generator plants potentially-frequent itemsets).
    generator = QuestGenerator(
        n_items=300,
        avg_transaction_length=8,
        avg_pattern_length=3,
        n_patterns=60,
        seed=42,
    )
    baskets = generator.generate(4_000, name="retail")
    print(
        f"baskets: {baskets.n_transactions}, catalogue: {baskets.n_items}, "
        f"avg basket size: {baskets.avg_length:.1f}"
    )

    # FP-growth handles sparse basket data comfortably at low support.
    frequent = fpgrowth(baskets, min_support=0.01)
    print(frequent.summary())

    rules = generate_rules(frequent, min_confidence=0.5, min_lift=1.5)
    print(f"\n{len(rules)} rules at confidence >= 0.5 and lift >= 1.5; top 10:")
    for rule in rules[:10]:
        print(f"  {rule}")

    # Product-page recommendation query: what does buying the most popular
    # item predict?
    popular = int(baskets.item_supports().argmax())
    recommendations = top_rules_for(rules, item=popular, limit=5)
    print(f"\ncustomers who bought item {popular} also buy:")
    if not recommendations:
        print("  (no rule above the thresholds)")
    for rule in recommendations:
        others = ",".join(str(i) for i in rule.consequent)
        print(
            f"  item(s) {others}  "
            f"(confidence {rule.confidence:.2f}, lift {rule.lift:.1f})"
        )


if __name__ == "__main__":
    main()
