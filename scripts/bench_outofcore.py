"""Benchmark: SON out-of-core mining vs in-memory, across partition counts.

Out-of-core mining (``repro.mine(db_path=...)``) trades extra file passes
and per-partition setup for a bounded memory footprint.  This script
quantifies that trade and writes ``BENCH_outofcore.json`` at the repo
root:

* **inmemory_seconds** — one ``repro.mine(read_fimi(path))`` over the
  whole file (the baseline the SON result must be bit-identical to);
* **outofcore_seconds.p<P>** — ``mine(db_path=..., n_partitions=P)`` per
  swept partition count;
* **predicted_seconds.p<P>** — the cost model's prediction for the same
  sweep (:func:`repro.outofcore.predict_partition_seconds`, which adds
  the ``MachineSpec.io_bytes_per_sec`` I/O term to the mining terms);
* **efficiency_vs_inmemory.p<P>** — ``inmemory / outofcore``, the
  machine-independent ratio the CI gate compares
  (``repro obs compare --ratios-only``);
* **peak_rss_bytes** — the process high-water mark right after the
  memory-budgeted run (measured *before* any in-memory mine, since RSS
  never goes down).

``--check`` fails the run unless (a) every swept partition count
reproduces the in-memory itemsets exactly, and (b) the budgeted run's
peak RSS stays under ``baseline_rss + slack * max_memory_bytes +
overhead`` on a dataset whose horizontal form exceeds the budget — the
ISSUE's bounded-memory acceptance bar.

    PYTHONPATH=src python scripts/bench_outofcore.py               # full
    PYTHONPATH=src python scripts/bench_outofcore.py --smoke --check  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.datasets import read_fimi, scan_fimi, write_fimi  # noqa: E402
from repro.datasets.synthetic import QuestGenerator  # noqa: E402
from repro.engine import mine  # noqa: E402
from repro.obs import sample_rusage  # noqa: E402
from repro.outofcore import (  # noqa: E402
    estimate_chunk_bytes,
    plan_partitions,
    predicted_sweet_spot,
    sweep_partition_counts,
)

#: RSS ceiling terms for ``--check``: the budget bounds the *chunk*, so the
#: process may additionally hold the packed chunk matrix, the candidate
#: table, and numpy temporaries (slack), on top of whatever the interpreter
#: and imports already mapped (overhead, dominated by numpy itself).
RSS_SLACK_FACTOR = 4.0
RSS_FIXED_OVERHEAD_BYTES = 64 * 1024 * 1024


def _env_min_ratio(default: float) -> float:
    """--min-ratio default: REPRO_BENCH_MIN_RATIO env var wins if set."""
    raw = os.environ.get("REPRO_BENCH_MIN_RATIO")
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        print(f"warning: ignoring unparsable REPRO_BENCH_MIN_RATIO={raw!r}",
              file=sys.stderr)
        return default


def best_of(fn, repeats: int) -> tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best wall seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--transactions", type=int, default=20_000,
                        help="Quest dataset size (default: 20000)")
    parser.add_argument("--min-support", type=float, default=0.02,
                        help="relative support threshold (default: 0.02)")
    parser.add_argument("--partitions", type=int, nargs="+",
                        default=[1, 2, 4, 8],
                        help="partition counts to sweep")
    parser.add_argument("--smoke", action="store_true",
                        help="CI workload: small dataset, short sweep")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; best-of is reported")
    parser.add_argument("--output", default=str(ROOT / "BENCH_outofcore.json"),
                        help="where to write the JSON record")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless results match in-memory mining "
                             "exactly and the budgeted run respects its "
                             "RSS ceiling")
    parser.add_argument("--min-ratio", type=float,
                        default=_env_min_ratio(0.05),
                        help="efficiency_vs_inmemory floor for --check "
                             "(default 0.05, or REPRO_BENCH_MIN_RATIO)")
    args = parser.parse_args()

    if args.smoke:
        n_transactions, min_support, partitions, repeats = (
            2_000, 0.02, [1, 2, 4], 1
        )
    else:
        n_transactions, min_support, partitions, repeats = (
            args.transactions, args.min_support, sorted(set(args.partitions)),
            args.repeats,
        )

    gen = QuestGenerator(
        n_items=500, avg_transaction_length=10, avg_pattern_length=4, seed=101
    )
    db = gen.generate(n_transactions, name="T10I4")
    path = ROOT / f".bench_outofcore_{db.name}.dat"
    write_fimi(db, path)
    try:
        return _run(args, path, db.name, min_support, partitions, repeats)
    finally:
        path.unlink(missing_ok=True)


def _run(args, path, dataset, min_support, partitions, repeats) -> int:
    stats = scan_fimi(path)
    print(f"dataset={dataset}  transactions={stats.n_transactions}  "
          f"items={stats.n_items}  file={stats.file_bytes} bytes  "
          f"s={min_support}")

    # ---- budgeted run first: RSS is a process high-water mark, so the
    # bounded-memory claim is only measurable before anything loads the
    # horizontal form.
    baseline_rss = sample_rusage()["max_rss_bytes"]
    horizontal_bytes = estimate_chunk_bytes(stats, stats.n_transactions)
    max_memory_bytes = max(horizontal_bytes // 8, 1)
    budget_plan = plan_partitions(stats, max_memory_bytes=max_memory_bytes)
    budgeted = mine(
        db_path=path, min_support=min_support,
        max_memory_bytes=max_memory_bytes, live=False,
    )
    peak_rss = sample_rusage()["max_rss_bytes"]
    rss_ceiling = (
        baseline_rss
        + RSS_SLACK_FACTOR * max_memory_bytes
        + RSS_FIXED_OVERHEAD_BYTES
    )
    print(f"  budget {max_memory_bytes} B (horizontal ~{horizontal_bytes} B)"
          f" -> {budget_plan.n_partitions} partitions,"
          f" peak RSS {peak_rss} B (ceiling {rss_ceiling:.0f} B)")

    # ---- partition-count sweep (still before the in-memory baseline).
    outofcore_seconds: dict[str, float] = {}
    sweep_results: dict[int, object] = {}
    for n_partitions in partitions:
        key = f"p{n_partitions}"
        seconds, result = best_of(
            lambda n=n_partitions: mine(
                db_path=path, min_support=min_support, n_partitions=n,
                live=False,
            ),
            repeats,
        )
        outofcore_seconds[key] = seconds
        sweep_results[n_partitions] = result
        print(f"  P={n_partitions:<3d} out-of-core {seconds * 1e3:10.3f} ms"
              f"  ({len(result)} itemsets)")

    predicted = {
        f"p{int(row['n_partitions'])}": row["total_seconds"]
        for row in sweep_partition_counts(stats, partitions)
    }
    predicted_spot = predicted_sweet_spot(stats, partitions)

    inmemory_seconds, expected = best_of(
        lambda: mine(read_fimi(path), min_support=min_support, live=False),
        repeats,
    )
    print(f"  in-memory baseline    {inmemory_seconds * 1e3:10.3f} ms"
          f"  ({len(expected)} itemsets)")

    efficiency = {
        key: (inmemory_seconds / seconds if seconds else float("inf"))
        for key, seconds in outofcore_seconds.items()
    }
    measured_spot = min(partitions, key=lambda p: outofcore_seconds[f"p{p}"])
    print(f"  sweet spot: predicted P={predicted_spot}, "
          f"measured P={measured_spot}")

    record = {
        "dataset": dataset,
        "n_transactions": stats.n_transactions,
        "n_items": stats.n_items,
        "file_bytes": stats.file_bytes,
        "min_support": min_support,
        "partitions": partitions,
        "repeats": repeats,
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "max_memory_bytes": max_memory_bytes,
        "budget_n_partitions": budget_plan.n_partitions,
        "baseline_rss_bytes": baseline_rss,
        "peak_rss_bytes": peak_rss,
        "rss_ceiling_bytes": rss_ceiling,
        "inmemory_seconds": inmemory_seconds,
        "outofcore_seconds": outofcore_seconds,
        "predicted_seconds": predicted,
        "efficiency_vs_inmemory": efficiency,
        "predicted_sweet_spot": predicted_spot,
        "measured_sweet_spot": measured_spot,
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check:
        failures = []
        if budgeted.itemsets != expected.itemsets:
            failures.append("budgeted run disagrees with in-memory mining")
        for n_partitions, result in sweep_results.items():
            if result.itemsets != expected.itemsets:
                failures.append(
                    f"P={n_partitions} disagrees with in-memory mining"
                )
        if horizontal_bytes <= max_memory_bytes:
            failures.append(
                "budget does not force partitioning (horizontal form fits)"
            )
        if budget_plan.n_partitions < 2:
            failures.append("budgeted plan did not split the file")
        if peak_rss > rss_ceiling:
            failures.append(
                f"peak RSS {peak_rss} B exceeds ceiling {rss_ceiling:.0f} B"
            )
        slow = {k: v for k, v in efficiency.items() if v < args.min_ratio}
        if slow:
            failures.append(
                f"efficiency below {args.min_ratio:g}: "
                + ", ".join(f"{k}={v:.3f}" for k, v in sorted(slow.items()))
            )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"OK: exact at every P, peak RSS within ceiling, "
              f"worst efficiency {min(efficiency.values()):.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
