"""Benchmark: index queries vs re-mining the database from scratch.

The closed-itemset index exists so that the expensive part — mining —
happens once, at a low support floor; after that every query is answered
from the memory-mapped lattice in time proportional to the *answer*, not
the database.  This script quantifies that trade and writes
``BENCH_index.json`` at the repo root:

* **build_seconds** — one ``ItemsetIndex.build`` at the floor (the cost
  you pay once, plus a save/open round trip so queries time the mmap
  path, not the in-memory one);
* **mine_seconds.s<support>** — a fresh ``repro.mine()`` per queried
  support (what serving would cost without the index);
* **query_seconds.s<support>** — ``index.frequent_at`` at the same
  supports, served from the artifact;
* **speedup_vs_remine.s<support>** — the ratio, the machine-independent
  metric the CI gate compares (``repro obs compare --ratios-only``).

The queried supports sit well above the floor — the serving pattern the
index is for (build low once, answer high often).  ``--check`` fails the
run unless every speedup clears ``--min-ratio`` (default 10x, or the
``REPRO_BENCH_MIN_RATIO`` environment variable, which CI sets).

    PYTHONPATH=src python scripts/bench_index.py              # full
    PYTHONPATH=src python scripts/bench_index.py --smoke --check  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.datasets import get_dataset  # noqa: E402
from repro.engine import mine  # noqa: E402
from repro.index import ItemsetIndex  # noqa: E402


def _env_min_ratio(default: float) -> float:
    """--min-ratio default: REPRO_BENCH_MIN_RATIO env var wins if set."""
    raw = os.environ.get("REPRO_BENCH_MIN_RATIO")
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        print(f"warning: ignoring unparsable REPRO_BENCH_MIN_RATIO={raw!r}",
              file=sys.stderr)
        return default


def best_of(fn, repeats: int) -> tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best wall seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="T10I4",
                        help="surrogate dataset name (default: T10I4)")
    parser.add_argument("--floor", type=float, default=0.01,
                        help="index support floor (default: 0.01 relative)")
    parser.add_argument("--supports", type=float, nargs="+",
                        default=[0.02, 0.05, 0.1],
                        help="query supports, all above the floor")
    parser.add_argument("--smoke", action="store_true",
                        help="CI workload: fewer repeats, queries only at "
                             "the high supports where timing noise is small")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; best-of is reported")
    parser.add_argument("--output", default=str(ROOT / "BENCH_index.json"),
                        help="where to write the JSON record")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless every query beats a fresh mine "
                             "by --min-ratio")
    parser.add_argument("--min-ratio", type=float,
                        default=_env_min_ratio(10.0),
                        help="query-vs-remine speedup bar (default 10, or "
                             "REPRO_BENCH_MIN_RATIO if set)")
    args = parser.parse_args()

    # The index's win is O(answer) vs O(database): build low once, serve
    # high often.  Sparse T10I4 at high query supports is that shape;
    # dense datasets (answer ~ as large as the mining work) would not be.
    if args.smoke:
        dataset, floor, supports = "T10I4", 0.01, [0.05, 0.1]
    else:
        dataset, floor, supports = args.dataset, args.floor, args.supports
    if any(s < floor for s in supports):
        parser.error("every query support must be >= the floor")

    db = get_dataset(dataset)
    print(f"dataset={db.name}  transactions={db.n_transactions}  "
          f"items={db.n_items}  floor={floor}")

    artifact = ROOT / f".bench_index_{db.name}.idx"
    started = time.perf_counter()
    ItemsetIndex.build(db, floor).save(artifact)
    build_seconds = time.perf_counter() - started
    try:
        with ItemsetIndex.open(artifact) as index:
            print(f"  build + save          {build_seconds:10.3f} s  "
                  f"({index.n_closed} closed itemsets)")

            mine_seconds: dict[str, float] = {}
            query_seconds: dict[str, float] = {}
            speedup: dict[str, float] = {}
            for support in supports:
                key = f"s{support:g}"
                t_mine, fresh = best_of(
                    lambda: mine(db, min_support=support), args.repeats
                )
                t_query, served = best_of(
                    lambda: index.frequent_at(support), args.repeats
                )
                if served.itemsets != fresh.itemsets:
                    print(f"FATAL: index disagrees with a fresh mine at "
                          f"support {support}", file=sys.stderr)
                    return 2
                mine_seconds[key] = t_mine
                query_seconds[key] = t_query
                speedup[key] = t_mine / t_query if t_query else float("inf")
                print(f"  support {support:<6g} remine {t_mine * 1e3:10.3f} ms"
                      f"  query {t_query * 1e3:10.3f} ms"
                      f"  ({speedup[key]:8.1f}x, {len(fresh)} itemsets)")
    finally:
        artifact.unlink(missing_ok=True)

    record = {
        "dataset": db.name,
        "n_transactions": db.n_transactions,
        "n_items": db.n_items,
        "floor": floor,
        "supports": supports,
        "repeats": args.repeats,
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "build_seconds": build_seconds,
        "mine_seconds": mine_seconds,
        "query_seconds": query_seconds,
        "speedup_vs_remine": speedup,
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check:
        slow = {k: v for k, v in speedup.items() if v < args.min_ratio}
        if slow:
            print(f"FAIL: query speedup below {args.min_ratio:.1f}x at "
                  + ", ".join(f"{k}={v:.1f}x" for k, v in sorted(slow.items())),
                  file=sys.stderr)
            return 1
        print(f"OK: every query beats re-mining by >= {args.min_ratio:.1f}x "
              f"(worst {min(speedup.values()):.1f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
