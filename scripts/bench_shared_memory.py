"""Benchmark: shared-memory parallel Eclat vs the serial vectorized backend.

The shared-memory backend's claim is real-hardware speedup from the
paper's execution model — one packed bit matrix shared zero-copy, workers
pulling top-level equivalence classes under ``schedule(dynamic, 1)``.
This script measures end-to-end wall clock for ``repro.mine(...,
backend="shared_memory")`` at 1/2/4/8 workers against the in-process
``vectorized`` backend on the chess surrogate, verifies every run is
bit-identical, and writes ``BENCH_shared_memory.json`` at the repo root.

Honest-reporting note: the record includes ``cpu_count``; on a single-core
container every worker count shares one core and the parallel runs can
only show overhead, not speedup.  The acceptance bar (>= 2x at 4 workers)
is only meaningful when ``cpu_count >= 4`` — ``--check`` therefore skips
(exit 0, with a message) on smaller machines rather than fake a pass.

    PYTHONPATH=src python scripts/bench_shared_memory.py              # full
    PYTHONPATH=src python scripts/bench_shared_memory.py --smoke      # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.datasets import get_dataset, parse_fimi  # noqa: E402
from repro.engine import mine  # noqa: E402

SMOKE_FIMI = "\n".join(
    " ".join(str(i) for i in range(t % 11, t % 11 + 8)) for t in range(128)
)


def _env_min_ratio(default: float) -> float:
    """--min-speedup default: REPRO_BENCH_MIN_RATIO env var wins if set."""
    raw = os.environ.get("REPRO_BENCH_MIN_RATIO")
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        print(f"warning: ignoring unparsable REPRO_BENCH_MIN_RATIO={raw!r}",
              file=sys.stderr)
        return default


def best_of(fn, repeats: int) -> tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best wall seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="chess",
                        help="registry dataset to mine (default: chess)")
    parser.add_argument("--min-support", type=float, default=0.6,
                        help="support threshold (default: 0.6 relative)")
    parser.add_argument("--workers", type=int, nargs="+",
                        default=[1, 2, 4, 8],
                        help="worker counts to sweep (default: 1 2 4 8)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny synthetic workload + 1/2 workers, for CI")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; best-of is reported")
    parser.add_argument("--output",
                        default=str(ROOT / "BENCH_shared_memory.json"),
                        help="where to write the JSON record")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless speedup at 4 workers >= "
                             "--min-speedup (skipped when cpu_count < 4)")
    parser.add_argument("--min-speedup", type=float,
                        default=_env_min_ratio(2.0),
                        help="acceptance bar (default 2.0, or "
                             "REPRO_BENCH_MIN_RATIO if set)")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write a Chrome trace of the widest "
                             "shared-memory run (one lane per worker)")
    parser.add_argument("--ledger-dir", metavar="DIR", default=None,
                        help="also append every timed run to this ledger")
    args = parser.parse_args()

    ledger = None
    if args.ledger_dir:
        from repro.obs.ledger import Ledger  # noqa: E402

        ledger = Ledger(args.ledger_dir)

    if args.smoke:
        db = parse_fimi(SMOKE_FIMI, name="smoke")
        workers = [1, 2]
        min_support = 0.5
    else:
        db = get_dataset(args.dataset)
        workers = args.workers
        min_support = args.min_support

    t_serial, baseline = best_of(
        lambda: mine(db, algorithm="eclat", backend="vectorized",
                     min_support=min_support, ledger=ledger),
        args.repeats,
    )

    sweep = {}
    for n in workers:
        seconds, result = best_of(
            lambda n=n: mine(db, algorithm="eclat", backend="shared_memory",
                             min_support=min_support, n_workers=n,
                             ledger=ledger),
            args.repeats,
        )
        if result.itemsets != baseline.itemsets:
            print(f"FATAL: shared_memory @ {n} workers disagrees with the "
                  "vectorized baseline", file=sys.stderr)
            return 2
        sweep[n] = seconds

    if args.trace_out:
        # One extra (untimed) run at the widest worker count, traced: the
        # artifact CI uploads so any run's worker lanes can be eyeballed
        # in Perfetto.
        from repro.obs import ChromeTraceSink, ObsContext  # noqa: E402

        obs = ObsContext(sink=ChromeTraceSink(args.trace_out))
        try:
            mine(db, algorithm="eclat", backend="shared_memory",
                 min_support=min_support, n_workers=max(workers), obs=obs)
        finally:
            obs.close()
        print(f"trace written to {args.trace_out} (load in ui.perfetto.dev)")

    record = {
        "dataset": db.name,
        "n_transactions": db.n_transactions,
        "n_items": db.n_items,
        "min_support": min_support,
        "n_itemsets": len(baseline.itemsets),
        "cpu_count": os.cpu_count(),
        "repeats": args.repeats,
        "smoke": args.smoke,
        "serial_vectorized_seconds": t_serial,
        "shared_memory_seconds": {str(n): s for n, s in sweep.items()},
        "speedup_vs_serial": {
            str(n): (t_serial / s if s else None) for n, s in sweep.items()
        },
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")

    print(f"dataset={db.name}  itemsets={len(baseline.itemsets)}  "
          f"cpu_count={record['cpu_count']}")
    print(f"  vectorized (serial)   {t_serial * 1e3:10.3f} ms")
    for n, seconds in sweep.items():
        print(f"  shared_memory x{n:<4d}  {seconds * 1e3:10.3f} ms  "
              f"({t_serial / seconds:.2f}x)")
    print(f"wrote {args.output}")

    if args.check:
        cpus = record["cpu_count"] or 1
        if cpus < 4 or 4 not in sweep:
            print(f"SKIP check: need >= 4 cpus and a 4-worker run "
                  f"(cpu_count={cpus}); recorded honest numbers instead")
            return 0
        speedup = t_serial / sweep[4]
        if speedup < args.min_speedup:
            print(f"FAIL: 4-worker speedup {speedup:.2f}x < "
                  f"{args.min_speedup:.1f}x", file=sys.stderr)
            return 1
        print(f"OK: 4-worker speedup {speedup:.2f}x >= {args.min_speedup:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
