"""One-command reproduction driver.

Runs every paper experiment (E1-E9, E11, E12 tables; the wall-clock E10
numbers need pytest-benchmark) without pytest, prints each table as it
completes, saves the rendered outputs + JSON records under
``benchmarks/results/``, and finishes by regenerating EXPERIMENTS.md.

    python scripts/run_all_experiments.py            # full (several minutes)
    python scripts/run_all_experiments.py --quick    # chess + mushroom only
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

from repro import paper
from repro.analysis import (
    from_studies,
    render_dataset_stats,
    render_runtime_table,
    render_speedup_series,
    speedup_chart,
)
from repro.datasets import PAPER_STATS, get_dataset
from repro.parallel import run_scalability_study, runtime_table, speedup_series

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

TABLES = [
    ("E2", "apriori", "diffset", "TABLE II / Figure 5: Apriori with diffset"),
    ("E3a", "apriori", "tidset", "Apriori with tidset (not reported scalable)"),
    ("E3b", "apriori", "bitvector", "Apriori with bitvector (not reported scalable)"),
    ("E4", "eclat", "tidset", "TABLE III / Figure 6: Eclat with tidset"),
    ("E5", "eclat", "bitvector", "TABLE VI / Figure 7: Eclat with bitvector"),
    ("E6", "eclat", "diffset", "TABLE V / Figure 8: Eclat with diffset"),
]


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="chess + mushroom only (fast)")
    args = parser.parse_args()
    rows = paper.quick_rows() if args.quick else paper.paper_rows()
    RESULTS.mkdir(exist_ok=True)

    # E1 — Table I.
    print("== E1: Table I ==")
    stats_rows = [get_dataset(r.dataset).stats().row() for r in rows]
    print(render_dataset_stats(stats_rows))
    print()

    for exp_id, algorithm, representation, title in TABLES:
        print(f"== {exp_id}: {title} ==")
        started = time.time()
        studies = []
        for row in rows:
            studies.append(
                run_scalability_study(
                    row.load(),
                    algorithm,
                    representation,
                    row.min_support,
                    thread_counts=paper.THREAD_COUNTS,
                )
            )
        table = runtime_table(studies, f"{title} (simulated seconds)")
        series = speedup_series(studies)
        print(render_runtime_table(table))
        print()
        print(render_speedup_series(series, title="speedup vs one thread"))
        print()
        print(speedup_chart(series))
        print(f"({time.time() - started:.0f}s)\n")
        if not args.quick:
            from_studies(exp_id.rstrip("ab"), title, studies).save(
                RESULTS / f"{exp_id}.json"
            )

    if not args.quick:
        print("== regenerating EXPERIMENTS.md ==")
        subprocess.run(
            [sys.executable, str(ROOT / "scripts" / "generate_experiments_md.py")],
            check=True,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
