"""Benchmark: the mining query server under closed-loop load.

``repro serve`` exists so the expensive parts — parsing the dataset,
packing the bit matrix, mining — happen once per *distinct* query, not
once per request.  This script drives the server with closed-loop client
threads (each sends, waits for the answer, sends again) and writes
``BENCH_serve.json`` at the repo root:

* **requests_per_second.{cold,cache_hit,coalesced}** — sustained
  throughput per workload (machine-bound; recorded, not cross-gated);
* **latency_p50_seconds.* / latency_p99_seconds.*** — per-request
  latency percentiles per workload;
* **speedup_vs_cold.{cache_hit,coalesced}** — p50 latency ratio against
  the cold workload, the machine-independent metric the CI gate
  compares (``repro obs compare --ratios-only``).

Workloads (all POST ``/mine`` on one dataset + support):

* **cold** — ``fresh: true`` at concurrency 1: every request runs the
  engine (the cache and the index are bypassed);
* **cache_hit** — identical non-fresh requests after one priming call:
  every request is answered from the ledger-keyed cache;
* **coalesced** — ``fresh: true`` at concurrency 4: identical inflight
  requests coalesce onto one backend run.

With ``--shed-requests N`` the script additionally fires an N-wide
concurrent burst of fresh queries and asserts the admission layer sheds
the overflow with 429 + ``Retry-After`` (the load-shed path CI pins).

By default the server runs in-process (:class:`repro.serve.ServerThread`);
``--url`` targets an externally-booted ``repro serve`` instead — the CI
job uses that to exercise the real process.

    PYTHONPATH=src python scripts/bench_serve.py                  # full
    PYTHONPATH=src python scripts/bench_serve.py --smoke --check  # CI
"""

from __future__ import annotations

import argparse
import http.client
import json
import math
import os
import sys
import threading
import time
from pathlib import Path
from urllib.parse import urlsplit

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))


def _env_min_ratio(default: float) -> float:
    """--min-ratio default: REPRO_BENCH_MIN_RATIO env var wins if set."""
    raw = os.environ.get("REPRO_BENCH_MIN_RATIO")
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        print(f"warning: ignoring unparsable REPRO_BENCH_MIN_RATIO={raw!r}",
              file=sys.stderr)
        return default


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


class _Target:
    """Where the clients point: host, port, and the query payload."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    def connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=120)


def _post(
    conn: http.client.HTTPConnection, path: str, payload: bytes
) -> tuple[int, dict, dict[str, str]]:
    conn.request("POST", path, payload,
                 {"Content-Type": "application/json"})
    response = conn.getresponse()
    body = response.read()
    return (
        response.status,
        json.loads(body) if body else {},
        {k.lower(): v for k, v in response.getheaders()},
    )


def run_workload(
    target: _Target,
    payload: dict,
    *,
    n_requests: int,
    concurrency: int,
) -> dict[str, float]:
    """Closed-loop: ``concurrency`` threads split ``n_requests`` evenly."""
    payload_bytes = json.dumps(payload).encode()
    latencies: list[float] = []
    failures: list[int] = []
    lock = threading.Lock()

    def worker(count: int) -> None:
        conn = target.connect()
        try:
            for _ in range(count):
                started = time.perf_counter()
                status, _, _ = _post(conn, "/mine", payload_bytes)
                elapsed = time.perf_counter() - started
                with lock:
                    if status == 200:
                        latencies.append(elapsed)
                    else:
                        failures.append(status)
        finally:
            conn.close()

    per_thread = [n_requests // concurrency] * concurrency
    for i in range(n_requests % concurrency):
        per_thread[i] += 1
    threads = [
        threading.Thread(target=worker, args=(count,))
        for count in per_thread if count
    ]
    wall_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - wall_start
    if failures:
        raise RuntimeError(
            f"{len(failures)} request(s) failed with statuses "
            f"{sorted(set(failures))}"
        )
    ordered = sorted(latencies)
    return {
        "requests": len(ordered),
        "wall_seconds": wall,
        "requests_per_second": len(ordered) / wall if wall else 0.0,
        "p50_seconds": _percentile(ordered, 0.50),
        "p99_seconds": _percentile(ordered, 0.99),
    }


def run_shed_burst(
    target: _Target, payload: dict, n_requests: int
) -> dict[str, object]:
    """Fire ``n_requests`` concurrently; count 200s vs shed 429s."""
    payload_bytes = json.dumps(dict(payload, fresh=True)).encode()
    results: list[tuple[int, str | None]] = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_requests)

    def worker() -> None:
        conn = target.connect()
        try:
            barrier.wait(timeout=30)
            status, _, headers = _post(conn, "/mine", payload_bytes)
            with lock:
                results.append((status, headers.get("retry-after")))
        except Exception:
            with lock:
                results.append((-1, None))
        finally:
            conn.close()

    threads = [threading.Thread(target=worker) for _ in range(n_requests)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    statuses = [s for s, _ in results]
    shed = [(s, ra) for s, ra in results if s == 429]
    return {
        "requests": n_requests,
        "ok_count": statuses.count(200),
        "shed_count": len(shed),
        "other": sorted(
            {s for s in statuses if s not in (200, 429)}
        ),
        "retry_after_present": all(ra is not None for _, ra in shed),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="T10I4",
                        help="dataset the queries target (default: T10I4)")
    parser.add_argument("--min-support", type=float, default=0.02,
                        help="query support threshold (default: 0.02)")
    parser.add_argument("--url", default=None,
                        help="base URL of an already-running repro serve "
                             "(default: boot one in-process)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI workload: fewer requests per phase")
    parser.add_argument("--requests", type=int, default=None,
                        help="override per-workload request count")
    parser.add_argument("--shed-requests", type=int, default=0,
                        help="also fire this many concurrent fresh queries "
                             "and require the admission layer to shed some "
                             "with 429 + Retry-After")
    parser.add_argument("--output", default=str(ROOT / "BENCH_serve.json"),
                        help="where to write the JSON record")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless cache hits beat cold mines by "
                             "--min-ratio (and the shed burst shed, if any)")
    parser.add_argument("--min-ratio", type=float,
                        default=_env_min_ratio(10.0),
                        help="cache-hit-vs-cold p50 speedup bar (default "
                             "10, or REPRO_BENCH_MIN_RATIO if set)")
    args = parser.parse_args()

    if args.requests is not None:
        n_cold = n_hits = n_coalesced = args.requests
    elif args.smoke:
        n_cold, n_hits, n_coalesced = 3, 30, 8
    else:
        n_cold, n_hits, n_coalesced = 6, 120, 24

    payload = {"dataset": args.dataset, "min_support": args.min_support}
    handle = None
    if args.url:
        parts = urlsplit(args.url)
        target = _Target(parts.hostname or "127.0.0.1", parts.port or 80)
        print(f"target: external server at {args.url}")
    else:
        from repro.datasets import get_dataset
        from repro.serve import MiningServer, ServerThread

        db = get_dataset(args.dataset)
        server = MiningServer(datasets=[db], max_inflight=8)
        handle = ServerThread(server).start()
        target = _Target(server.host, server.port)
        print(f"target: in-process server on port {server.port} "
              f"({db.n_transactions} transactions, {db.n_items} items)")

    try:
        conn = target.connect()
        status, answer, _ = _post(
            conn, "/mine", json.dumps(payload).encode()
        )
        conn.close()
        if status != 200:
            print(f"FATAL: priming query answered {status}: {answer}",
                  file=sys.stderr)
            return 2
        print(f"priming query: {answer['n_itemsets']} itemsets "
              f"(source={answer['source']})")

        workloads = {
            "cold": run_workload(
                target, dict(payload, fresh=True),
                n_requests=n_cold, concurrency=1,
            ),
            "cache_hit": run_workload(
                target, payload, n_requests=n_hits, concurrency=2,
            ),
            "coalesced": run_workload(
                target, dict(payload, fresh=True),
                n_requests=n_coalesced, concurrency=4,
            ),
        }
        for name, stats in workloads.items():
            print(f"  {name:<10s} {stats['requests']:4d} requests  "
                  f"{stats['requests_per_second']:10.1f} req/s  "
                  f"p50 {stats['p50_seconds'] * 1e3:9.3f} ms  "
                  f"p99 {stats['p99_seconds'] * 1e3:9.3f} ms")

        shed = None
        if args.shed_requests:
            shed = run_shed_burst(target, payload, args.shed_requests)
            print(f"  shed burst {shed['requests']} concurrent: "
                  f"{shed['ok_count']} ok, {shed['shed_count']} shed (429)"
                  + (f", other statuses {shed['other']}"
                     if shed["other"] else ""))
    finally:
        if handle is not None:
            handle.stop()

    cold_p50 = workloads["cold"]["p50_seconds"]
    speedup = {
        name: (cold_p50 / stats["p50_seconds"]
               if stats["p50_seconds"] else float("inf"))
        for name, stats in workloads.items() if name != "cold"
    }
    for name, ratio in speedup.items():
        print(f"  speedup_vs_cold.{name}: {ratio:.1f}x")

    record = {
        "dataset": args.dataset,
        "min_support": args.min_support,
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "external_url": args.url,
        "requests_per_second": {
            name: stats["requests_per_second"]
            for name, stats in workloads.items()
        },
        "latency_p50_seconds": {
            name: stats["p50_seconds"]
            for name, stats in workloads.items()
        },
        "latency_p99_seconds": {
            name: stats["p99_seconds"]
            for name, stats in workloads.items()
        },
        "speedup_vs_cold": speedup,
        "shed": shed,
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.output}")

    if args.check:
        failures = []
        if speedup["cache_hit"] < args.min_ratio:
            failures.append(
                f"cache-hit speedup {speedup['cache_hit']:.1f}x is below "
                f"the {args.min_ratio:.1f}x bar"
            )
        if shed is not None:
            if shed["shed_count"] == 0:
                failures.append(
                    f"{shed['requests']} concurrent requests produced no "
                    "429 — the admission layer never shed"
                )
            elif not shed["retry_after_present"]:
                failures.append("a 429 arrived without a Retry-After header")
            if shed["other"]:
                failures.append(
                    f"shed burst hit unexpected statuses {shed['other']}"
                )
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"OK: cache hits beat cold mines by >= {args.min_ratio:.1f}x "
              f"({speedup['cache_hit']:.1f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
