"""Microbenchmark: pure-Python vs NumPy-packed bitvector support counting.

The ``vectorized`` backend's whole value proposition is that one
``bitwise_and`` + table-lookup popcount over a packed matrix replaces a
Python-level loop over bytes.  This script measures exactly that claim on
a real candidate workload: every (i, j) item pair of a benchmark dataset,
support-counted three ways —

* ``python-loop``   — per-byte Python loop with the same 256-entry
  popcount table the NumPy kernel uses (the algorithmic baseline),
* ``numpy-pairwise`` — one :func:`popcount_bytes` call per pair,
* ``numpy-block``    — the whole workload in one :func:`intersect_pairs`
  call (what the vectorized Apriori backend actually does).

All three must produce identical supports; the block kernel is expected
to beat the Python loop by well over the 5x acceptance bar.  Results are
written to ``BENCH_kernels.json`` at the repo root (override with
``--output``).

    PYTHONPATH=src python scripts/bench_kernels.py                # full
    PYTHONPATH=src python scripts/bench_kernels.py --smoke --check  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.datasets import get_dataset, parse_fimi  # noqa: E402
from repro.representations.bitvector_numpy import (  # noqa: E402
    POPCOUNT8,
    intersect_pairs,
    pack_database,
    popcount_bytes,
)

SMOKE_FIMI = "\n".join(
    " ".join(str(i) for i in range(t % 17, t % 17 + 10)) for t in range(256)
)


def candidate_pairs(n_items: int, limit: int | None) -> tuple[np.ndarray, np.ndarray]:
    """All (i, j) item pairs with i < j, optionally truncated to ``limit``."""
    idx_i, idx_j = np.triu_indices(n_items, k=1)
    if limit is not None and idx_i.size > limit:
        idx_i, idx_j = idx_i[:limit], idx_j[:limit]
    return idx_i, idx_j


def support_python_loop(rows: list[list[int]], pairs) -> list[int]:
    """The baseline: byte-at-a-time AND + table popcount, in Python."""
    pop = POPCOUNT8.tolist()
    out = []
    for i, j in pairs:
        left, right = rows[i], rows[j]
        out.append(sum(pop[a & b] for a, b in zip(left, right)))
    return out


def support_numpy_pairwise(matrix: np.ndarray, pairs) -> list[int]:
    return [popcount_bytes(matrix[i] & matrix[j]) for i, j in pairs]


def support_numpy_block(matrix, idx_i, idx_j) -> np.ndarray:
    _children, supports = intersect_pairs(matrix[idx_i], matrix[idx_j])
    return supports


def _env_min_ratio(default: float) -> float:
    """--min-speedup default: REPRO_BENCH_MIN_RATIO env var wins if set."""
    raw = os.environ.get("REPRO_BENCH_MIN_RATIO")
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        print(f"warning: ignoring unparsable REPRO_BENCH_MIN_RATIO={raw!r}",
              file=sys.stderr)
        return default


def best_of(fn, repeats: int) -> tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best wall seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="chess",
                        help="registry dataset to pack (default: chess)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny synthetic workload, suitable for CI")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; best-of is reported")
    parser.add_argument("--max-pairs", type=int, default=None,
                        help="cap the number of candidate pairs")
    parser.add_argument("--output", default=str(ROOT / "BENCH_kernels.json"),
                        help="where to write the JSON record")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless block speedup >= --min-speedup")
    parser.add_argument("--min-speedup", type=float,
                        default=_env_min_ratio(5.0),
                        help="acceptance bar (default 5.0, or "
                             "REPRO_BENCH_MIN_RATIO if set)")
    args = parser.parse_args()

    if args.smoke:
        db = parse_fimi(SMOKE_FIMI, name="smoke")
        max_pairs = args.max_pairs if args.max_pairs is not None else 256
    else:
        db = get_dataset(args.dataset)
        max_pairs = args.max_pairs

    matrix = pack_database(db)
    idx_i, idx_j = candidate_pairs(db.n_items, max_pairs)
    pairs = list(zip(idx_i.tolist(), idx_j.tolist()))
    rows = [row.tolist() for row in matrix]

    t_python, ref = best_of(
        lambda: support_python_loop(rows, pairs), args.repeats)
    t_pairwise, got_pairwise = best_of(
        lambda: support_numpy_pairwise(matrix, pairs), args.repeats)
    t_block, got_block = best_of(
        lambda: support_numpy_block(matrix, idx_i, idx_j), args.repeats)

    if got_pairwise != ref or got_block.tolist() != ref:
        print("FATAL: kernel disagreement — supports do not match", file=sys.stderr)
        return 2

    record = {
        "dataset": db.name,
        "n_transactions": db.n_transactions,
        "n_items": db.n_items,
        "n_pairs": len(pairs),
        "bytes_per_vector": int(matrix.shape[1]),
        "repeats": args.repeats,
        "smoke": args.smoke,
        "seconds": {
            "python_loop": t_python,
            "numpy_pairwise": t_pairwise,
            "numpy_block": t_block,
        },
        "speedup_over_python": {
            "numpy_pairwise": t_python / t_pairwise if t_pairwise else None,
            "numpy_block": t_python / t_block if t_block else None,
        },
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")

    print(f"dataset={db.name}  pairs={len(pairs)}  "
          f"bytes/vector={matrix.shape[1]}")
    for name in ("python_loop", "numpy_pairwise", "numpy_block"):
        seconds = record["seconds"][name]
        suffix = ""
        if name != "python_loop":
            suffix = f"  ({record['speedup_over_python'][name]:.1f}x)"
        print(f"  {name:16s} {seconds * 1e3:10.3f} ms{suffix}")
    print(f"wrote {args.output}")

    if args.check:
        block_speedup = record["speedup_over_python"]["numpy_block"]
        if block_speedup < args.min_speedup:
            print(f"FAIL: block speedup {block_speedup:.1f}x < "
                  f"{args.min_speedup:.1f}x", file=sys.stderr)
            return 1
        print(f"OK: block speedup {block_speedup:.1f}x >= "
              f"{args.min_speedup:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
