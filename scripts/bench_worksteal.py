"""Benchmark: work-stealing Eclat vs top-level-class dispatch (finding 4).

The paper's fourth finding is a scaling ceiling: a dataset whose frequent-
item count is below the thread count cannot scale when only the outermost
loop (one task per top-level equivalence class) is parallelised — the
extra threads have nothing to pull.  ``schedule="worksteal"`` removes the
ceiling by spawning subtree classes as stealable tasks.  This script
quantifies that claim two ways and writes ``BENCH_worksteal.json`` at the
repo root:

* **measured** — wall clock for ``repro.mine(..., backend=
  "shared_memory")`` on a synthetic low-item-count / deep-subtree
  workload (items < workers), default dispatch vs ``worksteal``.
* **simulated** — the deterministic nested-task simulator
  (:mod:`repro.parallel.worksteal_sim`) on two task trees: a finding-4
  shape where stealing must win, and a payload-dominated shape where the
  steal tax must make it lose.  This crossover is machine-independent.

Honest-reporting note: the record includes ``cpu_count``; on a container
with fewer than 4 CPUs the measured comparison can only show scheduling
overhead, so ``--check`` gates only the simulated crossover there and
says so.  The measured ratio bar (default 1.3x) is also configurable via
the ``REPRO_BENCH_MIN_RATIO`` environment variable, which CI sets.

    PYTHONPATH=src python scripts/bench_worksteal.py              # full
    PYTHONPATH=src python scripts/bench_worksteal.py --smoke --check  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.datasets import parse_fimi  # noqa: E402
from repro.engine import mine  # noqa: E402
from repro.machine import BLACKLIGHT  # noqa: E402
from repro.parallel import eclat_task_tree, worksteal_advantage  # noqa: E402


def _env_min_ratio(default: float) -> float:
    """--min-ratio default: REPRO_BENCH_MIN_RATIO env var wins if set."""
    raw = os.environ.get("REPRO_BENCH_MIN_RATIO")
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        print(f"warning: ignoring unparsable REPRO_BENCH_MIN_RATIO={raw!r}",
              file=sys.stderr)
        return default


def finding4_fimi(n_items: int, n_transactions: int, density: float,
                  seed: int = 7) -> str:
    """A dense low-item-count database: nearly every subtree is deep.

    With ``density`` close to 1 almost the whole ``2**n_items`` lattice is
    frequent at a moderate threshold, so each of the few top-level classes
    is an expensive deep subtree — exactly the shape that starves
    outermost-loop-only parallelism when ``n_items < n_workers``.
    """
    rng = random.Random(seed)
    lines = []
    for _ in range(n_transactions):
        tx = [i for i in range(n_items) if rng.random() < density]
        if not tx:
            tx = [rng.randrange(n_items)]
        lines.append(" ".join(str(i) for i in tx))
    return "\n".join(lines)


def best_of(fn, repeats: int) -> tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (best wall seconds, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def simulate_crossover(n_threads: int) -> dict:
    """Deterministic win/lose predictions from the nested-task simulator.

    * ``win``  — 4 roots, deep/branchy subtrees, tiny payloads: fewer
      top-level classes than threads, so static dispatch idles most of
      the machine and stealing must pay.
    * ``lose`` — the same tree with near-zero compute per task and multi-
      megabyte payloads: every steal ships more NumaLink bytes than the
      work it unlocks, so stealing must lose.
    """
    win_roots = eclat_task_tree(n_classes=4, depth=6, branching=2,
                                task_seconds=1e-4, payload_bytes=512)
    lose_roots = eclat_task_tree(n_classes=4, depth=6, branching=2,
                                 task_seconds=1e-7,
                                 payload_bytes=4 * 1024 * 1024)
    win = worksteal_advantage(win_roots, n_threads, machine=BLACKLIGHT)
    lose = worksteal_advantage(lose_roots, n_threads, machine=BLACKLIGHT)
    return {"n_threads": n_threads, "win": win, "lose": lose}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--items", type=int, default=10,
                        help="frequent-item count; keep below --workers "
                             "(default: 10)")
    parser.add_argument("--transactions", type=int, default=1500,
                        help="synthetic database size (default: 1500)")
    parser.add_argument("--density", type=float, default=0.88,
                        help="per-item transaction membership probability")
    parser.add_argument("--min-support", type=float, default=0.3,
                        help="support threshold (default: 0.3 relative)")
    parser.add_argument("--workers", type=int, default=16,
                        help="worker count; the point is workers > items "
                             "(default: 16)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload + 2 workers, for CI")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats; best-of is reported")
    parser.add_argument("--output", default=str(ROOT / "BENCH_worksteal.json"),
                        help="where to write the JSON record")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 unless the simulator predicts the "
                             "crossover and (with >= 4 cpus) the measured "
                             "worksteal/static ratio >= --min-ratio")
    parser.add_argument("--min-ratio", type=float,
                        default=_env_min_ratio(1.3),
                        help="measured worksteal-over-static bar (default "
                             "1.3, or REPRO_BENCH_MIN_RATIO if set)")
    args = parser.parse_args()

    if args.smoke:
        items, transactions, workers = 6, 200, 2
        min_support = 0.4
    else:
        items, transactions, workers = (
            args.items, args.transactions, args.workers)
        min_support = args.min_support

    db = parse_fimi(
        finding4_fimi(items, transactions, args.density),
        name=f"finding4-{items}x{transactions}",
    )

    t_static, baseline = best_of(
        lambda: mine(db, algorithm="eclat", backend="shared_memory",
                     min_support=min_support, n_workers=workers),
        args.repeats,
    )
    t_ws, ws_result = best_of(
        lambda: mine(db, algorithm="eclat", backend="shared_memory",
                     min_support=min_support, n_workers=workers,
                     schedule="worksteal"),
        args.repeats,
    )
    if ws_result.itemsets != baseline.itemsets:
        print("FATAL: worksteal disagrees with the default-dispatch run",
              file=sys.stderr)
        return 2

    sim = simulate_crossover(n_threads=max(workers, 8))

    record = {
        "dataset": db.name,
        "n_transactions": db.n_transactions,
        "n_items": db.n_items,
        "min_support": min_support,
        "n_itemsets": len(baseline.itemsets),
        "n_workers": workers,
        "cpu_count": os.cpu_count(),
        "repeats": args.repeats,
        "smoke": args.smoke,
        "static_dispatch_seconds": t_static,
        "worksteal_seconds": t_ws,
        "measured_speedup": {
            "worksteal_vs_static": (t_static / t_ws) if t_ws else None,
        },
        "sim_speedup": {
            "few_roots_deep_tree": sim["win"]["speedup"],
            "payload_dominated": sim["lose"]["speedup"],
        },
        "simulated": sim,
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")

    ratio = t_static / t_ws if t_ws else float("inf")
    print(f"dataset={db.name}  itemsets={len(baseline.itemsets)}  "
          f"workers={workers}  cpu_count={record['cpu_count']}")
    print(f"  default dispatch      {t_static * 1e3:10.3f} ms")
    print(f"  worksteal             {t_ws * 1e3:10.3f} ms  ({ratio:.2f}x)")
    print(f"  sim few-roots/deep    {sim['win']['speedup']:.2f}x "
          f"(steals={sim['win']['steal_events']})")
    print(f"  sim payload-dominated {sim['lose']['speedup']:.5f}x "
          f"(stealing should lose)")
    print(f"wrote {args.output}")

    if args.check:
        failed = False
        if sim["win"]["speedup"] < args.min_ratio:
            print(f"FAIL: simulator predicts only "
                  f"{sim['win']['speedup']:.2f}x on the finding-4 tree "
                  f"(< {args.min_ratio:.1f}x)", file=sys.stderr)
            failed = True
        if sim["lose"]["speedup"] >= 1.0:
            print(f"FAIL: simulator says stealing wins "
                  f"({sim['lose']['speedup']:.2f}x) even when payload "
                  f"shipping dominates", file=sys.stderr)
            failed = True
        cpus = record["cpu_count"] or 1
        if args.smoke:
            print("SKIP measured check: smoke workload runs for "
                  "milliseconds — the ratio is timing noise; only the "
                  "deterministic simulator gates here")
        elif cpus < 4:
            print(f"SKIP measured check: cpu_count={cpus} < 4 — every "
                  "worker shares a core, so the ratio only measures "
                  "overhead; recorded honest numbers instead")
        elif ratio < args.min_ratio:
            print(f"FAIL: measured worksteal speedup {ratio:.2f}x < "
                  f"{args.min_ratio:.1f}x", file=sys.stderr)
            failed = True
        else:
            print(f"OK: measured worksteal speedup {ratio:.2f}x >= "
                  f"{args.min_ratio:.1f}x")
        if failed:
            return 1
        print("OK: simulator predicts the worksteal crossover")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
