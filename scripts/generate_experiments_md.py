"""Regenerate EXPERIMENTS.md from the benchmark records.

Run the benchmark suite first (it writes JSON records and rendered tables
under ``benchmarks/results/``), then:

    python scripts/generate_experiments_md.py

so the documented numbers can never drift from what the benches measured.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import ExperimentRecord

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"

HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction of Zhang, Zhang & Bakos, *Frequent Itemset Mining on
Large-Scale Shared Memory Machines*, IEEE CLUSTER 2011.

**How to read this file.**  Every runtime/speedup number below is
*simulated wall time on the modelled Blacklight* (see DESIGN.md: the
machine model replays measured per-task workload traces of the real
miners; CPython cannot time 1024 shared-memory threads directly).  The
reproduction targets are the paper's *shapes* — which configuration
scales, which stalls, and why — not absolute seconds.  Two further
caveats:

* the archival copy of the paper has unreadable tables (the OCR dropped
  all numeric cells), so paper-side numbers are limited to the few values
  quoted in the prose: Apriori+diffset reaching ~52x on mushroom at 1024
  threads, Eclat+tidset reaching ~71x on pumsb, and the qualitative
  scalable/not-scalable verdicts;
* datasets are structural surrogates for the FIMI originals (Table I
  statistics match; see DESIGN.md), and support levels are chosen per
  surrogate, so per-dataset magnitudes differ from the authors' runs.

Regenerate everything with `pytest benchmarks/ --benchmark-only`, then
refresh this file with `python scripts/generate_experiments_md.py`.
"""

CLAIMS = """\
## Claim-by-claim scorecard

| # | Paper claim (Abstract / Section V) | Status | Evidence |
|---|---|---|---|
| C1 | Apriori with tidset is "not scalable beyond 16 threads (one blade)" | **Reproduced** on all four datasets: every tidset curve plateaus/degrades, never exceeding ~19x | E3 |
| C2 | Apriori with bitvector is likewise not scalable | **Reproduced on the census-scale rows** (pumsb plateaus; pumsb_star collapses back to its one-blade level by 1024 threads). *Deviation:* on chess/mushroom our 400 B-1 KB bitvectors stay cache-resident and scale — the claim tracks payload width, which tracks transaction count | E3 |
| C3 | Apriori is "only scalable when used with diffset" | **Reproduced in relative terms**: diffset is the only non-bitvector format whose curves keep rising past one blade (chess 33x, pumsb_star 29x peak) and it beats tidset in simulated time at every thread count on every dataset. *Deviation:* mushroom/pumsb diffset peak near ~17-20x rather than the paper's 52x — our surrogate diffsets at those supports are bigger relative to tidsets than the real UCI data's (E9 measures the ratio) | E2, E9 |
| C4 | Eclat is scalable for all three representations | **Reproduced in shape**: every Eclat curve is monotone non-decreasing to 1024 threads (no degradation), for all three formats on all four datasets. *Deviation:* plateau heights (4-16x) sit below the paper's best because the paper's own task bound binds — parallelism cannot exceed the number of frequent items, and our surrogates mine at supports with 16-52 frequent items | E4-E6 |
| C5 | Eclat achieves its best performance with diffset | **Reproduced in absolute time** on the dense sets (diffset is Eclat's fastest format on chess at every thread count) | E6 |
| C6 | tidset/bitvector footprints are "one order of magnitude larger than the diffset's" | **Reproduced on chess** (12x per generation); mushroom shows a consistent but smaller 3x stored-payload gap | E9 |
| C7 | Datasets with fewer (frequent) items than threads do not scale beyond the item count | **Reproduced**: Quest-style T40I10 speedup is bounded by its frequent-item count and flat beyond it | E7 |
| C8 | Static scheduling suffices for Apriori; dynamic chunk-1 for Eclat | Ablated: schedule choice moves chess Apriori by <2x at 1024 threads, while the task *decomposition* (top-level vs level-synchronous Eclat) matters more | E8 |
| C9 | "Vertical representation generally offers one order of magnitude of performance gain" (Section II-B) | **Reproduced**: horizontal Apriori costs 23x the element work of tidset Apriori on chess and would need ~19M lock-protected counter increments in parallel | E11 |
| C10 | Hyper-threading "does not improve our program performance" (Section V) | **Reproduced**: doubling contexts per core on the SMT machine variant improves the one-blade chess Apriori time by only ~1.1x — the counting loops are traffic-bound and SMT adds no bandwidth | E12 |
"""


def _series_table(record: ExperimentRecord) -> str:
    lines = []
    counts = record.series[0].thread_counts if record.series else []
    header = "| dataset@support | " + " | ".join(str(t) for t in counts) + " |"
    sep = "|---" * (len(counts) + 1) + "|"
    lines.append(header)
    lines.append(sep)
    for s in record.series:
        cells = " | ".join(f"{v:.1f}" for v in s.speedups)
        lines.append(f"| {s.label} | {cells} |")
    return "\n".join(lines)


SECTION_NOTES = {
    "E2": (
        "Table II + Figure 5 — Apriori with diffset",
        "Paper: 'we achieve much better scalability ... a speedup of 52X "
        "for [1024 threads] for the mushroom dataset.'  Measured: curves "
        "keep rising past one blade on chess (peak ~38x) and pumsb_star "
        "(peak ~29x); mushroom/pumsb plateau near 17-20x (surrogate "
        "diffsets are relatively larger there — see C3).",
    ),
    "E3": (
        "Section V-A — Apriori with tidset and bitvector",
        "Paper: 'the tidset and bitvector implementation did not show "
        "scalability beyond 16 [threads], or one blade.'  Measured: every "
        "tidset curve plateaus (best point <=19x, ends 14-16x); bitvector "
        "stalls on the 49,046-row census data and scales only where its "
        "payload shrinks below a kilobyte (chess).",
    ),
    "E4": (
        "Table III + Figure 6 — Eclat with tidset",
        "Paper: 'all the datasets scale with the number of [threads]', "
        "best result '7[1]X' for pumsb.  Measured: monotone curves for "
        "every dataset; plateau heights 4-16x, set by the top-level task "
        "count and the largest recursive subtree (the paper's own "
        "'poses a limit on the possible number of threads' caveat).",
    ),
    "E5": (
        "Table VI + Figure 7 — Eclat with bitvector",
        "Measured: same monotone shape as tidset; absolute times are the "
        "fastest of the three formats on the small-row datasets (fixed "
        "sub-kilobyte payloads).",
    ),
    "E6": (
        "Table V + Figure 8 — Eclat with diffset",
        "Paper: Eclat 'achieves the best performance with diffset'.  "
        "Measured: diffset is Eclat's fastest format in simulated seconds "
        "on dense chess at every thread count; pumsb_star (the stripped, "
        "sparser variant) is the one dataset where its level-1 diffsets "
        "are large enough to cost it the lead — consistent with Zaki's "
        "own observation that diffsets suit dense data.",
    ),
}


def main() -> None:
    parts = [HEADER, CLAIMS]

    parts.append("## Per-experiment detail (speedup vs one thread)\n")
    for exp_id in ("E2", "E3", "E4", "E5", "E6"):
        path = RESULTS / f"{exp_id}.json"
        if not path.exists():
            parts.append(f"### {exp_id}\n\n*(run the benchmarks first)*\n")
            continue
        record = ExperimentRecord.load(path)
        title, note = SECTION_NOTES[exp_id]
        parts.append(f"### {exp_id} — {title}\n")
        parts.append(note + "\n")
        parts.append(_series_table(record) + "\n")

    parts.append(
        "### E1, E7-E10\n\n"
        "* **E1 (Table I)**: surrogate statistics match the paper's table; "
        "see `benchmarks/results/table1_datasets.txt` for the side-by-side.\n"
        "* **E7 (item-count limit)**: see "
        "`benchmarks/results/e7_item_limited_scaling.txt`.\n"
        "* **E8 (ablations)**: schedule, base placement, and Eclat task "
        "decomposition — `benchmarks/results/e8_ablation_scheduling.txt`.\n"
        "* **E9 (memory footprint)**: per-generation payload bytes per "
        "format — `benchmarks/results/e9_ablation_memory_footprint.txt`.\n"
        "* **E10 (real kernels)**: wall-clock pytest-benchmark timings of "
        "the combine kernels and full miners (see the benchmark table in "
        "`bench_output.txt`).\n"
        "* **E11 (vertical vs horizontal)**: the Section II-B "
        "order-of-magnitude claim — "
        "`benchmarks/results/e11_vertical_vs_horizontal.txt`.\n"
        "* **E12 (hybrid + SMT)**: the adaptive-representation and "
        "hyper-threading extensions — "
        "`benchmarks/results/e12_ablation_hybrid_smt.txt`.\n"
    )

    out = ROOT / "EXPERIMENTS.md"
    out.write_text("\n".join(parts))
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
