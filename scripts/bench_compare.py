"""Benchmark regression gate: diff two bench/ledger records, fail on slowdown.

A thin, CI-friendly wrapper over :mod:`repro.obs.compare` — the same
comparator behind ``python -m repro obs compare``.  Point it at two
``BENCH_kernels.json`` / ``BENCH_shared_memory.json`` snapshots (or two
ledger-record JSON dumps) and it exits nonzero when any shared metric
regressed past the threshold:

    PYTHONPATH=src python scripts/bench_compare.py \
        BENCH_kernels.json /tmp/BENCH_kernels.new.json --threshold 0.25

Exit codes: 0 = pass (or records incomparable — different workload — which
is a skip, not a failure), 1 = regression, 2 = incomparable under
``--strict``.

Cross-machine note: absolute seconds measured on different hardware are
not comparable; ``--ratios-only`` restricts the gate to the
machine-independent speedup ratios (each record's speedup is normalized by
its own same-machine baseline), which is what CI uses against the
committed baselines.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.obs.compare import (  # noqa: E402
    DEFAULT_THRESHOLD,
    compare_records,
    load_record,
    render_comparison,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline JSON record")
    parser.add_argument("current", help="current JSON record")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="relative slowdown that fails the gate (default 0.25)",
    )
    parser.add_argument(
        "--ratios-only", action="store_true",
        help="gate only on machine-independent speedup ratios",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 2 instead of 0 when the records are not comparable",
    )
    parser.add_argument(
        "--metric", action="append", metavar="NAME",
        help="restrict to exact metric name(s); repeatable",
    )
    args = parser.parse_args()

    try:
        base = load_record(args.baseline)
        current = load_record(args.current)
    except (FileNotFoundError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    comparison = compare_records(
        base, current,
        ratios_only=args.ratios_only,
        metrics=args.metric or None,
    )
    print(render_comparison(comparison, args.threshold))
    code = comparison.exit_code(args.threshold, strict=args.strict)
    if code == 1:
        # Repeat just the offending deltas on stderr so a failing CI job's
        # error tail shows exactly which metrics sank the gate, without
        # scrolling back through the full comparison.
        print("regressed metrics:", file=sys.stderr)
        for delta in comparison.regressions(args.threshold):
            print(f"  {delta.describe(args.threshold)}", file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
