"""The unified mining facade: ``repro.mine()`` and ``repro.engine.execute()``.

One entry point covers every algorithm × representation × backend
combination the registry knows::

    result = repro.mine(db, algorithm="eclat", representation="bitvector_numpy",
                        backend="vectorized", min_support=0.4)

The engine owns, in order:

1. **validation** — algorithm/backend resolution against the registry,
   ``min_support`` resolution to an absolute count, option checking — all
   failures raised as :mod:`repro.errors` types, never bare ``ValueError`` /
   ``KeyError``;
2. **representation selection** — ``representation="auto"`` picks a format
   from the backend's preference (vectorized → packed bitvectors) or, for
   the general backends, from database density (dense → diffset, the
   paper's winner; sparse → tidset); explicit incompatible choices raise
   :class:`~repro.errors.UnsupportedCombinationError`;
3. **observability threading** — an optional :class:`repro.obs.ObsContext`
   is passed through to instrumented runners and always gets one
   engine-level wall-clock span plus a run counter;
4. **result normalization** — every backend's output is stamped with the
   canonical ``algorithm`` / ``backend`` names and the resolved absolute
   ``min_support``, so downstream code sees one shape regardless of which
   runner produced it.

All parameters after ``db`` are keyword-only; this is the naming contract
(``min_support``, ``obs``) the rest of the codebase converged on.
"""

from __future__ import annotations

import inspect
import time
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.apriori import AprioriRun, execute_apriori
from repro.core.eclat import EclatRun, execute_eclat
from repro.core.fpgrowth import fpgrowth as _fpgrowth
from repro.core.result import MiningResult, resolve_min_support
from repro.datasets.transaction_db import TransactionDatabase
from repro.engine.registry import (
    BackendEntry,
    check_representation,
    get_backend_entry,
    register_backend,
)
from repro.engine.vectorized import apriori_vectorized, eclat_vectorized
from repro.errors import ConfigurationError
from repro.obs.anatomy import anatomy_summary
from repro.obs.sampler import maybe_start_sampler
from repro.representations import REPRESENTATIONS, Representation, get_representation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import ObsContext

#: Density (mean transaction length / item count) above which ``auto``
#: prefers the diffset encoding, mirroring the paper's dense-data findings.
AUTO_DENSE_THRESHOLD = 0.25


def _database_density(db: TransactionDatabase) -> float:
    if db.n_transactions == 0 or db.n_items == 0:
        return 0.0
    avg_len = sum(t.size for t in db) / db.n_transactions
    return avg_len / db.n_items


def _auto_representation(entry: BackendEntry, db: TransactionDatabase) -> str:
    """The engine's representation choice when the caller says ``auto``."""
    if entry.preferred_representation is not None:
        return entry.preferred_representation
    if entry.representations is not None:
        return sorted(entry.representations)[0]
    dense = _database_density(db) >= AUTO_DENSE_THRESHOLD
    return "diffset" if dense else "tidset"


def _resolve_representation(
    representation: Representation | str,
    entry: BackendEntry,
    db: TransactionDatabase,
) -> str:
    if isinstance(representation, Representation):
        name = representation.name
    else:
        name = representation
    if name == "auto":
        return _auto_representation(entry, db)
    if entry.representations is None and name not in REPRESENTATIONS:
        raise ConfigurationError(
            f"unknown representation {name!r}; choose from "
            f"{sorted(REPRESENTATIONS)} or 'auto'"
        )
    check_representation(entry, name)
    return name


def _check_options(entry: BackendEntry, options: dict) -> None:
    unknown = set(options) - set(entry.options)
    if unknown:
        raise ConfigurationError(
            f"unknown option(s) {sorted(unknown)} for backend "
            f"{entry.backend!r} / algorithm {entry.algorithm!r}; supported "
            f"options: {sorted(entry.options)}"
        )


def _ledger_config(
    algorithm: str, rep_name: str, backend: str, min_sup: int, options: dict
) -> dict:
    """The canonical run configuration hashed into the ledger.

    Only values with stable textual forms are kept — an option holding an
    arbitrary object (a collector sink, say) would stringify with a memory
    address and destroy config-hash stability across sessions.
    """
    config = {
        "algorithm": algorithm,
        "representation": rep_name,
        "backend": backend,
        "min_support": min_sup,
    }
    for key, value in options.items():
        if value is None or isinstance(value, (str, int, float, bool)):
            config[key] = value
        else:
            text = str(value)
            if " at 0x" not in text:
                config[key] = text
    return config


def resolve_run_config(
    db: TransactionDatabase,
    *,
    algorithm: str = "eclat",
    representation: Representation | str = "auto",
    backend: str = "serial",
    min_support: float | int,
    **options,
) -> dict:
    """Validate a run request and return its **canonical ledger config**.

    This is the exact dict :func:`mine` hashes into the run ledger
    (``config_hash``): algorithm and backend resolved against the
    registry, ``representation="auto"`` resolved for this database, the
    support threshold resolved to an absolute count, and options checked
    and canonicalized.  Callers that need the ledger identity of a run
    *without running it* — the query server keys its answer cache on the
    ledger's (config hash, dataset fingerprint) pair — use this instead
    of duplicating the resolution rules.

    Raises the same typed errors as :func:`mine` for invalid requests.
    """
    entry = get_backend_entry(backend, algorithm)
    rep_name = _resolve_representation(representation, entry, db)
    min_sup = resolve_min_support(db, min_support)
    _check_options(entry, options)
    return _ledger_config(algorithm, rep_name, backend, min_sup, options)


@lru_cache(maxsize=None)
def _accepts_live(runner) -> bool:
    """Whether a registered runner can take the ``live=`` tracker kwarg.

    Third parties register runners with arbitrary signatures
    (:func:`repro.engine.registry.register_backend`); the engine only
    forwards the tracker to runners that declare ``live`` (or ``**kwargs``)
    so old runners keep working unchanged — they just report coarse 0 → 1
    progress via the engine's own :meth:`ProgressTracker.finish`.
    """
    try:
        parameters = inspect.signature(runner).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return False
    if "live" in parameters:
        return True
    return any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in parameters.values()
    )


def _resolve_live(
    live, db, algorithm, backend, rep_name, min_sup, options, ledger_obj
):
    """Build (or pass through) the run's ProgressTracker; None = disabled.

    ``live`` accepts: ``None`` (resolve from ``REPRO_LIVE``, which defaults
    the layer **on**), ``False`` (force off), a directory path, or a
    ready-made :class:`repro.obs.live.ProgressTracker` (the CLI passes one
    so it can attach a renderer callback).  The ETA's prior is the median
    ledger wall time of earlier runs with the same (config hash, dataset
    fingerprint) when a ledger is available; a caller with a cost-model
    prediction sets ``EtaEstimator.predicted_seconds`` on its own tracker.
    """
    from repro.obs import live as live_mod

    if live is False:
        return None
    tracker = live if isinstance(live, live_mod.ProgressTracker) else None
    directory: Path | None = None
    if tracker is None:
        if live is None:
            directory = live_mod.default_live_dir()
            if directory is None:
                return None
        else:
            directory = Path(live)
    history = None
    need_prior = tracker is None or tracker.eta.prior() is None
    if ledger_obj is not None and need_prior:
        from repro.obs.ledger import config_hash, fingerprint_database

        try:
            history = live_mod.history_seconds(
                ledger_obj,
                config_hash(_ledger_config(
                    algorithm, rep_name, backend, min_sup, options
                )),
                fingerprint_database(db).get("sha256", ""),
            )
        except Exception:
            history = None  # an unreadable history costs the prior, not the run
    if tracker is not None:
        if history is not None:
            tracker.eta.history_seconds = history
        return tracker
    return live_mod.ProgressTracker(
        kind="mine",
        backend=backend,
        algorithm=algorithm,
        dataset=db.name,
        directory=directory,
        eta=live_mod.EtaEstimator(history_seconds=history),
    )


def _mine_from_index(
    db: TransactionDatabase,
    index,
    min_support: float | int,
    *,
    obs: "ObsContext | None",
    ledger,
) -> MiningResult:
    """Serve ``mine()`` from a prebuilt itemset index instead of mining.

    The index's baked-in dataset fingerprint must match ``db`` and the
    resolved support must clear the index's build floor; both are checked,
    so a stale or foreign artifact is a typed error, not a wrong answer.
    Served queries are recorded ledger runs (``kind="index-query"``).
    """
    from repro.index import ItemsetIndex
    from repro.obs.ledger import default_ledger, record_run

    opened_here = False
    if not isinstance(index, ItemsetIndex):
        index = ItemsetIndex.open(index)
        opened_here = True
    try:
        index.check_database(db)
        min_sup = resolve_min_support(db, min_support)
        ledger_active = ledger is not None or default_ledger() is not None
        track = obs is not None or ledger_active
        wall_start = time.perf_counter() if track else 0.0
        cpu_start = time.process_time() if ledger_active else 0.0
        result = index.frequent_at(min_sup)
        result.dataset = db.name
        if obs is not None:
            obs.metrics.counter("engine.index.frequent_at").inc()
            obs.sink.wall_event(
                "engine.mine", wall_start, cat="engine",
                args={
                    "algorithm": "index",
                    "backend": "index",
                    "itemsets": len(result),
                },
            )
        if ledger_active:
            record_run(
                "index-query",
                db=db,
                config={
                    "algorithm": "index",
                    "backend": "index",
                    "query": "frequent_at",
                    "min_support": min_sup,
                    "index_config_hash": index.config_hash,
                    "floor": index.floor,
                },
                wall_seconds=time.perf_counter() - wall_start,
                cpu_seconds=time.process_time() - cpu_start,
                n_itemsets=len(result),
                obs=obs,
                ledger=ledger,
            )
        return result
    finally:
        if opened_here:
            index.close()


def mine(
    db: TransactionDatabase | None = None,
    *,
    algorithm: str = "eclat",
    representation: Representation | str = "auto",
    backend: str = "serial",
    min_support: float | int,
    obs: "ObsContext | None" = None,
    ledger=None,
    live=None,
    index=None,
    db_path: str | Path | None = None,
    max_memory_bytes: int | None = None,
    n_partitions: int | None = None,
    **options,
) -> MiningResult:
    """Mine frequent itemsets — the one documented entry point.

    Parameters
    ----------
    db:
        The transaction database.  Omit it (and pass ``db_path``) to mine
        out-of-core from a file instead.
    algorithm:
        ``"apriori"``, ``"eclat"``, ``"fpgrowth"``, or ``"charm"``
        (closed itemsets only; both serial).
    representation:
        A registered vertical format name (``tidset``, ``bitvector``,
        ``bitvector_numpy``, ``diffset``, ``hybrid``), a
        :class:`Representation` instance, or ``"auto"`` to let the engine
        pick one for the database and backend.
    backend:
        ``"serial"``, ``"multiprocessing"``, ``"vectorized"``, or
        ``"shared_memory"`` (see
        :func:`repro.engine.supported_combinations`).
    min_support:
        Relative (float in (0, 1]) or absolute (int >= 1) threshold.
    obs:
        Optional :class:`repro.obs.ObsContext`; threaded through to
        instrumented runners, and the engine always records one
        ``engine.mine`` span and run counter.
    ledger:
        Optional :class:`repro.obs.Ledger` to append a run record to.
        When omitted, the process default applies (``REPRO_LEDGER`` env
        var or :func:`repro.obs.set_default_ledger`; no ledger → no
        record, no filesystem writes).
    live:
        Live-introspection control.  ``None`` (default) resolves
        ``REPRO_LIVE`` — the live layer is **on by default** and writes an
        atomically-replaced status file under ``.repro/live/<run_id>.json``
        (progress, worker heartbeats, stalls, ETA; see
        :mod:`repro.obs.live`).  ``False`` disables it for this call, a
        path relocates the status directory, and a ready-made
        :class:`repro.obs.live.ProgressTracker` is used as-is.
    index:
        A prebuilt :class:`repro.index.ItemsetIndex` (or a path to a saved
        artifact) to **serve** the answer from instead of mining: the
        result is bit-identical to a fresh mine at ``min_support`` but
        costs a lattice restore, not a database pass.  The index's dataset
        fingerprint must match ``db`` and ``min_support`` must be at or
        above the index's build floor
        (:class:`~repro.errors.IndexArtifactError` /
        :class:`~repro.errors.ConfigurationError` otherwise).  When set,
        ``algorithm`` / ``representation`` / ``backend`` / ``live`` and
        backend options are ignored — nothing executes.
    db_path:
        Path to a FIMI ``.dat`` file to mine **out-of-core** via SON
        two-phase partitioned mining (:mod:`repro.outofcore`): the file is
        streamed in bounded-memory partitions, never fully loaded, and the
        result is bit-identical to mining ``read_fimi(db_path)`` in
        memory.  Mutually exclusive with ``db`` and ``index``.
    max_memory_bytes:
        Out-of-core only: per-partition memory budget; the planner picks
        the smallest partition count whose chunks fit
        (:func:`repro.outofcore.plan_partitions`).
    n_partitions:
        Out-of-core only: explicit partition count (overrides the
        budget-derived plan).
    options:
        Backend-specific extras (e.g. ``n_workers`` for multiprocessing,
        ``prune`` / ``max_generations`` for Apriori, ``item_order`` for
        Eclat).  Unknown options raise
        :class:`~repro.errors.ConfigurationError`.

    Raises
    ------
    repro.errors.UnsupportedCombinationError
        If the algorithm × representation × backend combination is not
        registered.
    repro.errors.ConfigurationError
        For invalid thresholds, unknown representations, or unknown
        options.
    """
    from repro.obs.ledger import default_ledger, record_run

    if db_path is not None:
        if db is not None or index is not None:
            raise ConfigurationError(
                "db_path= is mutually exclusive with db and index; "
                "out-of-core mining streams the file itself"
            )
        from repro.outofcore import mine_out_of_core

        return mine_out_of_core(
            db_path,
            min_support=min_support,
            algorithm=algorithm,
            representation=(
                representation.name
                if isinstance(representation, Representation)
                else representation
            ),
            backend=backend,
            n_partitions=n_partitions,
            max_memory_bytes=max_memory_bytes,
            obs=obs,
            ledger=ledger,
            live=live,
            **options,
        )
    if db is None:
        raise ConfigurationError(
            "mine() needs a database: pass db (in-memory) or db_path "
            "(out-of-core)"
        )
    if max_memory_bytes is not None or n_partitions is not None:
        raise ConfigurationError(
            "max_memory_bytes / n_partitions apply to out-of-core mining "
            "only; pass db_path= instead of db"
        )

    if index is not None:
        return _mine_from_index(
            db, index, min_support, obs=obs, ledger=ledger
        )

    entry = get_backend_entry(backend, algorithm)
    rep_name = _resolve_representation(representation, entry, db)
    min_sup = resolve_min_support(db, min_support)
    _check_options(entry, options)

    ledger_obj = ledger if ledger is not None else default_ledger()
    ledger_active = ledger_obj is not None
    tracker = _resolve_live(
        live, db, algorithm, backend, rep_name, min_sup, options, ledger_obj
    )
    track = obs is not None or ledger_active
    wall_start = time.perf_counter() if track else 0.0
    cpu_start = time.process_time() if ledger_active else 0.0
    runner_kwargs = dict(options)
    if tracker is not None and _accepts_live(entry.runner):
        runner_kwargs["live"] = tracker
    sampler = maybe_start_sampler(obs)
    try:
        result = entry.runner(db, rep_name, min_sup, obs=obs, **runner_kwargs)
    except BaseException:
        if sampler is not None:
            sampler.stop()
        if tracker is not None:
            tracker.finish("failed")
        raise
    if sampler is not None:
        sampler.stop()
    if tracker is not None:
        tracker.finish("done")

    # Normalize: one result shape no matter which runner produced it.
    result.dataset = db.name
    result.algorithm = algorithm
    result.backend = backend
    result.min_support = min_sup
    result.n_transactions = db.n_transactions
    if not result.representation:
        result.representation = rep_name

    if obs is not None:
        obs.metrics.counter(
            f"engine.{backend}.{algorithm}.{result.representation}"
        ).inc()
        obs.sink.wall_event(
            "engine.mine", wall_start, cat="engine",
            args={
                "algorithm": algorithm,
                "representation": result.representation,
                "backend": backend,
                "itemsets": len(result),
            },
        )
    if ledger_active:
        extra: dict = {}
        if tracker is not None:
            extra["live"] = {"run_id": tracker.run_id,
                            "stalls": tracker.stalls}
        if obs is not None:
            # The per-bucket anatomy summary makes ledger records
            # explainable after the fact (repro obs explain) even when
            # the trace file itself is gone.
            summary = anatomy_summary(obs.sink)
            if summary is not None:
                extra["anatomy"] = summary
        record_run(
            "mine",
            db=db,
            config=_ledger_config(
                algorithm, result.representation, backend, min_sup, options
            ),
            wall_seconds=time.perf_counter() - wall_start,
            cpu_seconds=time.process_time() - cpu_start,
            n_itemsets=len(result),
            obs=obs,
            ledger=ledger,
            extra=extra or None,
        )
    return result


def execute(
    db: TransactionDatabase,
    *,
    algorithm: str,
    min_support: float | int,
    representation: Representation | str = "tidset",
    sink=None,
    obs: "ObsContext | None" = None,
    ledger=None,
    prune: bool = True,
    max_generations: int | None = None,
    item_order: str = "support",
) -> AprioriRun | EclatRun:
    """Run a serial miner and return its *full* run object (trace included).

    :func:`mine` returns normalized results; the simulator pipeline needs
    the level tables / cost traces too, so it calls this instead.  Only the
    two traced vertical miners support it.  ``ledger`` follows the same
    default resolution as :func:`mine` (``kind="execute"`` records).
    """
    from repro.obs.ledger import default_ledger, record_run

    if algorithm not in ("apriori", "eclat"):
        raise ConfigurationError(
            f"execute() supports the traced serial miners 'apriori' and "
            f"'eclat', got {algorithm!r}; use repro.mine() for everything else"
        )
    ledger_active = ledger is not None or default_ledger() is not None
    wall_start = time.perf_counter() if ledger_active else 0.0
    cpu_start = time.process_time() if ledger_active else 0.0
    if algorithm == "apriori":
        run = execute_apriori(
            db,
            min_support,
            representation,
            sink=sink,
            prune=prune,
            max_generations=max_generations,
            obs=obs,
        )
        options = {"prune": prune, "max_generations": max_generations}
    else:
        run = execute_eclat(
            db,
            min_support,
            representation,
            sink=sink,
            item_order=item_order,
            obs=obs,
        )
        options = {"item_order": item_order}
    if ledger_active:
        record_run(
            "execute",
            db=db,
            config=_ledger_config(
                algorithm, run.result.representation, "serial",
                run.result.min_support, options,
            ),
            wall_seconds=time.perf_counter() - wall_start,
            cpu_seconds=time.process_time() - cpu_start,
            n_itemsets=len(run.result),
            obs=obs,
            ledger=ledger,
        )
    return run


# --- default backend registrations -----------------------------------------


def _serial_apriori(db, rep_name, min_sup, *, obs=None, sink=None, prune=True,
                    max_generations=None):
    return execute_apriori(
        db, min_sup, get_representation(rep_name), sink=sink, prune=prune,
        max_generations=max_generations, obs=obs,
    ).result


def _serial_eclat(db, rep_name, min_sup, *, obs=None, sink=None,
                  item_order="support"):
    return execute_eclat(
        db, min_sup, get_representation(rep_name), sink=sink,
        item_order=item_order, obs=obs,
    ).result


def _serial_fpgrowth(db, rep_name, min_sup, *, obs=None):
    return _fpgrowth(db, min_sup)


def _serial_charm(db, rep_name, min_sup, *, obs=None):
    # Imported lazily so repro.core.charm's own shim can import the engine.
    from repro.core.charm import charm as _charm

    return _charm(db, min_sup)


def _multiprocessing_eclat(db, rep_name, min_sup, *, obs=None, live=None,
                           n_workers=None, item_order="support",
                           schedule=None, spawn_depth=None,
                           spawn_min_members=None):
    # Imported lazily: repro.backends must stay importable without the
    # engine (its legacy shims import the engine lazily in the other
    # direction).
    from repro.backends.multiprocessing_backend import run_eclat_multiprocessing

    return run_eclat_multiprocessing(
        db, min_sup, rep_name, n_workers=n_workers, item_order=item_order,
        schedule=schedule, spawn_depth=spawn_depth,
        spawn_min_members=spawn_min_members, obs=obs, live=live,
    )


def _shared_memory_eclat(db, rep_name, min_sup, *, obs=None, live=None,
                         n_workers=None, schedule=None, task_timeout=None,
                         item_order="support", max_task_retries=2,
                         spawn_depth=None, spawn_min_members=None):
    # Imported lazily (same discipline as the multiprocessing backend).
    from repro.backends.shared_memory_backend import run_eclat_shared_memory

    return run_eclat_shared_memory(
        db, min_sup, rep_name, n_workers=n_workers, schedule=schedule,
        task_timeout=task_timeout, item_order=item_order,
        max_task_retries=max_task_retries, spawn_depth=spawn_depth,
        spawn_min_members=spawn_min_members, obs=obs, live=live,
    )


def _shared_memory_apriori(db, rep_name, min_sup, *, obs=None, live=None,
                           n_workers=None, schedule=None, task_timeout=None,
                           prune=True, max_generations=None,
                           max_task_retries=2):
    from repro.backends.shared_memory_backend import run_apriori_shared_memory

    return run_apriori_shared_memory(
        db, min_sup, rep_name, n_workers=n_workers, schedule=schedule,
        task_timeout=task_timeout, prune=prune,
        max_generations=max_generations, max_task_retries=max_task_retries,
        obs=obs, live=live,
    )


def _vectorized_apriori(db, rep_name, min_sup, *, obs=None, prune=True,
                        max_generations=None):
    return apriori_vectorized(
        db, min_sup, prune=prune, max_generations=max_generations, obs=obs,
    )


def _vectorized_eclat(db, rep_name, min_sup, *, obs=None, item_order="support"):
    return eclat_vectorized(db, min_sup, item_order=item_order, obs=obs)


def _register_defaults() -> None:
    register_backend(
        "serial", "apriori", _serial_apriori,
        options=("sink", "prune", "max_generations"),
        description="level-wise Apriori on the calling thread",
    )
    register_backend(
        "serial", "eclat", _serial_eclat,
        options=("sink", "item_order"),
        description="depth-first Eclat on the calling thread",
    )
    register_backend(
        "serial", "fpgrowth", _serial_fpgrowth,
        representations=("fptree",),
        preferred_representation="fptree",
        description="FP-growth (pattern-tree, no vertical format)",
    )
    register_backend(
        "serial", "charm", _serial_charm,
        representations=("tidset",),
        preferred_representation="tidset",
        description="CHARM closed-itemset miner (subsumption-pruned "
                    "tidset search; result holds closed sets only)",
    )
    register_backend(
        "multiprocessing", "eclat", _multiprocessing_eclat,
        options=("n_workers", "item_order", "schedule", "spawn_depth",
                 "spawn_min_members"),
        description="process-pool Eclat over top-level prefix classes "
                    "(schedule='worksteal' adds nested task stealing)",
    )
    register_backend(
        "shared_memory", "eclat", _shared_memory_eclat,
        options=("n_workers", "schedule", "task_timeout", "item_order",
                 "max_task_retries", "spawn_depth", "spawn_min_members"),
        representations=("bitvector_numpy", "bitvector"),
        preferred_representation="bitvector_numpy",
        description="zero-copy shared-memory process pool over top-level "
                    "classes (schedule(dynamic,1); schedule='worksteal' "
                    "adds nested task stealing)",
    )
    register_backend(
        "shared_memory", "apriori", _shared_memory_apriori,
        options=("n_workers", "schedule", "task_timeout", "prune",
                 "max_generations", "max_task_retries"),
        representations=("bitvector_numpy", "bitvector"),
        preferred_representation="bitvector_numpy",
        description="zero-copy shared-memory candidate-range counting "
                    "(schedule(static))",
    )
    register_backend(
        "vectorized", "apriori", _vectorized_apriori,
        options=("prune", "max_generations"),
        representations=("bitvector_numpy", "bitvector"),
        preferred_representation="bitvector_numpy",
        description="whole-generation NumPy bitvector kernels",
    )
    register_backend(
        "vectorized", "eclat", _vectorized_eclat,
        options=("item_order",),
        representations=("bitvector_numpy", "bitvector"),
        preferred_representation="bitvector_numpy",
        description="broadcast-AND NumPy class kernels",
    )


_register_defaults()
