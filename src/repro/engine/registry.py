"""Backend registry: the algorithm × backend execution matrix.

Every execution backend registers one :class:`BackendEntry` per mining
algorithm it implements.  :func:`repro.mine` resolves ``(backend,
algorithm)`` here and raises
:class:`~repro.errors.UnsupportedCombinationError` — whose message lists
every registered combination — when the pair does not exist.  New backends
(sharded, async, distributed, ...) plug in through
:func:`register_backend` instead of growing another ad-hoc entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.result import MiningResult
from repro.errors import UnsupportedCombinationError


@dataclass(frozen=True)
class BackendEntry:
    """One executable (backend, algorithm) combination.

    Attributes
    ----------
    backend / algorithm:
        Registry key.
    runner:
        ``runner(db, representation_name, min_sup, *, obs=None, **options)``
        returning a :class:`MiningResult`.  ``min_sup`` is already resolved
        to an absolute count and ``representation_name`` to a registered
        name — the engine owns that validation.
    options:
        Keyword options the runner accepts beyond the core parameters;
        anything else passed to :func:`repro.mine` is a typed error.
    representations:
        Representation names this combination can execute, or ``None`` for
        every registered vertical representation.
    preferred_representation:
        What ``representation="auto"`` resolves to on this entry, or
        ``None`` to let the engine's density heuristic decide.
    description:
        One line for error messages and docs.
    """

    backend: str
    algorithm: str
    runner: Callable[..., MiningResult]
    options: frozenset[str] = frozenset()
    representations: frozenset[str] | None = None
    preferred_representation: str | None = None
    description: str = ""


_REGISTRY: dict[tuple[str, str], BackendEntry] = {}


def register_backend(
    backend: str,
    algorithm: str,
    runner: Callable[..., MiningResult],
    *,
    options: Iterable[str] = (),
    representations: Iterable[str] | None = None,
    preferred_representation: str | None = None,
    description: str = "",
) -> BackendEntry:
    """Register (or overwrite) one backend × algorithm combination."""
    entry = BackendEntry(
        backend=backend,
        algorithm=algorithm,
        runner=runner,
        options=frozenset(options),
        representations=(
            frozenset(representations) if representations is not None else None
        ),
        preferred_representation=preferred_representation,
        description=description,
    )
    _REGISTRY[(backend, algorithm)] = entry
    return entry


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted({backend for backend, _ in _REGISTRY})


def available_algorithms(backend: str | None = None) -> list[str]:
    """Sorted algorithm names, optionally restricted to one backend."""
    return sorted(
        {
            algorithm
            for bend, algorithm in _REGISTRY
            if backend is None or bend == backend
        }
    )


def supported_combinations() -> list[tuple[str, str]]:
    """Every registered (backend, algorithm) pair, sorted."""
    return sorted(_REGISTRY)


def _matrix_summary() -> str:
    return ", ".join(f"{b}:{a}" for b, a in supported_combinations())


def get_backend_entry(backend: str, algorithm: str) -> BackendEntry:
    """Resolve one combination or raise a typed, self-documenting error."""
    entry = _REGISTRY.get((backend, algorithm))
    if entry is not None:
        return entry
    if backend not in available_backends():
        raise UnsupportedCombinationError(
            f"unknown backend {backend!r}; available backends: "
            f"{available_backends()}"
        )
    raise UnsupportedCombinationError(
        f"algorithm {algorithm!r} is not implemented on backend {backend!r} "
        f"(it supports: {available_algorithms(backend)}); registered "
        f"combinations: {_matrix_summary()}"
    )


def check_representation(entry: BackendEntry, representation: str) -> None:
    """Raise when the resolved representation cannot run on this entry."""
    if entry.representations is not None and representation not in entry.representations:
        raise UnsupportedCombinationError(
            f"representation {representation!r} is not supported by "
            f"backend {entry.backend!r} / algorithm {entry.algorithm!r}; "
            f"supported representations: {sorted(entry.representations)}"
        )
