"""The ``vectorized`` execution backend: whole-generation NumPy kernels.

The serial miners call ``Representation.combine`` once per candidate, which
pays Python-interpreter overhead per intersection.  This backend instead
keeps every live candidate's packed bitmask as one row of a 2-D ``uint8``
matrix (see :mod:`repro.representations.bitvector_numpy`) and counts whole
batches of candidates per NumPy call:

* **Apriori** stacks the two parent rows of every generation-``k`` candidate
  into matrices ``L`` and ``R`` and computes the entire generation's
  verticals and supports with one ``bitwise_and`` + one table-lookup
  popcount (:func:`intersect_pairs`).
* **Eclat** joins a class member against *all* of its later siblings with a
  single broadcast AND (:func:`intersect_block`), recursing on the kept
  rows.

Both produce itemset→support maps identical to the serial miners; the
engine asserts as much in the equivalence-matrix tests.  Results are
reported under representation ``bitvector_numpy`` regardless of how the
caller spelled it, because that is what actually ran.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.core.candidate_gen import generate_candidates
from repro.core.itemset import Itemset
from repro.core.result import MiningResult
from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import ConfigurationError
from repro.representations.bitvector_numpy import (
    intersect_block,
    intersect_pairs,
    pack_database,
    popcount_rows,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import ObsContext


def _frequent_singletons(
    db: TransactionDatabase, min_sup: int
) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Packed matrix, supports, and item ids of the frequent 1-itemsets."""
    matrix = pack_database(db)
    supports = popcount_rows(matrix)
    keep = np.nonzero(supports >= min_sup)[0]
    return matrix[keep], supports[keep], [int(i) for i in keep]


def _record_batch(
    obs: "ObsContext | None", label: str, n: int, n_bytes: int,
    *, broadcast: bool = False,
) -> None:
    """Charge one kernel batch of ``n`` intersections to the obs counters.

    ``broadcast=True`` is the Eclat class kernel (one left row AND-ed
    against ``n`` sibling rows): the left operand is read **once**, not once
    per sibling, so the batch reads ``(n + 1) * n_bytes``.  Pairwise batches
    (Apriori) read two distinct rows per intersection.  The serial miners
    charge ``2 * n_bytes`` per combine because they genuinely re-read the
    left operand every call; tests pin the exact relationship.
    """
    if obs is None or n == 0:
        return
    metrics = obs.metrics
    metrics.counter(f"{label}.batches").inc()
    metrics.counter("mine.intersections").inc(n)
    read_bytes = (n + 1) * n_bytes if broadcast else 2 * n * n_bytes
    metrics.counter("mine.intersection_read_bytes").inc(read_bytes)
    metrics.counter("mine.bytes_written").inc(n * n_bytes)


def apriori_vectorized(
    db: TransactionDatabase,
    min_sup: int,
    *,
    prune: bool = True,
    max_generations: int | None = None,
    obs: "ObsContext | None" = None,
) -> MiningResult:
    """Level-wise Apriori counting each candidate generation in one kernel."""
    result = MiningResult(
        dataset=db.name,
        algorithm="apriori",
        representation="bitvector_numpy",
        min_support=min_sup,
        n_transactions=db.n_transactions,
        backend="vectorized",
    )
    matrix, supports, items = _frequent_singletons(db, min_sup)
    frequent: list[Itemset] = [(item,) for item in items]
    for itemset, support in zip(frequent, supports):
        result.add(itemset, int(support))

    generation = 1
    while frequent:
        if max_generations is not None and generation >= max_generations:
            break
        generation += 1
        candidates = generate_candidates(frequent, prune=prune)
        if not candidates:
            break
        lefts = matrix[[c.left_parent for c in candidates]]
        rights = matrix[[c.right_parent for c in candidates]]
        children, child_supports = intersect_pairs(lefts, rights)
        kept = child_supports >= min_sup
        _record_batch(obs, "apriori.vectorized", len(candidates), matrix.shape[1])

        next_frequent: list[Itemset] = []
        for pos in np.nonzero(kept)[0]:
            itemset = candidates[int(pos)].items
            result.add(itemset, int(child_supports[pos]))
            next_frequent.append(itemset)
        matrix = children[kept]
        frequent = next_frequent
    return result


def _join_member(
    itemsets: list[Itemset],
    matrix: np.ndarray,
    i: int,
    min_sup: int,
    obs: "ObsContext | None",
) -> tuple[list[Itemset], np.ndarray | None, np.ndarray | None]:
    """Join class member ``i`` against its later siblings (one broadcast AND).

    Returns ``(child_itemsets, child_matrix, child_supports)`` for the
    frequent children, or ``([], None, None)`` when none survive.  This is
    the kernel both the in-process walk below and the shared-memory backend
    workers execute per class member.
    """
    n = len(itemsets)
    children, supports = intersect_block(matrix[i], matrix[i + 1 :])
    kept = supports >= min_sup
    _record_batch(
        obs, "eclat.vectorized", n - 1 - i, matrix.shape[1], broadcast=True,
    )
    if not kept.any():
        return [], None, None
    child_itemsets = [
        itemsets[i] + (itemsets[i + 1 + int(j)][-1],)
        for j in np.nonzero(kept)[0]
    ]
    return child_itemsets, children[kept], supports[kept]


def _mine_class_vectorized(
    result: MiningResult,
    itemsets: list[Itemset],
    matrix: np.ndarray,
    min_sup: int,
    obs: "ObsContext | None",
) -> None:
    """Depth-first equivalence-class walk with one broadcast AND per member.

    The walk keeps its own explicit stack of pending classes instead of
    recursing: dense/low-support databases produce frequent-itemset chains
    as long as the widest class, and one Python frame per chain link can
    blow the interpreter recursion limit where a heap stack cannot.
    """
    stack: list[tuple[list[Itemset], np.ndarray]] = [(itemsets, matrix)]
    while stack:
        cls_itemsets, cls_matrix = stack.pop()
        for i in range(len(cls_itemsets) - 1):
            child_itemsets, child_matrix, child_supports = _join_member(
                cls_itemsets, cls_matrix, i, min_sup, obs
            )
            if not child_itemsets:
                continue
            for itemset, support in zip(child_itemsets, child_supports):
                result.add(tuple(sorted(itemset)), int(support))
            if len(child_itemsets) > 1:
                stack.append((child_itemsets, child_matrix))


def mine_toplevel_class(
    result: MiningResult,
    itemsets: list[Itemset],
    matrix: np.ndarray,
    index: int,
    min_sup: int,
    obs: "ObsContext | None" = None,
) -> None:
    """Mine the whole subtree rooted at top-level class member ``index``.

    ``itemsets``/``matrix`` are the ordered frequent singletons (generation
    1); everything frequent whose first processing-order item is member
    ``index`` lands in ``result``.  This is the shared-memory backend's task
    unit — each worker runs it against a zero-copy view of the singleton
    matrix.
    """
    child_itemsets, child_matrix, child_supports = _join_member(
        itemsets, matrix, index, min_sup, obs
    )
    if not child_itemsets:
        return
    for itemset, support in zip(child_itemsets, child_supports):
        result.add(tuple(sorted(itemset)), int(support))
    if len(child_itemsets) > 1:
        _mine_class_vectorized(result, child_itemsets, child_matrix, min_sup, obs)


def rebuild_class_rows(
    matrix: np.ndarray,
    prefix: tuple[int, ...],
    members: tuple[int, ...],
    obs: "ObsContext | None" = None,
) -> np.ndarray:
    """Class-matrix rows for ``members`` under ``prefix``, from generation 1.

    A work-stealing task names its equivalence class by *positions into the
    ordered frequent-singleton matrix* — the only array every worker shares
    read-only — instead of shipping computed bit rows.  The executing
    worker reconstructs the rows here: AND the prefix rows into one vector,
    broadcast it over the member rows.  Correct because a class vector is
    the intersection of its items' singleton vectors.

    The rebuild is the runtime form of the steal payload the cost model
    prices, so it is charged to ``worksteal.rebuild.*`` counters — **not**
    ``mine.*`` — keeping the mining counters identical to the plain
    vectorized backend (the equivalence tests pin this).
    """
    rebuild_start = time.perf_counter() if obs is not None else 0.0
    rows = matrix[np.asarray(members, dtype=np.intp)]
    if not prefix:
        return rows
    prefix_vec = matrix[prefix[0]]
    for p in prefix[1:]:
        prefix_vec = prefix_vec & matrix[p]
    rows = rows & prefix_vec
    if obs is not None:
        n = (len(prefix) - 1) + len(members)
        metrics = obs.metrics
        metrics.counter("worksteal.rebuild.batches").inc()
        metrics.counter("worksteal.rebuild.intersections").inc(n)
        metrics.counter("worksteal.rebuild.read_bytes").inc(
            (n + len(prefix)) * matrix.shape[1]
        )
        # The steal-payload cost gets its own trace span (cat="steal") so
        # run anatomy can attribute it separately from task compute.
        obs.sink.wall_event(
            "task.rebuild", rebuild_start, cat="steal",
            args={"prefix_len": len(prefix), "n_members": len(members)},
        )
    return rows


def run_worksteal_task(
    result: MiningResult,
    itemsets: list[Itemset],
    matrix: np.ndarray,
    prefix: tuple[int, ...],
    members: tuple[int, ...],
    min_sup: int,
    spawn_depth: int,
    spawn_min_members: int,
    obs: "ObsContext | None" = None,
) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
    """Execute one stealable Eclat task; return the tasks it spawns.

    The task ``(prefix, members)`` joins ``members[0]`` (under ``prefix``)
    against ``members[1:]`` — exactly one :func:`_join_member` step of the
    class walk, so a class of ``m`` members is processed as ``m - 1``
    independent tasks.  Frequent children are added to ``result``; the
    surviving child class either **spawns** (one task per member position,
    ``(prefix + (members[0],), kept[j:])``) when it is still shallow and
    wide enough — ``len(new_prefix) <= spawn_depth`` and
    ``len(kept) >= spawn_min_members`` — or is mined **inline** with
    :func:`_mine_class_vectorized`.

    The spawn check is monotone: a child class is strictly deeper and no
    wider than its parent, so once a class fails the check every descendant
    fails too — the inline walk never needs to re-test, and spawned tasks
    cover exactly the subtrees the scheduler can still balance.
    """
    if len(members) < 2:
        return []
    rows = rebuild_class_rows(matrix, prefix, members, obs)
    children, supports = intersect_block(rows[0], rows[1:])
    kept = supports >= min_sup
    _record_batch(
        obs, "eclat.vectorized", len(members) - 1, matrix.shape[1],
        broadcast=True,
    )
    if not kept.any():
        return []
    new_prefix = prefix + (members[0],)
    prefix_items = tuple(itemsets[p][0] for p in new_prefix)
    kept_members = tuple(members[1 + int(j)] for j in np.nonzero(kept)[0])
    for member, support in zip(kept_members, supports[kept]):
        result.add(
            tuple(sorted(prefix_items + (itemsets[member][0],))), int(support)
        )
    if len(kept_members) < 2:
        return []
    if len(new_prefix) <= spawn_depth and len(kept_members) >= spawn_min_members:
        return [
            (new_prefix, kept_members[j:])
            for j in range(len(kept_members) - 1)
        ]
    child_itemsets: list[Itemset] = [
        prefix_items + (itemsets[member][0],) for member in kept_members
    ]
    _mine_class_vectorized(result, child_itemsets, children[kept], min_sup, obs)
    return []


def eclat_vectorized(
    db: TransactionDatabase,
    min_sup: int,
    *,
    item_order: str = "support",
    obs: "ObsContext | None" = None,
) -> MiningResult:
    """Equivalence-class Eclat with the class-join loop as one broadcast AND."""
    result = MiningResult(
        dataset=db.name,
        algorithm="eclat",
        representation="bitvector_numpy",
        min_support=min_sup,
        n_transactions=db.n_transactions,
        backend="vectorized",
    )
    if item_order not in ("support", "id"):
        raise ConfigurationError(
            f"item_order must be 'support' or 'id', got {item_order!r}"
        )
    matrix, supports, items = _frequent_singletons(db, min_sup)
    order = np.arange(len(items))
    if item_order == "support" and len(items):
        order = np.lexsort((np.asarray(items), supports))
    itemsets: list[Itemset] = [(items[int(i)],) for i in order]
    matrix = matrix[order] if matrix.size else matrix
    for itemset, support in zip(itemsets, supports[order]):
        result.add(itemset, int(support))
    if obs is not None:
        obs.metrics.counter("eclat.toplevel.tasks").inc(len(itemsets))
    if itemsets:
        _mine_class_vectorized(result, itemsets, matrix, min_sup, obs)
    return result
