"""The ``vectorized`` execution backend: whole-generation NumPy kernels.

The serial miners call ``Representation.combine`` once per candidate, which
pays Python-interpreter overhead per intersection.  This backend instead
keeps every live candidate's packed bitmask as one row of a 2-D ``uint8``
matrix (see :mod:`repro.representations.bitvector_numpy`) and counts whole
batches of candidates per NumPy call:

* **Apriori** stacks the two parent rows of every generation-``k`` candidate
  into matrices ``L`` and ``R`` and computes the entire generation's
  verticals and supports with one ``bitwise_and`` + one table-lookup
  popcount (:func:`intersect_pairs`).
* **Eclat** joins a class member against *all* of its later siblings with a
  single broadcast AND (:func:`intersect_block`), recursing on the kept
  rows.

Both produce itemset→support maps identical to the serial miners; the
engine asserts as much in the equivalence-matrix tests.  Results are
reported under representation ``bitvector_numpy`` regardless of how the
caller spelled it, because that is what actually ran.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.candidate_gen import generate_candidates
from repro.core.itemset import Itemset
from repro.core.result import MiningResult
from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import ConfigurationError
from repro.representations.bitvector_numpy import (
    intersect_block,
    intersect_pairs,
    pack_database,
    popcount_rows,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import ObsContext


def _frequent_singletons(
    db: TransactionDatabase, min_sup: int
) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Packed matrix, supports, and item ids of the frequent 1-itemsets."""
    matrix = pack_database(db)
    supports = popcount_rows(matrix)
    keep = np.nonzero(supports >= min_sup)[0]
    return matrix[keep], supports[keep], [int(i) for i in keep]


def _record_batch(obs: "ObsContext | None", label: str, n: int, n_bytes: int) -> None:
    if obs is None or n == 0:
        return
    metrics = obs.metrics
    metrics.counter(f"{label}.batches").inc()
    metrics.counter("mine.intersections").inc(n)
    metrics.counter("mine.intersection_read_bytes").inc(2 * n * n_bytes)
    metrics.counter("mine.bytes_written").inc(n * n_bytes)


def apriori_vectorized(
    db: TransactionDatabase,
    min_sup: int,
    *,
    prune: bool = True,
    max_generations: int | None = None,
    obs: "ObsContext | None" = None,
) -> MiningResult:
    """Level-wise Apriori counting each candidate generation in one kernel."""
    result = MiningResult(
        dataset=db.name,
        algorithm="apriori",
        representation="bitvector_numpy",
        min_support=min_sup,
        n_transactions=db.n_transactions,
        backend="vectorized",
    )
    matrix, supports, items = _frequent_singletons(db, min_sup)
    frequent: list[Itemset] = [(item,) for item in items]
    for itemset, support in zip(frequent, supports):
        result.add(itemset, int(support))

    generation = 1
    while frequent:
        if max_generations is not None and generation >= max_generations:
            break
        generation += 1
        candidates = generate_candidates(frequent, prune=prune)
        if not candidates:
            break
        lefts = matrix[[c.left_parent for c in candidates]]
        rights = matrix[[c.right_parent for c in candidates]]
        children, child_supports = intersect_pairs(lefts, rights)
        kept = child_supports >= min_sup
        _record_batch(obs, "apriori.vectorized", len(candidates), matrix.shape[1])

        next_frequent: list[Itemset] = []
        for pos in np.nonzero(kept)[0]:
            itemset = candidates[int(pos)].items
            result.add(itemset, int(child_supports[pos]))
            next_frequent.append(itemset)
        matrix = children[kept]
        frequent = next_frequent
    return result


def _mine_class_vectorized(
    result: MiningResult,
    itemsets: list[Itemset],
    matrix: np.ndarray,
    min_sup: int,
    obs: "ObsContext | None",
) -> None:
    """Depth-first equivalence-class walk with one broadcast AND per member."""
    n = len(itemsets)
    for i in range(n - 1):
        children, supports = intersect_block(matrix[i], matrix[i + 1 :])
        kept = supports >= min_sup
        _record_batch(obs, "eclat.vectorized", n - 1 - i, matrix.shape[1])
        if not kept.any():
            continue
        child_itemsets = [
            itemsets[i] + (itemsets[i + 1 + int(j)][-1],)
            for j in np.nonzero(kept)[0]
        ]
        child_matrix = children[kept]
        for itemset, support in zip(child_itemsets, supports[kept]):
            result.add(tuple(sorted(itemset)), int(support))
        _mine_class_vectorized(result, child_itemsets, child_matrix, min_sup, obs)


def eclat_vectorized(
    db: TransactionDatabase,
    min_sup: int,
    *,
    item_order: str = "support",
    obs: "ObsContext | None" = None,
) -> MiningResult:
    """Equivalence-class Eclat with the class-join loop as one broadcast AND."""
    result = MiningResult(
        dataset=db.name,
        algorithm="eclat",
        representation="bitvector_numpy",
        min_support=min_sup,
        n_transactions=db.n_transactions,
        backend="vectorized",
    )
    if item_order not in ("support", "id"):
        raise ConfigurationError(
            f"item_order must be 'support' or 'id', got {item_order!r}"
        )
    matrix, supports, items = _frequent_singletons(db, min_sup)
    order = np.arange(len(items))
    if item_order == "support" and len(items):
        order = np.lexsort((np.asarray(items), supports))
    itemsets: list[Itemset] = [(items[int(i)],) for i in order]
    matrix = matrix[order] if matrix.size else matrix
    for itemset, support in zip(itemsets, supports[order]):
        result.add(itemset, int(support))
    if obs is not None:
        obs.metrics.counter("eclat.toplevel.tasks").inc(len(itemsets))
    if itemsets:
        _mine_class_vectorized(result, itemsets, matrix, min_sup, obs)
    return result
