"""The unified mining execution engine.

``repro.mine()`` (re-exported from here) is the single documented entry
point for frequent itemset mining: it resolves an algorithm, a vertical
representation, and an execution backend against the registry in
:mod:`repro.engine.registry`, validates everything with typed
:mod:`repro.errors` exceptions, threads the optional
:class:`~repro.obs.ObsContext` through, and normalizes whatever the backend
produced into one :class:`~repro.core.result.MiningResult` shape.

Built-in backends:

========================  =====================================================
``serial``                apriori / eclat / fpgrowth on the calling thread
``multiprocessing``       eclat over a process pool (top-level prefix tasks)
``vectorized``            apriori / eclat on whole-generation NumPy
                          packed-bitvector kernels
========================  =====================================================

New backends register through :func:`register_backend` instead of adding
another ad-hoc ``run_*`` function.
"""

from repro.engine.api import execute, mine, resolve_run_config
from repro.engine.registry import (
    BackendEntry,
    available_algorithms,
    available_backends,
    get_backend_entry,
    register_backend,
    supported_combinations,
)
from repro.engine.vectorized import apriori_vectorized, eclat_vectorized

__all__ = [
    "mine",
    "execute",
    "resolve_run_config",
    "BackendEntry",
    "register_backend",
    "get_backend_entry",
    "available_backends",
    "available_algorithms",
    "supported_combinations",
    "apriori_vectorized",
    "eclat_vectorized",
]
