"""Exact-path request routing for the query server.

Five endpoints, no path parameters, so the router is a dict — the value
it adds over inlining is correct 404-vs-405 semantics (a known path hit
with the wrong method must answer 405 with an ``Allow`` header, not a
generic 404) and a single place the server registers handlers.
"""

from __future__ import annotations

from typing import Awaitable, Callable

from repro.serve.http import HttpError, Request

#: A handler returns (status, JSON payload, extra headers).
Handler = Callable[[Request], Awaitable[tuple[int, object, dict[str, str]]]]


class Router:
    """(method, path) → handler with proper 404/405 discrimination."""

    def __init__(self) -> None:
        self._routes: dict[tuple[str, str], Handler] = {}

    def add(self, method: str, path: str, handler: Handler) -> None:
        key = (method.upper(), path)
        if key in self._routes:
            raise ValueError(f"duplicate route {key}")
        self._routes[key] = handler

    def paths(self) -> list[str]:
        return sorted({path for _, path in self._routes})

    def resolve(self, method: str, path: str) -> Handler:
        """The handler for this request, or the precise HttpError."""
        handler = self._routes.get((method.upper(), path))
        if handler is not None:
            return handler
        allowed = sorted(
            m for (m, p) in self._routes if p == path
        )
        if allowed:
            raise HttpError(
                405,
                f"{method} not allowed on {path}; allowed: "
                + ", ".join(allowed),
                headers={"Allow": ", ".join(allowed)},
            )
        raise HttpError(
            404,
            f"unknown path {path!r}; available: " + ", ".join(self.paths()),
        )
