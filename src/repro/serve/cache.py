"""The ledger-keyed answer cache.

The run ledger already gives every mining run a stable identity: the
(config hash, dataset fingerprint) pair (:mod:`repro.obs.ledger`).  The
serve cache reuses **exactly that key** — a cache hit literally means
"the ledger has seen this run before and the answer is still resident".
No second keying scheme, no cache/ledger drift: the config hashed here
is the same canonical dict the engine writes into the ledger record
(:func:`repro.engine.resolve_run_config`), extended with the query kind
for the non-mine endpoints.

Entries are whole JSON-serializable answer payloads (itemset listings,
rule listings), evicted LRU beyond ``max_entries``.  The cache runs on
the event loop thread only, so a plain ``OrderedDict`` needs no lock.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

#: (dataset sha256 fingerprint, canonical config hash).
CacheKey = tuple[str, str]


class ResultCache:
    """LRU answer cache keyed by the ledger's (config, dataset) identity."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[CacheKey, dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> dict[str, Any] | None:
        """The cached answer payload, refreshed to most-recently-used."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, payload: dict[str, Any]) -> None:
        """Store one answer; evicts the least-recently-used beyond the cap."""
        if self.max_entries == 0:
            return
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def snapshot(self) -> dict[str, Any]:
        """The ``cache`` object in ``/stats``."""
        total = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / total) if total else 0.0,
        }
