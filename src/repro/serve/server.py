"""The long-lived mining query server (``repro serve``).

One process loads datasets and index artifacts **once** — parsed
transaction databases, their packed bit matrices, and memory-mapped
:class:`~repro.index.ItemsetIndex` artifacts stay resident — and then
answers queries concurrently over HTTP until stopped:

==========  ======  ====================================================
``/mine``   POST    frequent itemsets at a support threshold
``/topk``   POST    the k most frequent itemsets
``/rules``  POST    association rules at support + confidence thresholds
``/healthz``  GET   liveness (never blocks behind mining)
``/stats``    GET   schema-versioned service counters (v1)
==========  ======  ====================================================

Request lifecycle (see DESIGN.md): **admission** (deadline gate + bounded
inflight depth, excess shed with 429 + ``Retry-After``) → **cache**
(answers keyed by the run ledger's (config hash, dataset fingerprint)
pair — a hit returns without mining) → **coalesce** (identical concurrent
requests share one backend run) → **engine** (a resident index answers
any support ≥ its floor in O(answer); otherwise ``repro.mine()`` runs on
a bounded thread pool so the event loop — and ``/healthz`` — never
blocks) → **ledger** (every answered query appends a ``serve-query``
record; engine runs additionally append their usual ``mine`` record).

Observability: when the server holds an :class:`~repro.obs.ObsContext`,
each request gets its own trace lane (``tid`` = request id) carrying the
request span and the engine spans it caused, and the shared metrics
registry counts requests, hits, sheds, and coalesced runs.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import sys
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from itertools import count
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.engine import mine as _engine_mine
from repro.engine import resolve_run_config
from repro.errors import ConfigurationError, ReproError
from repro.obs.ledger import config_hash, fingerprint_database, record_run
from repro.obs.trace import TraceEvent, TraceSink
from repro.serve.admission import (
    AdmissionController,
    DeadlineExpired,
    ShedError,
)
from repro.serve.batching import Coalescer
from repro.serve.cache import ResultCache
from repro.serve.http import (
    HttpError,
    Request,
    error_payload,
    read_request,
    response_bytes,
)
from repro.serve.router import Router

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datasets.transaction_db import TransactionDatabase
    from repro.index import ItemsetIndex
    from repro.obs import ObsContext

__all__ = [
    "MiningServer",
    "ServerThread",
    "ResidentDataset",
    "STATS_SCHEMA_VERSION",
    "SERVE_LEDGER_KIND",
    "validate_stats",
]

#: Bumped whenever the ``/stats`` document gains/renames fields; the CI
#: job gates the shape through :func:`validate_stats`.
STATS_SCHEMA_VERSION = 1

#: Ledger ``kind`` appended per answered query.
SERVE_LEDGER_KIND = "serve-query"

#: Rolling latency window backing the /stats percentiles.
_LATENCY_WINDOW = 4096

#: Body fields accepted per endpoint (typo = 400, not silent default).
_COMMON_FIELDS = frozenset({
    "dataset", "min_support", "algorithm", "representation", "backend",
    "options", "deadline_seconds", "fresh", "top",
})
_FIELDS_BY_KIND = {
    "mine": _COMMON_FIELDS,
    "topk": _COMMON_FIELDS | {"k"},
    "rules": _COMMON_FIELDS | {"min_confidence"},
}


@dataclass
class ResidentDataset:
    """One dataset held in memory for the server's lifetime."""

    name: str
    db: "TransactionDatabase"
    fingerprint: dict[str, Any]
    packed: Any = None  # the packed bit matrix (np.ndarray), kept resident
    packed_bytes: int = 0
    index: "ItemsetIndex | None" = None

    def snapshot(self) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "name": self.name,
            "sha256": self.fingerprint.get("sha256", ""),
            "n_transactions": int(self.fingerprint.get("n_transactions", 0)),
            "n_items": int(self.fingerprint.get("n_items", 0)),
            "packed_bytes": int(self.packed_bytes),
            "index": None,
        }
        if self.index is not None:
            entry["index"] = {
                "floor": self.index.floor,
                "n_closed": self.index.n_closed,
            }
        return entry


@dataclass(frozen=True)
class _QuerySpec:
    """One validated query, ready to execute on the backend."""

    kind: str  # "mine" | "topk" | "rules"
    algorithm: str
    representation: str
    backend: str
    min_support: int  # absolute count, resolved
    options: dict[str, Any] = field(default_factory=dict)
    k: int | None = None
    min_confidence: float = 0.6
    fresh: bool = False
    limit: int | None = None


class _RequestLaneSink(TraceSink):
    """A per-request view of the server's sink: default-lane events are
    rewritten onto the request's ``tid`` lane, so one trace shows every
    request — and the engine spans it caused — as its own timeline."""

    def __init__(self, base: TraceSink, tid: int) -> None:
        super().__init__()
        self._base = base
        self._tid = tid
        self.enabled = base.enabled
        self.epoch = base.epoch  # shared clock: lanes must line up

    def emit(self, event: TraceEvent) -> None:
        if event.pid == 0 and event.tid == 0:
            event = replace(event, tid=self._tid)
        self._base.emit(event)

    def close(self) -> None:  # lifetime belongs to the server's ObsContext
        pass


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 on an empty window."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


def default_miner(db, **kwargs):
    """The production backend runner: ``repro.mine`` without live status.

    A per-request live status file would turn every query into filesystem
    writes; the serve layer has its own ``/stats`` plane instead.
    """
    return _engine_mine(db, live=False, **kwargs)


class MiningServer:
    """The asyncio HTTP service; construct, :meth:`start`, serve.

    Parameters
    ----------
    datasets:
        Loaded :class:`TransactionDatabase` objects to keep resident.
    indexes:
        :class:`ItemsetIndex` objects (or artifact paths) to attach; each
        must fingerprint-match one of ``datasets``.
    max_inflight / default_deadline_seconds / retry_after_seconds:
        Admission policy (see :mod:`repro.serve.admission`).
    cache_entries:
        LRU answer-cache capacity (0 disables caching).
    executor_workers:
        Backend thread-pool width; mining runs here, never on the loop.
    default_backend / default_algorithm:
        Engine defaults for requests that do not name one.
    obs / ledger:
        Optional shared :class:`ObsContext` and :class:`Ledger`; the
        server never closes either (the caller owns their lifetime).
    miner:
        Injectable backend runner ``f(db, **mine_kwargs)`` (tests swap in
        slow/instrumented ones); defaults to :func:`default_miner`.
    """

    def __init__(
        self,
        *,
        datasets: Iterable["TransactionDatabase"] = (),
        indexes: Iterable["ItemsetIndex | str | Path"] = (),
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 8,
        default_deadline_seconds: float = 30.0,
        retry_after_seconds: float = 1.0,
        cache_entries: int = 256,
        executor_workers: int | None = None,
        default_backend: str = "serial",
        default_algorithm: str = "eclat",
        obs: "ObsContext | None" = None,
        ledger=None,
        miner: Callable[..., Any] | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.obs = obs
        self.ledger = ledger
        self.default_backend = default_backend
        self.default_algorithm = default_algorithm
        self.admission = AdmissionController(
            max_inflight=max_inflight,
            default_deadline_seconds=default_deadline_seconds,
            retry_after_seconds=retry_after_seconds,
        )
        self.cache = ResultCache(cache_entries)
        self.coalescer = Coalescer()
        self._miner = miner if miner is not None else default_miner
        if executor_workers is None:
            executor_workers = max_inflight
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, executor_workers),
            thread_name_prefix="repro-serve",
        )
        self._datasets: dict[str, ResidentDataset] = {}
        self._config_cache: dict[tuple, dict[str, Any]] = {}
        self._request_ids = count(1)
        self._started_unix = time.time()
        self._requests_total = 0
        self._requests_by_endpoint: dict[str, int] = {}
        self._requests_by_status: dict[str, int] = {}
        self._latencies: list[float] = []
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self.router = Router()
        self.router.add("GET", "/healthz", self._handle_healthz)
        self.router.add("GET", "/stats", self._handle_stats)
        self.router.add("POST", "/mine", self._make_query_handler("mine"))
        self.router.add("POST", "/topk", self._make_query_handler("topk"))
        self.router.add("POST", "/rules", self._make_query_handler("rules"))
        for db in datasets:
            self.add_dataset(db)
        for index in indexes:
            self.add_index(index)

    # -- residency ---------------------------------------------------------

    def add_dataset(self, db: "TransactionDatabase") -> ResidentDataset:
        """Load one database into residency (fingerprint + packed matrix)."""
        from repro.representations.bitvector_numpy import pack_database

        if db.name in self._datasets:
            raise ConfigurationError(
                f"duplicate resident dataset name {db.name!r}"
            )
        packed = pack_database(db) if db.n_transactions else None
        entry = ResidentDataset(
            name=db.name,
            db=db,
            fingerprint=fingerprint_database(db),
            packed=packed,
            packed_bytes=int(packed.nbytes) if packed is not None else 0,
        )
        self._datasets[db.name] = entry
        return entry

    def add_index(self, index: "ItemsetIndex | str | Path") -> ResidentDataset:
        """Attach an index artifact to the resident dataset it was built from."""
        from repro.index import ItemsetIndex

        if not isinstance(index, ItemsetIndex):
            index = ItemsetIndex.open(index)
        for entry in self._datasets.values():
            if index.fingerprint_matches(entry.fingerprint):
                entry.index = index
                return entry
        raise ConfigurationError(
            f"index {index!r} matches no resident dataset "
            f"(loaded: {sorted(self._datasets)})"
        )

    def datasets(self) -> list[ResidentDataset]:
        return list(self._datasets.values())

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the real port."""
        self._asyncio_server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        sockets = self._asyncio_server.sockets or ()
        for sock in sockets:
            self.port = sock.getsockname()[1]
            break

    async def serve_forever(self) -> None:
        assert self._asyncio_server is not None, "call start() first"
        await self._asyncio_server.serve_forever()

    async def aclose(self) -> None:
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        # Orphaned leader runs (their waiters timed out) die with the server.
        await self.coalescer.cancel_pending()
        # Never block shutdown on a mining run that cannot be killed.
        self._executor.shutdown(wait=False, cancel_futures=True)

    # -- connection + dispatch ---------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            await self._handle_connection(reader, writer)
        except asyncio.CancelledError:  # shutdown severs open keep-alives
            pass
        finally:
            if task is not None:
                self._connections.discard(task)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(response_bytes(
                        exc.status, error_payload(exc.status, exc.message),
                        headers=exc.headers, keep_alive=False,
                    ))
                    await writer.drain()
                    self._count_request("invalid", exc.status, 0.0)
                    return
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return
                if request is None:
                    return
                request.request_id = next(self._request_ids)
                request.received_monotonic = time.monotonic()
                started_perf = time.perf_counter()
                status, payload, headers = await self._dispatch(request)
                keep = request.keep_alive
                # Record stats and the trace lane *before* sending the
                # response: once a client has read its reply, /stats and
                # the trace must already reflect the request.
                latency = time.monotonic() - request.received_monotonic
                self._count_request(request.path, status, latency)
                if self.obs is not None:
                    self.obs.sink.wall_event(
                        f"serve.request{request.path}", started_perf,
                        tid=request.request_id, cat="serve",
                        args={"status": status, "path": request.path},
                    )
                try:
                    writer.write(response_bytes(
                        status, payload, headers=headers, keep_alive=keep,
                    ))
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    return
                if not keep:
                    return
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(
        self, request: Request
    ) -> tuple[int, Any, dict[str, str]]:
        """Route + run one request, mapping every failure to a status."""
        try:
            handler = self.router.resolve(request.method, request.path)
            return await handler(request)
        except HttpError as exc:
            return exc.status, error_payload(exc.status, exc.message), \
                exc.headers
        except ShedError as exc:
            payload = error_payload(429, str(exc))
            payload["retry_after_seconds"] = exc.retry_after_seconds
            return 429, payload, {
                "Retry-After": str(
                    max(1, math.ceil(exc.retry_after_seconds))
                ),
            }
        except DeadlineExpired as exc:
            payload = error_payload(504, str(exc))
            payload["stage"] = exc.stage
            return 504, payload, {}
        except (ConfigurationError, ReproError) as exc:
            return 400, error_payload(400, str(exc)), {}
        except Exception as exc:  # noqa: BLE001 - the service must answer
            traceback.print_exc(file=sys.stderr)
            return 500, error_payload(500, f"internal error: {exc}"), {}

    def _count_request(self, path: str, status: int, latency: float) -> None:
        self._requests_total += 1
        self._requests_by_endpoint[path] = \
            self._requests_by_endpoint.get(path, 0) + 1
        key = str(status)
        self._requests_by_status[key] = \
            self._requests_by_status.get(key, 0) + 1
        self._latencies.append(latency)
        if len(self._latencies) > _LATENCY_WINDOW:
            del self._latencies[: len(self._latencies) - _LATENCY_WINDOW]
        if self.obs is not None:
            self.obs.metrics.counter("serve.requests").inc()
            self.obs.metrics.counter(f"serve.status.{status}").inc()

    # -- control endpoints ---------------------------------------------------

    async def _handle_healthz(
        self, request: Request
    ) -> tuple[int, Any, dict[str, str]]:
        return 200, {
            "status": "ok",
            "uptime_seconds": time.time() - self._started_unix,
            "datasets": sorted(self._datasets),
        }, {}

    async def _handle_stats(
        self, request: Request
    ) -> tuple[int, Any, dict[str, str]]:
        return 200, self.stats(), {}

    def stats(self) -> dict[str, Any]:
        """The schema-versioned ``/stats`` document (v1)."""
        import repro

        window = sorted(self._latencies)
        return {
            "schema": STATS_SCHEMA_VERSION,
            "service": "repro-serve",
            "version": repro.__version__,
            "started_unix": self._started_unix,
            "uptime_seconds": time.time() - self._started_unix,
            "requests": {
                "total": self._requests_total,
                "by_endpoint": dict(self._requests_by_endpoint),
                "by_status": dict(self._requests_by_status),
            },
            "admission": self.admission.snapshot(),
            "cache": self.cache.snapshot(),
            "coalesce": self.coalescer.snapshot(),
            "latency": {
                "count": len(window),
                "p50_seconds": _percentile(window, 0.50),
                "p99_seconds": _percentile(window, 0.99),
            },
            "datasets": [
                entry.snapshot() for entry in self._datasets.values()
            ],
        }

    # -- the mine-class endpoints --------------------------------------------

    def _make_query_handler(self, kind: str):
        async def handler(request: Request):
            return await self._handle_query(request, kind)

        return handler

    def _parse_query(
        self, body: Any, kind: str
    ) -> tuple[ResidentDataset, _QuerySpec, dict[str, Any]]:
        """Validate one request body into (dataset, spec, ledger config)."""
        if not isinstance(body, Mapping):
            raise HttpError(400, "request body must be a JSON object")
        unknown = set(body) - _FIELDS_BY_KIND[kind]
        if unknown:
            raise HttpError(
                400,
                f"unknown field(s) {sorted(unknown)}; accepted: "
                + ", ".join(sorted(_FIELDS_BY_KIND[kind])),
            )
        name = body.get("dataset")
        if not isinstance(name, str) or not name:
            raise HttpError(400, "field 'dataset' (string) is required")
        entry = self._datasets.get(name)
        if entry is None:
            raise HttpError(
                404,
                f"dataset {name!r} is not resident on this server "
                f"(loaded: {sorted(self._datasets)})",
            )
        algorithm = body.get("algorithm", self.default_algorithm)
        representation = body.get("representation", "auto")
        backend = body.get("backend", self.default_backend)
        options = body.get("options") or {}
        if not isinstance(options, Mapping):
            raise HttpError(400, "field 'options' must be an object")
        min_support = body.get("min_support")
        if min_support is None:
            if kind == "topk" and entry.index is not None:
                min_support = entry.index.floor
            else:
                raise HttpError(
                    400, "field 'min_support' (number) is required"
                )
        if not isinstance(min_support, (int, float)) \
                or isinstance(min_support, bool):
            raise HttpError(400, "field 'min_support' must be a number")
        k = None
        if kind == "topk":
            k = body.get("k", 10)
            if not isinstance(k, int) or isinstance(k, bool) or k < 0:
                raise HttpError(400, "field 'k' must be a non-negative int")
        min_confidence = 0.6
        if kind == "rules":
            min_confidence = body.get("min_confidence", 0.6)
            if not isinstance(min_confidence, (int, float)) \
                    or isinstance(min_confidence, bool):
                raise HttpError(400, "field 'min_confidence' must be a number")
        limit = body.get("top")
        if limit is not None and (
            not isinstance(limit, int) or isinstance(limit, bool) or limit < 0
        ):
            raise HttpError(400, "field 'top' must be a non-negative int")

        # The canonical ledger config: the exact dict a plain repro.mine()
        # would hash, so the cache key IS the ledger key.  Memoized —
        # resolution walks the database for representation="auto".
        memo_key = (
            name, kind, algorithm, str(representation), backend,
            repr(min_support), tuple(sorted(options.items())),
            k, min_confidence if kind == "rules" else None,
        )
        config = self._config_cache.get(memo_key)
        if config is None:
            config = resolve_run_config(
                entry.db,
                algorithm=algorithm,
                representation=representation,
                backend=backend,
                min_support=min_support,
                **dict(options),
            )
            config["query"] = kind
            if kind == "topk":
                config["k"] = k
            if kind == "rules":
                config["min_confidence"] = min_confidence
            self._config_cache[memo_key] = config
            if len(self._config_cache) > 4096:
                self._config_cache.clear()  # crude cap; entries are tiny
        spec = _QuerySpec(
            kind=kind,
            algorithm=algorithm,
            representation=config["representation"],
            backend=backend,
            min_support=int(config["min_support"]),
            options=dict(options),
            k=k,
            min_confidence=float(min_confidence),
            fresh=bool(body.get("fresh", False)),
            limit=limit,
        )
        return entry, spec, config

    async def _handle_query(
        self, request: Request, kind: str
    ) -> tuple[int, Any, dict[str, str]]:
        """admission → cache → coalesce → engine → ledger, one request."""
        body = request.json()
        entry, spec, config = self._parse_query(body, kind)
        key = (entry.fingerprint.get("sha256", ""), config_hash(config))
        deadline = self.admission.deadline_for(
            self._deadline_seconds(body)
        )
        rid = request.request_id
        if self.obs is not None:
            self.obs.sink.set_thread_name(
                0, rid, f"req {rid} {kind} {entry.name}"
            )

        self.admission.admit(deadline)
        try:
            source = None
            coalesced = False
            if not spec.fresh:
                cached = self.cache.get(key)
                if cached is not None:
                    source = "cache"
                    payload = cached
                    if self.obs is not None:
                        self.obs.metrics.counter("serve.cache.hits").inc()
            if source is None:
                loop = asyncio.get_running_loop()

                def run_backend() -> dict[str, Any]:
                    return self._answer(entry, spec, config, rid)

                async def thunk() -> dict[str, Any]:
                    return await loop.run_in_executor(
                        self._executor, run_backend
                    )

                try:
                    payload, coalesced = await self.coalescer.run(
                        key, thunk,
                        timeout=self.admission.remaining(deadline),
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    self.admission.expire("backend")
                source = "coalesced" if coalesced else payload["source"]
                if not spec.fresh:
                    self.cache.put(key, payload)
        finally:
            self.admission.release()

        latency = time.monotonic() - request.received_monotonic
        self._record_query(
            entry, config, payload, source=source, latency=latency,
            request_id=rid, coalesced=coalesced,
        )
        response = dict(payload)
        response["source"] = source
        response["elapsed_seconds"] = latency
        response["request_id"] = rid
        if spec.limit is not None and "itemsets" in response:
            response["itemsets"] = response["itemsets"][: spec.limit]
        if spec.limit is not None and "rules" in response:
            response["rules"] = response["rules"][: spec.limit]
        return 200, response, {}

    def _deadline_seconds(self, body: Mapping[str, Any]) -> float | None:
        value = body.get("deadline_seconds")
        if value is None:
            return None
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise HttpError(400, "field 'deadline_seconds' must be a number")
        return float(value)

    def _record_query(
        self,
        entry: ResidentDataset,
        config: dict[str, Any],
        payload: Mapping[str, Any],
        *,
        source: str,
        latency: float,
        request_id: int,
        coalesced: bool,
    ) -> None:
        """Append the per-request ``serve-query`` ledger record."""
        if self.obs is not None:
            self.obs.metrics.counter(f"serve.source.{source}").inc()
        record_run(
            SERVE_LEDGER_KIND,
            dataset=entry.fingerprint,
            config=config,
            wall_seconds=latency,
            cpu_seconds=0.0,
            n_itemsets=payload.get("n_itemsets"),
            ledger=self.ledger,
            extra={
                "source": source,
                "endpoint": config.get("query", "mine"),
                "request_id": request_id,
                "coalesced": coalesced,
            },
        )

    # -- the blocking backend step (executor threads only) --------------------

    def _answer(
        self,
        entry: ResidentDataset,
        spec: _QuerySpec,
        config: Mapping[str, Any],
        request_id: int,
    ) -> dict[str, Any]:
        """Produce one answer payload; runs on the executor, may block.

        A resident index that covers the support answers in O(answer);
        ``fresh`` requests and uncovered supports run the engine.  CHARM
        requests always run the engine (the index restores *frequent*
        itemsets, a CHARM run returns closed ones only).
        """
        request_obs = None
        if self.obs is not None:
            request_obs = self._request_obs(request_id)
        index = entry.index
        if (
            not spec.fresh
            and index is not None
            and spec.kind in ("mine", "topk", "rules")
            and spec.algorithm != "charm"
            and spec.min_support >= index.floor
        ):
            started = time.perf_counter()
            payload = self._answer_from_index(index, spec)
            if request_obs is not None:
                request_obs.sink.wall_event(
                    "serve.index", started, cat="serve",
                    args={"floor": index.floor, "query": spec.kind},
                )
                request_obs.metrics.counter("serve.source.index.runs").inc()
            return payload

        result = self._miner(
            entry.db,
            algorithm=spec.algorithm,
            representation=spec.representation,
            backend=spec.backend,
            min_support=spec.min_support,
            obs=request_obs,
            ledger=self.ledger,
            **spec.options,
        )
        if spec.kind == "mine":
            return self._mine_payload(result)
        if spec.kind == "topk":
            pairs = result.top_k(spec.k, min_support=spec.min_support)
            return {
                "source": "engine",
                "k": spec.k,
                "n_itemsets": len(pairs),
                "itemsets": [
                    [list(items), int(support)] for items, support in pairs
                ],
            }
        rules = result.rules(min_confidence=spec.min_confidence)
        return self._rules_payload(rules, spec)

    def _answer_from_index(
        self, index: "ItemsetIndex", spec: _QuerySpec
    ) -> dict[str, Any]:
        if spec.kind == "topk":
            pairs = index.top_k(spec.k, min_support=spec.min_support)
            return {
                "source": "index",
                "k": spec.k,
                "n_itemsets": len(pairs),
                "itemsets": [
                    [list(items), int(support)] for items, support in pairs
                ],
            }
        if spec.kind == "rules":
            rules = index.rules(
                min_support=spec.min_support,
                min_confidence=spec.min_confidence,
            )
            payload = self._rules_payload(rules, spec)
            payload["source"] = "index"
            return payload
        result = index.frequent_at(spec.min_support)
        payload = self._mine_payload(result)
        payload["source"] = "index"
        return payload

    @staticmethod
    def _mine_payload(result) -> dict[str, Any]:
        ordered = sorted(
            result.itemsets.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return {
            "source": "engine",
            "n_itemsets": len(ordered),
            "min_support": int(result.min_support),
            "itemsets": [
                [list(items), int(support)] for items, support in ordered
            ],
        }

    @staticmethod
    def _rules_payload(rules, spec: _QuerySpec) -> dict[str, Any]:
        return {
            "source": "engine",
            "n_itemsets": len(rules),
            "min_confidence": spec.min_confidence,
            "rules": [
                {
                    "antecedent": list(rule.antecedent),
                    "consequent": list(rule.consequent),
                    "support": rule.support,
                    "confidence": rule.confidence,
                    "lift": rule.lift,
                }
                for rule in rules
            ],
        }

    def _request_obs(self, request_id: int):
        """A per-request ObsContext: shared metrics, request-lane sink."""
        from repro.obs import ObsContext

        return ObsContext(
            sink=_RequestLaneSink(self.obs.sink, request_id),
            metrics=self.obs.metrics,
        )


# --------------------------------------------------------------------------
# /stats schema contract
# --------------------------------------------------------------------------


def validate_stats(document: Any) -> None:
    """Raise ``ValueError`` when a ``/stats`` document violates schema v1.

    The CI serve job gates the live endpoint through this — like
    :func:`repro.obs.live.validate_status`, the schema is a published
    contract, not an internal detail.
    """
    problems: list[str] = []
    if not isinstance(document, Mapping):
        raise ValueError("stats document must be a JSON object")
    if document.get("schema") != STATS_SCHEMA_VERSION:
        problems.append(
            f"schema must be {STATS_SCHEMA_VERSION}, got "
            f"{document.get('schema')!r}"
        )
    if document.get("service") != "repro-serve":
        problems.append("service must be 'repro-serve'")
    for key in ("started_unix", "uptime_seconds"):
        if not isinstance(document.get(key), (int, float)):
            problems.append(f"{key} must be a number")
    requests = document.get("requests")
    if not isinstance(requests, Mapping):
        problems.append("requests must be an object")
    else:
        if not isinstance(requests.get("total"), int):
            problems.append("requests.total must be an int")
        for key in ("by_endpoint", "by_status"):
            group = requests.get(key)
            if not isinstance(group, Mapping) or not all(
                isinstance(v, int) for v in group.values()
            ):
                problems.append(
                    f"requests.{key} must map names to int counts"
                )
    admission = document.get("admission")
    if not isinstance(admission, Mapping):
        problems.append("admission must be an object")
    else:
        for key in ("inflight", "max_inflight", "admitted_total",
                    "shed_total", "deadline_rejected"):
            if not isinstance(admission.get(key), int):
                problems.append(f"admission.{key} must be an int")
    cache = document.get("cache")
    if not isinstance(cache, Mapping):
        problems.append("cache must be an object")
    else:
        for key in ("entries", "max_entries", "hits", "misses"):
            if not isinstance(cache.get(key), int):
                problems.append(f"cache.{key} must be an int")
    coalesce = document.get("coalesce")
    if not isinstance(coalesce, Mapping):
        problems.append("coalesce must be an object")
    else:
        for key in ("inflight_keys", "leaders", "followers"):
            if not isinstance(coalesce.get(key), int):
                problems.append(f"coalesce.{key} must be an int")
    latency = document.get("latency")
    if not isinstance(latency, Mapping):
        problems.append("latency must be an object")
    else:
        if not isinstance(latency.get("count"), int):
            problems.append("latency.count must be an int")
        for key in ("p50_seconds", "p99_seconds"):
            value = latency.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"latency.{key} must be a number >= 0")
    datasets = document.get("datasets")
    if not isinstance(datasets, list):
        problems.append("datasets must be a list")
    else:
        for position, entry in enumerate(datasets):
            if not isinstance(entry, Mapping):
                problems.append(f"datasets[{position}] must be an object")
                continue
            for key in ("name", "sha256"):
                if not isinstance(entry.get(key), str):
                    problems.append(f"datasets[{position}].{key} "
                                    "must be a string")
            for key in ("n_transactions", "n_items", "packed_bytes"):
                if not isinstance(entry.get(key), int):
                    problems.append(f"datasets[{position}].{key} "
                                    "must be an int")
            index = entry.get("index")
            if index is not None and not isinstance(index, Mapping):
                problems.append(f"datasets[{position}].index must be "
                                "null or an object")
    if problems:
        raise ValueError("; ".join(problems))


# --------------------------------------------------------------------------
# Thread harness (tests + in-process benchmarking)
# --------------------------------------------------------------------------


class ServerThread:
    """Run a :class:`MiningServer` on a dedicated event-loop thread.

    The test suite and ``scripts/bench_serve.py`` drive the server with
    plain blocking ``http.client`` calls; this harness owns the loop
    thread and gives them a bound port::

        handle = ServerThread(server)
        handle.start()
        ... http.client.HTTPConnection("127.0.0.1", handle.port) ...
        handle.stop()
    """

    def __init__(self, server: MiningServer) -> None:
        self.server = server
        self.loop: asyncio.AbstractEventLoop | None = None
        self._thread = None
        self._ready = None
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def base_url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def start(self, timeout: float = 10.0) -> "ServerThread":
        import threading

        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server failed to start within timeout")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surface bind failures to start()
            self._startup_error = exc
            self._ready.set()
            self.loop.close()
            return
        self._ready.set()
        try:
            self.loop.run_forever()
        finally:
            self.loop.run_until_complete(self.server.aclose())
            self.loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        if self.loop is None or self._thread is None:
            return
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
