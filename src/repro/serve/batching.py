"""Request coalescing: identical concurrent queries share one backend run.

A popular (dataset, config) pair arriving N times while the first copy
is still mining must not run the engine N times — the paper's whole
point is that the expensive part is the mine, and the service's whole
point is amortizing it.  The :class:`Coalescer` keeps one future per
in-flight cache key; the first request becomes the **leader** (it runs
the backend), every concurrent duplicate becomes a **follower** and
awaits the leader's future.  The result fans out to all waiters, and
each waiter still applies its *own* deadline — a follower can time out
without cancelling the leader's run (the future is shielded), so the
answer still lands in the cache for the next caller.

Single event-loop discipline again: the dict is only touched from loop
callbacks, so no lock.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable

from repro.serve.cache import CacheKey


class Coalescer:
    """One shared future per in-flight cache key."""

    def __init__(self) -> None:
        self._inflight: dict[CacheKey, asyncio.Future] = {}
        self._tasks: set[asyncio.Task] = set()
        self.leaders = 0
        self.followers = 0

    def __len__(self) -> int:
        return len(self._inflight)

    async def run(
        self,
        key: CacheKey,
        thunk: Callable[[], Awaitable[dict[str, Any]]],
        *,
        timeout: float | None = None,
    ) -> tuple[dict[str, Any], bool]:
        """Run ``thunk`` once per key; returns ``(payload, coalesced)``.

        ``coalesced`` is True for followers that rode an existing run.
        ``timeout`` bounds only this caller's wait: on expiry the shared
        run keeps going (``asyncio.shield``) and ``TimeoutError``
        propagates to the caller.  A leader whose thunk raises fans the
        exception out to every follower of that run.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.followers += 1
            payload = await asyncio.wait_for(
                asyncio.shield(existing), timeout
            )
            return payload, True

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self.leaders += 1
        try:
            # The leader's own wait is deadline-bounded too, but the
            # underlying work is shielded so followers (and the cache)
            # still get the answer if only the leader gives up.
            task = asyncio.ensure_future(thunk())
            self._tasks.add(task)
            task.add_done_callback(self._settle(future))
            payload = await asyncio.wait_for(asyncio.shield(task), timeout)
            return payload, False
        finally:
            if future.done():
                self._inflight.pop(key, None)
            else:
                # Leader timed out but the run continues: leave the future
                # registered so late duplicates still coalesce; the settle
                # callback cleans up when the run finishes.
                pass

    def _settle(self, future: asyncio.Future):
        """Propagate a task's outcome into the shared future, then unregister."""

        def callback(task: asyncio.Task) -> None:
            self._tasks.discard(task)
            if task.cancelled():
                if not future.done():
                    future.cancel()
                for key, value in list(self._inflight.items()):
                    if value is future:
                        del self._inflight[key]
                return
            if not future.done():
                exc = task.exception()
                if exc is not None:
                    future.set_exception(exc)
                    # Every waiter may have timed out already; mark the
                    # exception retrieved so gc never logs a phantom error.
                    future.exception()
                else:
                    future.set_result(task.result())
            # Drop whichever key maps to this future (the leader's finally
            # may have removed it already on the fast path).
            for key, value in list(self._inflight.items()):
                if value is future:
                    del self._inflight[key]

        return callback

    async def cancel_pending(self) -> None:
        """Cancel any still-running leader tasks (server shutdown)."""
        pending = [task for task in self._tasks if not task.done()]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    def snapshot(self) -> dict[str, Any]:
        """The ``coalesce`` object in ``/stats``."""
        return {
            "inflight_keys": len(self._inflight),
            "leaders": self.leaders,
            "followers": self.followers,
        }
