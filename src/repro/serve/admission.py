"""Admission control: bounded concurrency, per-request deadlines, shedding.

The service's stability contract: a burst larger than the machine can
mine must fail **fast and explicitly** (HTTP 429 plus a ``Retry-After``
hint) instead of queueing unboundedly until every request times out.
Two independent gates implement it:

* **depth** — at most ``max_inflight`` mine-class requests are admitted
  at once (admitted = waiting on or occupying the backend executor; cache
  hits release their slot in microseconds).  Request ``max_inflight + 1``
  is shed with :class:`ShedError` → 429.
* **deadline** — every request carries a deadline (its own
  ``deadline_seconds`` or the server default).  A request whose deadline
  has already passed is rejected with :class:`DeadlineExpired` **before**
  any mining happens, and a request still waiting when its deadline
  arrives is abandoned by its waiter (the backend run, which cannot be
  killed mid-flight, completes and populates the cache for the next
  caller).

Everything here runs on the event loop thread, so plain integers are
race-free; the controller never blocks.
"""

from __future__ import annotations

import time
from typing import Any


class ShedError(Exception):
    """Raised when the inflight cap is hit; maps to 429 + Retry-After."""

    def __init__(self, retry_after_seconds: float) -> None:
        super().__init__(
            f"queue full; retry after {retry_after_seconds:g}s"
        )
        self.retry_after_seconds = retry_after_seconds


class DeadlineExpired(Exception):
    """Raised when a request's deadline passes; maps to 504."""

    def __init__(self, stage: str) -> None:
        super().__init__(f"deadline exceeded ({stage})")
        self.stage = stage  # "admission" | "backend"


class AdmissionController:
    """Depth + deadline gatekeeper for the mine-class endpoints."""

    def __init__(
        self,
        *,
        max_inflight: int = 8,
        default_deadline_seconds: float = 30.0,
        retry_after_seconds: float = 1.0,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if default_deadline_seconds <= 0:
            raise ValueError("default_deadline_seconds must be positive")
        self.max_inflight = max_inflight
        self.default_deadline_seconds = default_deadline_seconds
        self.retry_after_seconds = retry_after_seconds
        self.inflight = 0
        self.admitted_total = 0
        self.shed_total = 0
        self.deadline_rejected = 0

    def deadline_for(self, deadline_seconds: float | None) -> float:
        """An absolute ``time.monotonic`` deadline for one request."""
        budget = (
            self.default_deadline_seconds
            if deadline_seconds is None
            else float(deadline_seconds)
        )
        return time.monotonic() + budget

    @staticmethod
    def remaining(deadline: float) -> float:
        return deadline - time.monotonic()

    def admit(self, deadline: float) -> None:
        """Take one slot or raise; the caller must pair with :meth:`release`.

        The deadline gate runs first: an already-expired request must not
        consume a slot (nor count as shed load — it was never serveable).
        """
        if self.remaining(deadline) <= 0:
            self.deadline_rejected += 1
            raise DeadlineExpired("admission")
        if self.inflight >= self.max_inflight:
            self.shed_total += 1
            raise ShedError(self.retry_after_seconds)
        self.inflight += 1
        self.admitted_total += 1

    def release(self) -> None:
        self.inflight -= 1

    def expire(self, stage: str) -> None:
        """Record a post-admission deadline expiry and raise it."""
        self.deadline_rejected += 1
        raise DeadlineExpired(stage)

    def snapshot(self) -> dict[str, Any]:
        """The ``admission`` object in ``/stats``."""
        return {
            "inflight": self.inflight,
            "max_inflight": self.max_inflight,
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
            "deadline_rejected": self.deadline_rejected,
            "default_deadline_seconds": self.default_deadline_seconds,
            "retry_after_seconds": self.retry_after_seconds,
        }
