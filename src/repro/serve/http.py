"""A minimal stdlib HTTP/1.1 layer for :mod:`repro.serve`.

The query server speaks just enough HTTP for JSON request/response
serving over ``asyncio`` streams — no routing framework, no external
dependency, no TLS.  The subset implemented:

* request line + headers + ``Content-Length``-framed bodies (no chunked
  transfer encoding — a 411/400 is returned instead of guessing);
* persistent connections (HTTP/1.1 keep-alive semantics, honoring an
  explicit ``Connection: close`` from either side);
* hard limits on header block and body size, so a malformed or hostile
  client costs one bounded read, not memory.

Anything outside the subset raises :class:`HttpError`, which the
connection loop converts into a JSON error response with the right
status code.  Parsing is deliberately strict where it is cheap to be
(request-line shape, integer ``Content-Length``) and lenient where
clients genuinely vary (header case, optional ``\\r``).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Mapping
from urllib.parse import urlsplit

#: Reason phrases for every status the server emits.
STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}

#: Upper bounds: one request line / header block / body.
MAX_REQUEST_LINE_BYTES = 8 * 1024
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024


class HttpError(Exception):
    """A protocol-level failure that maps directly to a response status."""

    def __init__(
        self,
        status: int,
        message: str,
        *,
        headers: Mapping[str, str] | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str  # the raw request target, query string included
    headers: dict[str, str]  # header names lower-cased
    body: bytes = b""
    version: str = "HTTP/1.1"
    #: Filled by the router/server for logging and tracing.
    request_id: int = 0
    received_monotonic: float = 0.0
    _json: Any = field(default=None, repr=False)

    @property
    def path(self) -> str:
        """The target without its query string."""
        return urlsplit(self.target).path

    @property
    def keep_alive(self) -> bool:
        """Whether the connection survives this exchange."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def json(self) -> Any:
        """The body parsed as JSON; raises 400 on anything unparsable."""
        if self._json is None:
            if not self.body:
                raise HttpError(400, "request body must be a JSON object")
            try:
                self._json = json.loads(self.body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise HttpError(400, f"invalid JSON body: {exc}") from None
        return self._json


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` for malformed input and lets stream-level
    exceptions (``IncompleteReadError``, ``ConnectionResetError``)
    propagate — the connection loop treats both as a dead peer.
    """
    line = await reader.readline()
    if not line:
        return None  # peer closed between requests: normal keep-alive end
    if len(line) > MAX_REQUEST_LINE_BYTES:
        raise HttpError(431, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, "malformed request line")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        raw = await reader.readline()
        if not raw:
            raise HttpError(400, "truncated header block")
        if raw in (b"\r\n", b"\n"):
            break
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(431, "header block too large")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {raw[:64]!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HttpError(411, "chunked bodies are not supported; "
                             "send Content-Length")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"invalid Content-Length {length_text!r}") \
            from None
    if length < 0:
        raise HttpError(400, "negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return Request(
        method=method.upper(), target=target, headers=headers,
        body=body, version=version,
    )


def response_bytes(
    status: int,
    payload: Any,
    *,
    headers: Mapping[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one JSON response (status line + headers + body)."""
    body = json.dumps(payload, default=str).encode("utf-8")
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def error_payload(status: int, message: str) -> dict[str, Any]:
    """The uniform JSON error body."""
    return {
        "error": message,
        "status": status,
        "reason": STATUS_PHRASES.get(status, "Unknown"),
    }
