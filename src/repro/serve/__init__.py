"""repro.serve — mining-as-a-service.

A stdlib-only asyncio HTTP service that keeps datasets, packed bit
matrices, and :class:`~repro.index.ItemsetIndex` artifacts resident in
one process and answers mining queries concurrently.  The module map:

* :mod:`repro.serve.http` — minimal HTTP/1.1 framing (no external deps);
* :mod:`repro.serve.router` — (method, path) dispatch with 404/405
  semantics;
* :mod:`repro.serve.admission` — deadlines, bounded inflight depth,
  429-with-Retry-After load shedding;
* :mod:`repro.serve.cache` — the LRU answer cache keyed by the run
  ledger's (dataset fingerprint, config hash) identity pair;
* :mod:`repro.serve.batching` — single-flight coalescing of identical
  concurrent queries onto one backend run;
* :mod:`repro.serve.server` — :class:`MiningServer` tying it together,
  plus :class:`ServerThread` for tests/benchmarks and the ``/stats``
  schema contract (:func:`validate_stats`).

Start one from the CLI with ``repro serve DATASET [--index ART] ...``.
"""

from repro.serve.admission import (
    AdmissionController,
    DeadlineExpired,
    ShedError,
)
from repro.serve.batching import Coalescer
from repro.serve.cache import CacheKey, ResultCache
from repro.serve.http import HttpError, Request, read_request, response_bytes
from repro.serve.router import Router
from repro.serve.server import (
    SERVE_LEDGER_KIND,
    STATS_SCHEMA_VERSION,
    MiningServer,
    ResidentDataset,
    ServerThread,
    validate_stats,
)

__all__ = [
    "MiningServer",
    "ServerThread",
    "ResidentDataset",
    "AdmissionController",
    "ShedError",
    "DeadlineExpired",
    "Coalescer",
    "ResultCache",
    "CacheKey",
    "Router",
    "HttpError",
    "Request",
    "read_request",
    "response_bytes",
    "STATS_SCHEMA_VERSION",
    "SERVE_LEDGER_KIND",
    "validate_stats",
]
