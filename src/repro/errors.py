"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate configuration mistakes from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid parameter or inconsistent combination of parameters."""


class UnsupportedCombinationError(ConfigurationError):
    """A valid-looking algorithm × representation × backend combination that
    this build does not implement (e.g. Apriori on the multiprocessing
    backend, or a tidset on the vectorized backend).

    The message always names the supported alternatives, so the error doubles
    as documentation of the execution matrix.
    """


class DatasetError(ReproError):
    """A transaction database is malformed or cannot be parsed."""


class RepresentationError(ReproError):
    """A vertical representation was used outside its contract.

    Examples: combining candidates built against different databases, or
    requesting the diffset recurrence for candidates with mismatched
    prefixes.
    """


class MiningError(ReproError):
    """A mining algorithm detected an internal inconsistency."""


class IndexArtifactError(ReproError):
    """A persisted itemset-index artifact cannot be trusted.

    Raised when opening a file that is not an index artifact (bad magic),
    is truncated or internally inconsistent, declares an unknown schema
    version, or when an index is used against a database whose fingerprint
    does not match the one baked into the artifact header.
    """


class ParallelExecutionError(ReproError):
    """A real-parallel backend could not complete its task graph.

    Raised when a worker process fails repeatedly on the same task (beyond
    the retry budget), reports an unexpected exception, or the pool is torn
    down in an inconsistent state.  The shared-memory cleanup is guaranteed
    to have run by the time this propagates.
    """


class SimulationError(ReproError):
    """The machine or scheduler simulator was driven into an invalid state."""
