"""On-disk format of the itemset-index artifact (memory-mapped, versioned).

One self-describing file holds everything a query needs::

    bytes 0..7    magic  b"RPROFIDX"
    bytes 8..15   little-endian uint64: header length H in bytes
    bytes 16..16+H  header, canonical JSON (utf-8)
    ...padding to the next 64-byte boundary = payload base...
    payload       raw array bytes, each array 64-byte aligned

The header carries the schema version, the build configuration and its
ledger-style config hash, the **dataset fingerprint** (name, shape,
content sha — the provenance check that stops an index from answering for
the wrong database), the support floor, and an ``arrays`` table mapping
each array name to ``{dtype, shape, offset}`` with offsets relative to
the payload base.  Offsets being payload-relative keeps the header free
of a chicken-and-egg dependency on its own serialized length.

Readers memory-map the file once (``mmap.ACCESS_READ``) and expose
zero-copy ``np.frombuffer`` views, so opening a gigabyte artifact costs
page-table entries, not RAM, and the first query touches only the pages
it needs.  Every structural problem — wrong magic, unknown schema,
truncation, a declared array sticking out past end-of-file — raises
:class:`~repro.errors.IndexArtifactError` at open time, never a garbage
answer at query time.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.errors import IndexArtifactError

MAGIC = b"RPROFIDX"
#: Bumped on any layout/header change; readers reject versions they do not
#: understand instead of misinterpreting bytes.
SCHEMA_VERSION = 1
_ALIGN = 64
_PREFIX = struct.Struct("<8sQ")  # magic + header length


def _align(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def write_artifact(
    path: str | Path,
    header: Mapping[str, Any],
    arrays: Mapping[str, np.ndarray],
) -> Path:
    """Serialize ``arrays`` under ``header`` to ``path`` (atomic replace).

    The caller's header is extended with ``schema`` and the ``arrays``
    table; array insertion order becomes payload order.
    """
    table: dict[str, dict[str, Any]] = {}
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        table[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
        }
        offset = _align(offset + array.nbytes)
    full_header = dict(header)
    full_header["schema"] = SCHEMA_VERSION
    full_header["arrays"] = table
    header_bytes = json.dumps(
        full_header, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")
    payload_base = _align(_PREFIX.size + len(header_bytes))

    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(_PREFIX.pack(MAGIC, len(header_bytes)))
        fh.write(header_bytes)
        fh.write(b"\0" * (payload_base - _PREFIX.size - len(header_bytes)))
        position = 0
        for name, array in arrays.items():
            pad = table[name]["offset"] - position
            if pad:
                fh.write(b"\0" * pad)
            data = np.ascontiguousarray(array).tobytes()
            fh.write(data)
            position = table[name]["offset"] + len(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)  # a crashed build never leaves a half-artifact
    return path


def read_artifact(
    path: str | Path,
) -> tuple[dict[str, Any], dict[str, np.ndarray], mmap.mmap]:
    """Open an artifact: ``(header, arrays, mapping)``.

    The arrays are read-only zero-copy views into ``mapping``; the caller
    owns closing the mapping (after dropping the views).
    """
    path = Path(path)
    try:
        size = path.stat().st_size
    except OSError as exc:
        raise IndexArtifactError(f"cannot open index artifact: {exc}") from exc
    if size < _PREFIX.size:
        raise IndexArtifactError(
            f"{path} is too small ({size} bytes) to be an index artifact"
        )
    with open(path, "rb") as fh:
        mapping = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    arrays: dict[str, np.ndarray] = {}
    try:
        magic, header_len = _PREFIX.unpack_from(mapping, 0)
        if magic != MAGIC:
            raise IndexArtifactError(
                f"{path} is not an itemset-index artifact "
                f"(magic {magic!r}, expected {MAGIC!r})"
            )
        if _PREFIX.size + header_len > size:
            raise IndexArtifactError(
                f"{path} is truncated: header claims {header_len} bytes, "
                f"file holds {size - _PREFIX.size} past the prefix"
            )
        try:
            header = json.loads(
                mapping[_PREFIX.size:_PREFIX.size + header_len].decode("utf-8")
            )
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise IndexArtifactError(
                f"{path} has a corrupt header: {exc}"
            ) from exc
        schema = header.get("schema")
        if schema != SCHEMA_VERSION:
            raise IndexArtifactError(
                f"{path} uses schema version {schema!r}; this build reads "
                f"only version {SCHEMA_VERSION}"
            )
        table = header.get("arrays")
        if not isinstance(table, dict):
            raise IndexArtifactError(f"{path} header lacks an arrays table")
        payload_base = _align(_PREFIX.size + header_len)
        for name, spec in table.items():
            try:
                dtype = np.dtype(spec["dtype"])
                shape = tuple(int(d) for d in spec["shape"])
                offset = int(spec["offset"])
            except (KeyError, TypeError, ValueError) as exc:
                raise IndexArtifactError(
                    f"{path}: malformed array spec for {name!r}: {spec!r}"
                ) from exc
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            nbytes = count * dtype.itemsize
            if payload_base + offset + nbytes > size:
                raise IndexArtifactError(
                    f"{path} is truncated: array {name!r} needs bytes "
                    f"[{payload_base + offset}, "
                    f"{payload_base + offset + nbytes}) but the file ends "
                    f"at {size}"
                )
            arrays[name] = np.frombuffer(
                mapping, dtype=dtype, count=count,
                offset=payload_base + offset,
            ).reshape(shape)
        return header, arrays, mapping
    except BaseException:
        # Views exported from the mapping must die before it can close.
        arrays.clear()
        mapping.close()
        raise
