"""``repro.index`` — mine once, serve arbitrary-support queries forever.

The paper mines one (dataset, support) pair per big-machine run; a user
serving workload *queries* — "what is frequent at 30%?", "support of
{2, 5}?", "top ten itemsets?" — and re-mining per question wastes the
machine.  :class:`ItemsetIndex` separates the expensive mine from the
cheap lookup:

* **build** once at a low support *floor*: CHARM
  (:mod:`repro.core.charm`) mines the closed-itemset lattice — a lossless
  compression of every frequent itemset at or above the floor;
* **persist** it as a memory-mapped, schema-versioned artifact
  (:mod:`repro.index.artifact`) whose header bakes in the dataset
  fingerprint and the ledger config hash, so provenance is checked, not
  assumed;
* **query** at any support >= floor without touching the raw database:
  the restore rules in :mod:`repro.index.lattice` recover exact itemsets
  and exact supports, bit-identical to a fresh ``repro.mine()`` at that
  support (hypothesis-tested).

The index implements the same :class:`~repro.core.queryable.Queryable`
protocol as :class:`~repro.core.result.MiningResult`, so serving code is
one code path::

    index = ItemsetIndex.build(db, floor=0.01)
    index.save("retail.fidx")
    ...
    index = ItemsetIndex.open("retail.fidx")     # mmap, O(1) RAM
    index.frequent_at(0.05)                      # exact, no re-mine
    index.support_of((2, 5))                     # posting-list intersection
    index.rules(min_support=0.05, min_confidence=0.8)

``repro.mine(db, index=...)`` and the ``repro index build|query|info``
CLI ride on top; builds and queries are recorded ledger runs.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

import numpy as np

from repro.core.itemset import Itemset
from repro.core.result import MiningResult, resolve_support_count
from repro.errors import ConfigurationError, IndexArtifactError
from repro.index import artifact as artifact_mod
from repro.index import lattice

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datasets.transaction_db import TransactionDatabase
    from repro.obs import ObsContext
    from repro.rules.generation import AssociationRule

__all__ = ["ItemsetIndex", "INDEX_SCHEMA_VERSION"]

INDEX_SCHEMA_VERSION = artifact_mod.SCHEMA_VERSION

#: Array names in the artifact payload (also the in-memory attribute map).
_ARRAY_NAMES = ("items", "offsets", "supports", "post_ids", "post_offsets")


class ItemsetIndex:
    """A servable closed-itemset lattice for one (database, floor) pair.

    Construct through :meth:`build` (mines the database) or :meth:`open`
    (memory-maps a saved artifact); the query surface is the
    :class:`~repro.core.queryable.Queryable` protocol plus :meth:`info`.
    """

    def __init__(
        self,
        header: Mapping[str, Any],
        arrays: Mapping[str, np.ndarray],
        *,
        mapping=None,
        path: Path | None = None,
    ) -> None:
        missing = [name for name in _ARRAY_NAMES if name not in arrays]
        if missing:
            raise IndexArtifactError(
                f"index artifact is missing array(s) {missing}"
            )
        self._header = dict(header)
        self._arrays = {name: arrays[name] for name in _ARRAY_NAMES}
        self._mapping = mapping
        self.path = path
        self._closed = False

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        db: "TransactionDatabase",
        floor: float | int,
        *,
        obs: "ObsContext | None" = None,
        ledger=None,
    ) -> "ItemsetIndex":
        """Mine ``db`` once at ``floor`` into an in-memory index.

        ``floor`` is the lowest support the index will ever answer for —
        relative float or absolute count, resolved exactly like
        ``repro.mine``'s ``min_support``.  The build is a recorded ledger
        run (``kind="index-build"``) under the usual resolution rules.
        """
        from repro.core.charm import charm
        from repro.obs.ledger import config_hash, fingerprint_database, record_run

        min_count = resolve_support_count(db.n_transactions, floor)
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        closed = charm(db, min_count)
        ordered = lattice.sort_closed(closed.itemsets)
        items, offsets, supports = lattice.pack_closed(ordered)
        post_ids, post_offsets = lattice.build_postings(
            items, offsets, db.n_items
        )
        wall = time.perf_counter() - wall_start
        config = {
            "kind": "itemset-index",
            "algorithm": "charm",
            "floor": min_count,
            "schema": INDEX_SCHEMA_VERSION,
        }
        header = {
            "kind": "itemset-index",
            "created_unix": time.time(),
            "floor": min_count,
            "n_closed": len(ordered),
            "n_transactions": db.n_transactions,
            "n_items": db.n_items,
            "dataset": fingerprint_database(db),
            "config": config,
            "config_hash": config_hash(config),
            "build_wall_seconds": wall,
        }
        index = cls(
            header,
            {
                "items": items,
                "offsets": offsets,
                "supports": supports,
                "post_ids": post_ids,
                "post_offsets": post_offsets,
            },
        )
        if obs is not None:
            obs.metrics.counter("index.builds").inc()
            obs.metrics.gauge("index.n_closed").set(len(ordered))
            obs.sink.wall_event(
                "index.build", wall_start, cat="index",
                args={"floor": min_count, "n_closed": len(ordered)},
            )
        record_run(
            "index-build",
            db=db,
            config=config,
            wall_seconds=wall,
            cpu_seconds=time.process_time() - cpu_start,
            n_itemsets=len(ordered),
            obs=obs,
            ledger=ledger,
        )
        return index

    def save(self, path: str | Path) -> Path:
        """Persist the index as a memory-mappable artifact at ``path``."""
        self._check_open()
        return artifact_mod.write_artifact(path, self._header, self._arrays)

    @classmethod
    def open(cls, path: str | Path) -> "ItemsetIndex":
        """Memory-map a saved artifact; queries touch only needed pages.

        Raises :class:`~repro.errors.IndexArtifactError` for anything that
        is not a structurally sound index artifact.
        """
        header, arrays, mapping = artifact_mod.read_artifact(path)
        try:
            return cls(header, arrays, mapping=mapping, path=Path(path))
        except BaseException:
            arrays.clear()
            mapping.close()
            raise

    def close(self) -> None:
        """Release the memory mapping (no-op for in-memory indexes).

        Array views handed out earlier keep their pages alive until the
        last one is garbage-collected; the index itself stops answering.
        """
        self._closed = True
        self._arrays = {}
        if self._mapping is not None:
            try:
                self._mapping.close()
            except BufferError:  # a caller still holds a view; gc will finish
                pass
            self._mapping = None

    def __enter__(self) -> "ItemsetIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise IndexArtifactError("this ItemsetIndex has been closed")

    # -- metadata -------------------------------------------------------------

    @property
    def floor(self) -> int:
        """Absolute support the index was built at (its query floor)."""
        return int(self._header["floor"])

    @property
    def query_floor(self) -> int:
        return self.floor

    @property
    def n_closed(self) -> int:
        return int(self._header["n_closed"])

    @property
    def n_transactions(self) -> int:
        return int(self._header["n_transactions"])

    @property
    def n_items(self) -> int:
        return int(self._header["n_items"])

    @property
    def dataset_fingerprint(self) -> dict[str, Any]:
        """The fingerprint of the database the index was built from."""
        return dict(self._header["dataset"])

    @property
    def config_hash(self) -> str:
        """Ledger-style hash of the build configuration."""
        return str(self._header["config_hash"])

    @property
    def schema(self) -> int:
        return int(self._header.get("schema", INDEX_SCHEMA_VERSION))

    def info(self) -> dict[str, Any]:
        """Header + storage summary (what ``repro index info`` prints)."""
        self._check_open()
        info = {
            key: self._header[key]
            for key in (
                "kind", "schema", "created_unix", "floor", "n_closed",
                "n_transactions", "n_items", "dataset", "config",
                "config_hash", "build_wall_seconds",
            )
            if key in self._header
        }
        info.setdefault("schema", self.schema)
        info["nbytes"] = {
            name: int(array.nbytes) for name, array in self._arrays.items()
        }
        if self.path is not None:
            info["path"] = str(self.path)
        return info

    def fingerprint_matches(self, fingerprint: Mapping[str, Any]) -> bool:
        """Whether a ready-made dataset fingerprint is this index's source.

        The fingerprint is the :func:`repro.obs.ledger.fingerprint_database`
        mapping; comparison covers the shared identity keys.  Callers with
        the database itself should prefer :meth:`check_database`, whose
        error message names the mismatching key.
        """
        expected = self._header.get("dataset", {})
        for key in ("sha256", "n_transactions", "n_items"):
            if (
                key in expected and key in fingerprint
                and expected[key] != fingerprint[key]
            ):
                return False
        return True

    def check_database(self, db: "TransactionDatabase") -> None:
        """Raise unless ``db`` is the database this index was built from."""
        from repro.obs.ledger import fingerprint_database

        expected = self._header.get("dataset", {})
        actual = fingerprint_database(db)
        for key in ("sha256", "n_transactions", "n_items"):
            if key in expected and expected[key] != actual[key]:
                raise IndexArtifactError(
                    f"index/database fingerprint mismatch on {key!r}: index "
                    f"was built from {expected!r}, queried with {actual!r}"
                )

    # -- the Queryable protocol -----------------------------------------------

    def _resolve_count(self, min_support: float | int | None) -> int:
        if min_support is None:
            return self.floor
        count = resolve_support_count(self.n_transactions, min_support)
        if count < self.floor:
            raise ConfigurationError(
                f"cannot answer at support {count}: this index was built "
                f"with floor {self.floor}; rebuild with a lower floor"
            )
        return count

    def frequent_at(self, min_support: float | int) -> MiningResult:
        """All frequent itemsets at ``min_support``, exact supports included.

        Bit-identical to ``repro.mine(db, min_support=...)`` on the source
        database — without touching it.
        """
        self._check_open()
        count = self._resolve_count(min_support)
        result = MiningResult(
            dataset=str(self._header.get("dataset", {}).get("name", "index")),
            algorithm="index",
            representation="closed-lattice",
            min_support=count,
            n_transactions=self.n_transactions,
            backend="index",
        )
        result.itemsets = lattice.restore_frequent(
            self._arrays["items"], self._arrays["offsets"],
            self._arrays["supports"], count,
        )
        return result

    def support_of(self, items: Iterable[int]) -> int | None:
        """Exact support via posting-list intersection (no enumeration)."""
        self._check_open()
        query = sorted({int(i) for i in items})
        if not query:
            return None
        return lattice.closure_support(
            query, self._arrays["post_ids"], self._arrays["post_offsets"],
            self._arrays["supports"],
        )

    def top_k(
        self, k: int, *, min_support: float | int | None = None
    ) -> list[tuple[Itemset, int]]:
        """The ``k`` most frequent itemsets at/above ``min_support``."""
        self._check_open()
        if k < 0:
            raise ConfigurationError(f"top_k needs k >= 0, got {k}")
        count = self._resolve_count(min_support)
        restored = lattice.restore_frequent(
            self._arrays["items"], self._arrays["offsets"],
            self._arrays["supports"], count,
        )
        return sorted(restored.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    def rules(
        self,
        *,
        min_support: float | int | None = None,
        min_confidence: float = 0.5,
        min_lift: float | None = None,
    ) -> "list[AssociationRule]":
        """Association rules over index-resolved supports.

        Materializes the frequent set at ``min_support`` (floor when
        omitted) and reuses the standard generation + metrics pipeline in
        :mod:`repro.rules`.
        """
        # Checked here too (not only inside frequent_at) so every Queryable
        # method fails the same way on a closed index.
        self._check_open()
        from repro.rules.generation import generate_rules

        result = self.frequent_at(
            self.floor if min_support is None else min_support
        )
        return generate_rules(
            result, min_confidence=min_confidence, min_lift=min_lift
        )

    # -- misc -----------------------------------------------------------------

    def closed_itemsets(self) -> dict[Itemset, int]:
        """The stored closed sets themselves (descending support order)."""
        self._check_open()
        items = self._arrays["items"]
        offsets = self._arrays["offsets"]
        supports = self._arrays["supports"]
        return {
            tuple(int(x) for x in items[offsets[i]:offsets[i + 1]]):
                int(supports[i])
            for i in range(self.n_closed)
        }

    def __len__(self) -> int:
        return self.n_closed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = self._header.get("dataset", {}).get("name", "?")
        return (
            f"ItemsetIndex({name!r}, floor={self.floor}, "
            f"n_closed={self.n_closed}, "
            f"{'mmap' if self._mapping is not None else 'memory'})"
        )
