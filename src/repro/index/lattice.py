"""Packed closed-itemset lattice and the restore rules over it.

A closed frequent itemset has no superset with equal support; the closed
subset of the frequent lattice is therefore a **lossless** compression of
it (Pasquier et al.; CHARM mines it directly).  Two facts make the
compressed form servable:

1. every frequent itemset ``X`` has a unique *closure* — the smallest
   closed superset — and ``support(X) == support(closure(X))``;
2. support is antitone under ⊆, so among all closed supersets of ``X``
   the closure is the one with **maximum** support:
   ``support(X) = max{ support(C) : X ⊆ C, C closed }``.

This module stores the closed sets found at a build-time support *floor*
as four packed NumPy arrays — concatenated item ids + offsets (the
itemsets), supports, and a per-item inverted index of closed-set ids (the
closure links) — ordered by **descending support** (ties broken
lexicographically).  That ordering is the whole trick:

* ``frequent_at(s)``: the closed sets with support >= s are a prefix of
  the arrays (one binary search); enumerating each prefix member's
  subsets **in order** and keeping the *first* support seen per subset
  assigns every frequent itemset exactly ``max`` over its closed
  supersets — its true support (restore rule 2 above).
* ``support_of(X)``: intersect the posting lists of X's items; the
  smallest surviving closed-set id is the highest-support closed
  superset, i.e. the closure.  No subset enumeration at all.

Both answers are bit-identical to re-mining the original database at the
queried support — the property the test suite pins with hypothesis.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.core.itemset import Itemset

ITEM_DTYPE = np.int32
OFFSET_DTYPE = np.int64
SUPPORT_DTYPE = np.int64
POSTING_DTYPE = np.int32


def sort_closed(itemsets: dict[Itemset, int]) -> list[tuple[Itemset, int]]:
    """Closed sets in the canonical serving order: support desc, then lex."""
    return sorted(itemsets.items(), key=lambda kv: (-kv[1], kv[0]))


def pack_closed(
    ordered: list[tuple[Itemset, int]],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack ordered closed sets into (items, offsets, supports) arrays.

    ``items`` is the flat concatenation of every closed set's (ascending)
    item ids; closed set ``i`` is ``items[offsets[i]:offsets[i + 1]]`` and
    has absolute support ``supports[i]``.
    """
    offsets = np.zeros(len(ordered) + 1, dtype=OFFSET_DTYPE)
    supports = np.zeros(len(ordered), dtype=SUPPORT_DTYPE)
    chunks: list[Itemset] = []
    total = 0
    for i, (items, support) in enumerate(ordered):
        total += len(items)
        offsets[i + 1] = total
        supports[i] = support
        chunks.append(items)
    flat = [item for chunk in chunks for item in chunk]
    return np.asarray(flat, dtype=ITEM_DTYPE), offsets, supports


def build_postings(
    items: np.ndarray, offsets: np.ndarray, n_items: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-item inverted index: which closed sets contain each item.

    Returns ``(post_ids, post_offsets)`` where item ``i``'s posting list is
    ``post_ids[post_offsets[i]:post_offsets[i + 1]]`` — closed-set ids in
    ascending order, which (by the serving order) is descending support.
    """
    n_closed = offsets.size - 1
    counts = np.zeros(n_items, dtype=OFFSET_DTYPE)
    if items.size:
        present, freq = np.unique(items, return_counts=True)
        counts[present] = freq
    post_offsets = np.zeros(n_items + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=post_offsets[1:])
    post_ids = np.zeros(int(post_offsets[-1]), dtype=POSTING_DTYPE)
    cursor = post_offsets[:-1].copy()
    for cid in range(n_closed):
        for item in items[offsets[cid]:offsets[cid + 1]]:
            post_ids[cursor[item]] = cid
            cursor[item] += 1
    return post_ids, post_offsets


def cutoff(supports: np.ndarray, min_count: int) -> int:
    """How many leading closed sets have support >= ``min_count``.

    ``supports`` is descending, so the qualifying sets are a prefix.
    """
    return int(np.searchsorted(-supports, -min_count, side="right"))


def _nonempty_subsets(items: Itemset) -> Iterator[Itemset]:
    """All non-empty subsets of an ascending tuple, canonical order kept."""
    n = len(items)
    for mask in range(1, 1 << n):
        yield tuple(items[i] for i in range(n) if mask >> i & 1)


def restore_frequent(
    items: np.ndarray,
    offsets: np.ndarray,
    supports: np.ndarray,
    min_count: int,
) -> dict[Itemset, int]:
    """All frequent itemsets at ``min_count`` with their exact supports.

    Every frequent-at-``min_count`` itemset is a subset of some closed set
    in the descending-support prefix (its closure is one), and the first
    closed superset encountered in that order has the maximum — hence
    exact — support.  The enumeration is output-sensitive the same way a
    re-mine is: materializing the full frequent set is the answer's size.
    """
    out: dict[Itemset, int] = {}
    for cid in range(cutoff(supports, min_count)):
        closed = tuple(
            int(x) for x in items[offsets[cid]:offsets[cid + 1]]
        )
        support = int(supports[cid])
        for subset in _nonempty_subsets(closed):
            if subset not in out:
                out[subset] = support
    return out


def closure_support(
    query: Iterable[int],
    post_ids: np.ndarray,
    post_offsets: np.ndarray,
    supports: np.ndarray,
) -> int | None:
    """Support of the query's closure, or ``None`` when no closed superset
    exists (the query is infrequent at the build floor).

    Intersects the per-item posting lists; the smallest common closed-set
    id is the closure (descending-support order), whose support is the
    query's exact support.
    """
    n_items = post_offsets.size - 1
    common: np.ndarray | None = None
    for item in query:
        if not 0 <= item < n_items:
            return None
        postings = post_ids[post_offsets[item]:post_offsets[item + 1]]
        if postings.size == 0:
            return None
        if common is None:
            common = postings
        else:
            common = np.intersect1d(common, postings, assume_unique=True)
        if common.size == 0:
            return None
    if common is None or common.size == 0:
        return None  # empty query or no shared closed superset
    return int(supports[int(common.min())])
