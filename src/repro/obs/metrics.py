"""Lightweight metrics: counters, gauges, and percentile histograms.

A :class:`MetricsRegistry` hands out named instruments get-or-create style,
so instrumented code never needs to pre-declare anything:

>>> registry = MetricsRegistry()
>>> registry.counter("apriori.level2.candidates").inc(91)
>>> registry.histogram("sim.thread_busy_s").observe(0.25)

Instrument names follow a dotted ``layer.scope.metric`` convention; the
hot-path names the pipeline emits are listed in :mod:`repro.obs` docs.
The registry renders itself as table rows (``report_rows``) so
:func:`repro.analysis.tables.render_metrics_report` stays a dumb grid.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

#: Percentiles reported by histogram summaries, in ascending order.
SUMMARY_PERCENTILES = (50.0, 90.0, 99.0)


@dataclass
class Counter:
    """A monotonically increasing value (float so byte totals fit)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """A distribution of observations with a percentile summary."""

    name: str
    _values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ConfigurationError(f"histogram {self.name!r} observed NaN")
        self._values.append(value)

    def observe_many(self, values) -> None:
        for value in np.asarray(values, dtype=np.float64).ravel():
            self.observe(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    def values(self) -> list[float]:
        """The raw observations, in observation order (serialization hook)."""
        return list(self._values)

    def summary(self) -> dict[str, float]:
        """count / min / max / mean / p50 / p90 / p99 (monotone by construction)."""
        if not self._values:
            return {"count": 0.0}
        arr = np.asarray(self._values, dtype=np.float64)
        out = {
            "count": float(arr.size),
            "min": float(arr.min()),
            "max": float(arr.max()),
            "mean": float(arr.mean()),
        }
        quantiles = np.percentile(arr, SUMMARY_PERCENTILES)
        # np.percentile is monotone in the percentile argument; keep the
        # invariant explicit anyway so float quirks can never invert it.
        quantiles = np.maximum.accumulate(quantiles)
        for pct, val in zip(SUMMARY_PERCENTILES, quantiles):
            out[f"p{pct:g}"] = float(val)
        return out


class MetricsRegistry:
    """Named instruments, get-or-create, with a renderable report."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument accessors ------------------------------------------------

    def _check_free(self, name: str, kind: str, table: dict) -> None:
        for other_kind, other in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other is not table and name in other:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a {other_kind}, "
                    f"cannot reuse it as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            self._check_free(name, "counter", self._counters)
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            self._check_free(name, "gauge", self._gauges)
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            self._check_free(name, "histogram", self._histograms)
            inst = self._histograms[name] = Histogram(name)
        return inst

    def merge_counters(self, counters: dict[str, float]) -> None:
        """Add a ``{name: value}`` snapshot into this registry's counters.

        Parallel backends run each worker with its own registry and ship
        ``registry.counters()`` dicts back with task results; merging here
        keeps the parent's view identical to what a single-process run
        would have recorded.
        """
        for name, value in counters.items():
            self.counter(name).inc(value)

    def merge_gauges(self, gauges: dict[str, float]) -> None:
        """Set each gauge to the snapshot value (last write wins, as always)."""
        for name, value in gauges.items():
            self.gauge(name).set(value)

    def merge_histogram_values(self, values: dict[str, list[float]]) -> None:
        """Fold raw observation lists into this registry's histograms.

        The counterpart of :meth:`histogram_values`: because raw values (not
        pre-computed summaries) cross the process boundary, the merged
        histogram's percentiles are exactly what one process observing
        everything would have reported.
        """
        for name, observations in values.items():
            histogram = self.histogram(name)
            for value in observations:
                histogram.observe(float(value))

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __contains__(self, name: str) -> bool:
        return (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        )

    def counters(self) -> dict[str, float]:
        return {name: c.value for name, c in self._counters.items()}

    def gauges(self) -> dict[str, float]:
        return {name: g.value for name, g in self._gauges.items()}

    def histograms(self) -> dict[str, dict[str, float]]:
        return {name: h.summary() for name, h in self._histograms.items()}

    def histogram_values(self) -> dict[str, list[float]]:
        """Raw observations per histogram (for cross-process shipping)."""
        return {name: h.values() for name, h in self._histograms.items()}

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot of every instrument."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (textfile-collector ready).

        Dotted instrument names are sanitized to the Prometheus charset
        under a ``repro_`` namespace: counters become ``<name>_total``
        counters, gauges stay gauges, and histograms export as summaries
        (one ``{quantile=...}`` sample per reported percentile plus
        ``_sum`` / ``_count``).  Write the result to a file ending in
        ``.prom`` and point node_exporter's textfile collector at it.
        """

        def sanitize(name: str) -> str:
            cleaned = "".join(
                ch if ch.isascii() and (ch.isalnum() or ch in "_:") else "_"
                for ch in name
            )
            if cleaned and cleaned[0].isdigit():
                cleaned = "_" + cleaned
            return f"repro_{cleaned}"

        def fmt(value: float) -> str:
            if value == int(value) and abs(value) < 1e15:
                return str(int(value))
            return repr(float(value))

        lines: list[str] = []
        for name in sorted(self._counters):
            metric = sanitize(name) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {fmt(self._counters[name].value)}")
        for name in sorted(self._gauges):
            metric = sanitize(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {fmt(self._gauges[name].value)}")
        for name in sorted(self._histograms):
            metric = sanitize(name)
            values = self._histograms[name].values()
            summary = self._histograms[name].summary()
            lines.append(f"# TYPE {metric} summary")
            for pct in SUMMARY_PERCENTILES:
                key = f"p{pct:g}"
                if key in summary:
                    lines.append(
                        f'{metric}{{quantile="{pct / 100.0:g}"}} '
                        f"{fmt(summary[key])}"
                    )
            lines.append(f"{metric}_sum {fmt(float(sum(values)))}")
            lines.append(f"{metric}_count {fmt(float(len(values)))}")
        return "\n".join(lines) + "\n" if lines else ""

    # -- reporting -----------------------------------------------------------

    def report_rows(self) -> list[list[str]]:
        """Sorted ``[name, kind, value, count, mean, p50, p99]`` rows."""

        def fmt(value: float) -> str:
            if value == int(value) and abs(value) < 1e15:
                return str(int(value))
            return f"{value:.6g}"

        rows: list[tuple[str, list[str]]] = []
        for name, counter in self._counters.items():
            rows.append((name, [name, "counter", fmt(counter.value), "", "", "", ""]))
        for name, gauge in self._gauges.items():
            rows.append((name, [name, "gauge", fmt(gauge.value), "", "", "", ""]))
        for name, histogram in self._histograms.items():
            summary = histogram.summary()
            if summary["count"] == 0:
                rows.append((name, [name, "histogram", "", "0", "", "", ""]))
            else:
                rows.append(
                    (
                        name,
                        [
                            name,
                            "histogram",
                            "",
                            fmt(summary["count"]),
                            fmt(summary["mean"]),
                            fmt(summary["p50"]),
                            fmt(summary["p99"]),
                        ],
                    )
                )
        return [row for _, row in sorted(rows)]

    REPORT_HEADERS = ["metric", "kind", "value", "count", "mean", "p50", "p99"]


# --------------------------------------------------------------------------
# Resource sampling
# --------------------------------------------------------------------------


def sample_rusage(*, children: bool = False) -> dict[str, float]:
    """A point-in-time resource snapshot of this process (or its children).

    Returns ``max_rss_bytes`` (peak resident set size, normalized to bytes —
    Linux reports KiB, macOS bytes), ``user_seconds`` / ``system_seconds``
    CPU time, page-fault counts, and context-switch counts.  Used by the run
    ledger for every record and surfaced in ``ScalabilityStudy.notes``.

    On platforms without the ``resource`` module (Windows), every field is
    0.0 rather than raising — telemetry must never break mining.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return {
            "max_rss_bytes": 0.0,
            "user_seconds": 0.0,
            "system_seconds": 0.0,
            "minor_page_faults": 0.0,
            "major_page_faults": 0.0,
            "voluntary_ctx_switches": 0.0,
            "involuntary_ctx_switches": 0.0,
        }
    who = resource.RUSAGE_CHILDREN if children else resource.RUSAGE_SELF
    usage = resource.getrusage(who)
    # ru_maxrss units differ by platform: bytes on macOS, KiB elsewhere.
    rss_scale = 1 if sys.platform == "darwin" else 1024
    return {
        "max_rss_bytes": float(usage.ru_maxrss * rss_scale),
        "user_seconds": float(usage.ru_utime),
        "system_seconds": float(usage.ru_stime),
        "minor_page_faults": float(usage.ru_minflt),
        "major_page_faults": float(usage.ru_majflt),
        "voluntary_ctx_switches": float(usage.ru_nvcsw),
        "involuntary_ctx_switches": float(usage.ru_nivcsw),
    }
