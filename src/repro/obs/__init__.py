"""repro.obs — structured tracing, metrics, and profiling.

The observability layer for the mining + NUMA-simulation pipeline:

* :class:`TraceSink` and friends (:class:`NullSink`, :class:`InMemorySink`,
  :class:`JsonlSink`, :class:`ChromeTraceSink`) capture span/duration
  events in Chrome trace-event form — simulated threads become trace tids,
  simulated thread counts become pids, so a scalability sweep loads as one
  Perfetto timeline per thread count;
* :class:`MetricsRegistry` holds named counters / gauges / histograms for
  the hot paths (per-level candidate volumes, intersection counts and byte
  volumes, NumaLink bytes per region, fork/join overhead, per-thread busy
  time);
* :class:`ObsContext` bundles one sink and one registry and is threaded
  end-to-end (``run_apriori`` / ``run_eclat`` / the simulators /
  ``run_scalability_study``), with ``None`` meaning "fully disabled";
* :mod:`repro.obs.procmerge` carries telemetry across process boundaries:
  parallel-backend workers record into a :class:`WorkerTelemetry`, drain it
  into serializable snapshots shipped with each task result, and
  :func:`merge_snapshot` folds them into the parent — one Chrome trace with
  a lane per worker process, counters merged as if single-process;
* :mod:`repro.obs.ledger` is the durable run history: every CLI run (and
  any library call with a ledger installed) appends a :class:`RunRecord` —
  config hash, dataset fingerprint, wall/CPU/RSS cost, metrics snapshot,
  git SHA — to an append-only JSONL under ``.repro/runs/``;
* :mod:`repro.obs.compare` diffs two runs or two ``BENCH_*.json`` files and
  powers the ``repro obs compare`` regression gate;
* :mod:`repro.obs.live` is the **live** signal plane — while a run is still
  executing, a :class:`ProgressTracker` publishes progress fractions,
  worker heartbeats, stall flags, and a blended ETA into an
  atomically-replaced status file under ``.repro/live/<run_id>.json``
  (``repro mine --progress`` / ``repro obs watch`` read it; the
  parent-side watchdog requests ``faulthandler`` traceback dumps from
  stalled workers over SIGUSR1);
* :mod:`repro.obs.anatomy` is the derived-analysis layer over a recorded
  trace: per-phase self-time attribution (compute / steal / ipc / io /
  idle, summing to lane wall clock), the critical path bounding the run's
  wall time, collapsed-stack + speedscope flamegraph exports, and the
  anatomy summary recorded into each ledger record's ``extra``
  (``repro obs anatomy|flame|explain``);
* :mod:`repro.obs.sampler` runs a background :class:`ResourceSampler`
  thread emitting RSS / CPU / io-byte counter tracks at a configurable
  interval, threaded through the engine, both process backends' workers,
  and out-of-core partition loops (``--sample-interval``).

Key instrument names emitted by the pipeline::

    apriori.level{k}.candidates / .frequent / .pruned   per-level volumes
    mine.intersections / mine.intersection_read_bytes   kernel traffic
    mine.bytes_written                                  payload output
    eclat.depth{d}.combines / .frequent                 per-depth volumes
    numalink.region.{label}.bytes                       remote bytes/region
    numalink.blade{b}.bytes                             per-blade link load
    region.{label}.makespan_s / .link_bound_s           bottleneck split
    sim.fork_join_s / sim.serial_s                      overhead totals
    sim.thread_busy_s                                   busy-time histogram
    region.{label}.imbalance                            max/mean - 1
    wall.mine_s / wall.replay_s                         host wall clock
    shared_memory.worker{w}.busy_s / .wait_s / .tasks   per-worker lanes
    shared_memory.load_balance.*                        merged busy/idle
    shared_memory.stalls                                watchdog flags
    obs.snapshots.merged / .dropped                     cross-process health
"""

from repro.obs.anatomy import (
    RunAnatomy,
    analyze,
    anatomy_summary,
    explain,
    flamegraph_collapsed,
    flamegraph_speedscope,
)
from repro.obs.context import ObsContext
from repro.obs.ledger import Ledger, RunRecord, record_run, set_default_ledger
from repro.obs.live import (
    EtaEstimator,
    ProgressTracker,
    progress_line,
    read_status,
    render_status,
    validate_status,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    sample_rusage,
)
from repro.obs.procmerge import WorkerTelemetry, merge_snapshot, snapshot
from repro.obs.sampler import ResourceSampler
from repro.obs.trace import (
    ChromeTraceSink,
    InMemorySink,
    JsonlSink,
    NullSink,
    Span,
    TraceEvent,
    TraceSink,
    US_PER_SECOND,
)

__all__ = [
    "ObsContext",
    "TraceSink",
    "TraceEvent",
    "Span",
    "NullSink",
    "InMemorySink",
    "JsonlSink",
    "ChromeTraceSink",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "US_PER_SECOND",
    "sample_rusage",
    "WorkerTelemetry",
    "snapshot",
    "merge_snapshot",
    "Ledger",
    "RunRecord",
    "record_run",
    "set_default_ledger",
    "ProgressTracker",
    "EtaEstimator",
    "validate_status",
    "read_status",
    "progress_line",
    "render_status",
    "RunAnatomy",
    "analyze",
    "anatomy_summary",
    "explain",
    "flamegraph_collapsed",
    "flamegraph_speedscope",
    "ResourceSampler",
]
