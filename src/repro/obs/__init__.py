"""repro.obs — structured tracing, metrics, and profiling.

The observability layer for the mining + NUMA-simulation pipeline:

* :class:`TraceSink` and friends (:class:`NullSink`, :class:`InMemorySink`,
  :class:`JsonlSink`, :class:`ChromeTraceSink`) capture span/duration
  events in Chrome trace-event form — simulated threads become trace tids,
  simulated thread counts become pids, so a scalability sweep loads as one
  Perfetto timeline per thread count;
* :class:`MetricsRegistry` holds named counters / gauges / histograms for
  the hot paths (per-level candidate volumes, intersection counts and byte
  volumes, NumaLink bytes per region, fork/join overhead, per-thread busy
  time);
* :class:`ObsContext` bundles one sink and one registry and is threaded
  end-to-end (``run_apriori`` / ``run_eclat`` / the simulators /
  ``run_scalability_study``), with ``None`` meaning "fully disabled".

Key instrument names emitted by the pipeline::

    apriori.level{k}.candidates / .frequent / .pruned   per-level volumes
    mine.intersections / mine.intersection_read_bytes   kernel traffic
    mine.bytes_written                                  payload output
    eclat.depth{d}.combines / .frequent                 per-depth volumes
    numalink.region.{label}.bytes                       remote bytes/region
    numalink.blade{b}.bytes                             per-blade link load
    region.{label}.makespan_s / .link_bound_s           bottleneck split
    sim.fork_join_s / sim.serial_s                      overhead totals
    sim.thread_busy_s                                   busy-time histogram
    region.{label}.imbalance                            max/mean - 1
    wall.mine_s / wall.replay_s                         host wall clock
"""

from repro.obs.context import ObsContext
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    ChromeTraceSink,
    InMemorySink,
    JsonlSink,
    NullSink,
    Span,
    TraceEvent,
    TraceSink,
    US_PER_SECOND,
)

__all__ = [
    "ObsContext",
    "TraceSink",
    "TraceEvent",
    "Span",
    "NullSink",
    "InMemorySink",
    "JsonlSink",
    "ChromeTraceSink",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "US_PER_SECOND",
]
