"""Run and benchmark comparison — the core of the regression gate.

One comparator handles every record shape the repo produces:

* **ledger records** (:mod:`repro.obs.ledger`) — compared on
  ``wall_seconds`` / ``cpu_seconds`` / ``max_rss_bytes``;
* **``BENCH_kernels.json``** — per-kernel ``seconds.*`` plus the
  ``speedup_over_python.*`` ratios;
* **``BENCH_shared_memory.json``** — ``serial_vectorized_seconds``, the
  per-worker-count ``shared_memory_seconds.*``, and ``speedup_vs_serial.*``;
* **``BENCH_worksteal.json``** — dispatch-mode ``*_seconds`` plus the
  ``measured_speedup.*`` / ``sim_speedup.*`` ratios;
* **``BENCH_index.json``** — ``build_seconds``, per-support
  ``mine_seconds.*`` / ``query_seconds.*``, and the
  ``speedup_vs_remine.*`` ratios;
* **``BENCH_outofcore.json``** — ``inmemory_seconds``, per-partition-count
  ``outofcore_seconds.*`` / ``predicted_seconds.*``, ``peak_rss_bytes``,
  and the ``efficiency_vs_inmemory.*`` ratios;
* **``BENCH_serve.json``** — per-workload ``requests_per_second.*``,
  ``latency_p50_seconds.*`` / ``latency_p99_seconds.*``, and the
  ``speedup_vs_cold.*`` ratios.

Each metric has a *direction*: for ``lower``-is-better metrics (seconds,
bytes) a regression is ``current > baseline * (1 + threshold)``; for
``higher``-is-better ratios (speedups) it is ``current < baseline *
(1 - threshold)``.  Ratios divide out absolute machine speed (each record's
own baseline kernel, measured in the same run), so they are the metrics to
gate on when baseline and current ran on different machines — pass
``ratios_only=True`` (the CI default) for exactly that.  Direction and
ratio-ness are *independent* flags: serve throughput (req/s) is
higher-is-better but machine-dependent, so it carries ``ratio=False`` and
stays out of the cross-machine gate.

Records describing different workloads (different dataset, smoke flag,
pair count, support threshold, or ledger config hash) are **incomparable**:
the result says so instead of reporting a fake regression, and the CLI
maps that to exit 0 by default or exit 2 under ``--strict``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

#: Record fields that identify the workload; a mismatch on any shared one
#: makes two records incomparable.
WORKLOAD_KEYS = (
    "dataset", "smoke", "n_pairs", "min_support", "n_transactions",
    "n_items", "config_hash", "floor",
)

#: Relative slowdown past which a metric counts as regressed (the ISSUE's
#: ">25%" bar).
DEFAULT_THRESHOLD = 0.25


@dataclass(frozen=True)
class MetricDelta:
    """One metric compared across two records."""

    name: str
    direction: str  # "lower" or "higher" is better
    baseline: float
    current: float

    @property
    def ratio(self) -> float:
        """current / baseline (inf when the baseline is zero)."""
        if self.baseline == 0:
            return float("inf") if self.current > 0 else 1.0
        return self.current / self.baseline

    def regressed(self, threshold: float) -> bool:
        if self.direction == "lower":
            return self.ratio > 1.0 + threshold
        return self.ratio < 1.0 - threshold

    def describe(self, threshold: float) -> str:
        arrow = "worse" if self.regressed(threshold) else "ok"
        return (
            f"{self.name:<40s} {self.baseline:>12.6g} -> {self.current:>12.6g}"
            f"  ({self.ratio:6.2f}x, {self.direction} is better)  [{arrow}]"
        )


@dataclass
class Comparison:
    """The outcome of comparing two records."""

    deltas: list[MetricDelta] = field(default_factory=list)
    comparable: bool = True
    reason: str = ""

    def regressions(self, threshold: float = DEFAULT_THRESHOLD) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed(threshold)]

    def exit_code(
        self, threshold: float = DEFAULT_THRESHOLD, *, strict: bool = False
    ) -> int:
        """0 = pass (or skipped), 1 = regression, 2 = incomparable+strict."""
        if not self.comparable:
            return 2 if strict else 0
        if not self.deltas:
            return 2 if strict else 0
        return 1 if self.regressions(threshold) else 0


def _flatten_seconds(
    record: Mapping[str, Any],
) -> dict[str, tuple[float, str, bool]]:
    """Extract ``name -> (value, direction, is_ratio)`` from any known
    record shape.  ``is_ratio`` marks machine-independent metrics (the
    ones ``ratios_only`` keeps); it defaults to ``direction == "higher"``,
    which is exact for every pre-serve shape — serve overrides it for
    throughput, which is higher-is-better but machine-bound."""
    out: dict[str, tuple[float, str, bool]] = {}

    def put(
        name: str, value: Any, direction: str, ratio: bool | None = None
    ) -> None:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if ratio is None:
                ratio = direction == "higher"
            out[name] = (float(value), direction, ratio)

    # Ledger RunRecord shape.
    if "schema" in record and "wall_seconds" in record:
        put("wall_seconds", record.get("wall_seconds"), "lower")
        put("cpu_seconds", record.get("cpu_seconds"), "lower")
        put("max_rss_bytes", record.get("max_rss_bytes"), "lower")
        # Runs traced with obs carry an anatomy summary in extra: the
        # per-bucket self-time breakdown compares like any other seconds.
        extra = record.get("extra")
        if isinstance(extra, Mapping):
            anatomy = extra.get("anatomy")
            if isinstance(anatomy, Mapping):
                buckets = anatomy.get("buckets")
                if isinstance(buckets, Mapping):
                    for bucket, seconds in buckets.items():
                        put(f"anatomy.{bucket}_seconds", seconds, "lower")
        return out
    # BENCH_kernels.json shape.
    for group, direction in (
        ("seconds", "lower"), ("speedup_over_python", "higher"),
    ):
        values = record.get(group)
        if isinstance(values, Mapping):
            for key, value in values.items():
                put(f"{group}.{key}", value, direction)
    # BENCH_shared_memory.json shape.
    put("serial_vectorized_seconds",
        record.get("serial_vectorized_seconds"), "lower")
    for group, direction in (
        ("shared_memory_seconds", "lower"), ("speedup_vs_serial", "higher"),
    ):
        values = record.get(group)
        if isinstance(values, Mapping):
            for key, value in values.items():
                put(f"{group}.{key}", value, direction)
    # BENCH_worksteal.json shape.
    put("static_dispatch_seconds",
        record.get("static_dispatch_seconds"), "lower")
    put("worksteal_seconds", record.get("worksteal_seconds"), "lower")
    for group, direction in (
        ("measured_speedup", "higher"), ("sim_speedup", "higher"),
    ):
        values = record.get(group)
        if isinstance(values, Mapping):
            for key, value in values.items():
                put(f"{group}.{key}", value, direction)
    # BENCH_index.json shape.
    put("build_seconds", record.get("build_seconds"), "lower")
    for group, direction in (
        ("mine_seconds", "lower"), ("query_seconds", "lower"),
        ("speedup_vs_remine", "higher"),
    ):
        values = record.get(group)
        if isinstance(values, Mapping):
            for key, value in values.items():
                put(f"{group}.{key}", value, direction)
    # BENCH_outofcore.json shape.
    put("inmemory_seconds", record.get("inmemory_seconds"), "lower")
    put("peak_rss_bytes", record.get("peak_rss_bytes"), "lower")
    for group, direction in (
        ("outofcore_seconds", "lower"), ("predicted_seconds", "lower"),
        ("efficiency_vs_inmemory", "higher"),
    ):
        values = record.get(group)
        if isinstance(values, Mapping):
            for key, value in values.items():
                put(f"{group}.{key}", value, direction)
    # BENCH_serve.json shape.  Throughput is higher-is-better but scales
    # with the machine, so ratio=False keeps it out of cross-machine gates;
    # speedup_vs_cold divides two same-run timings and is the gateable one.
    for group, direction, ratio in (
        ("requests_per_second", "higher", False),
        ("latency_p50_seconds", "lower", False),
        ("latency_p99_seconds", "lower", False),
        ("speedup_vs_cold", "higher", True),
    ):
        values = record.get(group)
        if isinstance(values, Mapping):
            for key, value in values.items():
                put(f"{group}.{key}", value, direction, ratio)
    return out


def _workload_mismatch(
    base: Mapping[str, Any], current: Mapping[str, Any]
) -> str | None:
    """A human-readable mismatch description, or None when comparable."""
    base_ds, cur_ds = base.get("dataset"), current.get("dataset")
    if isinstance(base_ds, Mapping) and isinstance(cur_ds, Mapping):
        # Ledger records carry the dataset fingerprint as a sub-object.
        for key in ("name", "sha256", "n_transactions", "n_items"):
            if (
                key in base_ds and key in cur_ds
                and base_ds[key] != cur_ds[key]
            ):
                return (
                    f"dataset.{key} differs: "
                    f"{base_ds[key]!r} vs {cur_ds[key]!r}"
                )
    for key in WORKLOAD_KEYS:
        if key == "dataset" and isinstance(base_ds, Mapping):
            continue  # fingerprint sub-object already checked field-wise
        if key in base and key in current and base[key] != current[key]:
            return f"{key} differs: {base[key]!r} vs {current[key]!r}"
    return None


def compare_records(
    base: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    ratios_only: bool = False,
    metrics: list[str] | None = None,
) -> Comparison:
    """Compare two records; see the module docstring for semantics.

    ``metrics`` restricts the comparison to exact metric names;
    ``ratios_only`` keeps only higher-is-better ratio metrics (the
    cross-machine mode).  Thresholding happens at query time
    (:meth:`Comparison.regressions`) so one comparison can be inspected at
    several thresholds.
    """
    mismatch = _workload_mismatch(base, current)
    if mismatch is not None:
        return Comparison(comparable=False, reason=mismatch)
    base_metrics = _flatten_seconds(base)
    current_metrics = _flatten_seconds(current)
    shared = sorted(set(base_metrics) & set(current_metrics))
    deltas = []
    for name in shared:
        value_base, direction, is_ratio = base_metrics[name]
        value_current, _, _ = current_metrics[name]
        if ratios_only and not is_ratio:
            continue
        if metrics is not None and name not in metrics:
            continue
        deltas.append(MetricDelta(name, direction, value_base, value_current))
    if not deltas:
        return Comparison(
            comparable=False,
            reason="no shared comparable metrics between the two records",
        )
    return Comparison(deltas=deltas)


def load_record(source: str | Path, ledger=None) -> dict[str, Any]:
    """Load a record from a JSON file path or a ledger run-id / index token.

    Raises ``FileNotFoundError`` / ``ValueError`` with a usable message —
    the CLI surfaces these verbatim.
    """
    path = Path(source)
    if path.exists():
        with path.open("r", encoding="utf-8") as handle:
            record = json.load(handle)
        if not isinstance(record, dict):
            raise ValueError(f"{source}: expected a JSON object")
        return record
    if ledger is not None:
        found = ledger.find(str(source))
        if found is not None:
            return found.to_json_dict()
    raise FileNotFoundError(
        f"{source!r} is neither a JSON file nor a known ledger run id/index"
    )


def render_comparison(
    comparison: Comparison, threshold: float = DEFAULT_THRESHOLD
) -> str:
    """Multi-line human-readable report for the CLI."""
    if not comparison.comparable:
        return f"SKIP: records are not comparable ({comparison.reason})"
    lines = [d.describe(threshold) for d in comparison.deltas]
    regressions = comparison.regressions(threshold)
    if regressions:
        lines.append(
            f"FAIL: {len(regressions)} metric(s) regressed beyond "
            f"{threshold:.0%}: " + ", ".join(d.name for d in regressions)
        )
    else:
        lines.append(
            f"OK: no metric regressed beyond {threshold:.0%} "
            f"({len(comparison.deltas)} compared)"
        )
    return "\n".join(lines)
