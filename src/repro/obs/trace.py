"""Trace sinks: structured span/event capture for the mining pipeline.

Every instrumented layer emits :class:`TraceEvent` records through a
:class:`TraceSink`.  Events use the Chrome trace-event vocabulary (the
format Perfetto and ``chrome://tracing`` load natively):

* ``"X"`` — *complete* (duration) events; the simulator's per-chunk
  execution records and the miners' wall-clock phase spans both land here;
* ``"i"`` — instant markers;
* ``"C"`` — counter samples;
* ``"M"`` — metadata (process / thread naming).

Timestamps are **microseconds**.  Two clock domains share one trace:
simulated seconds (scaled by 1e6, one Chrome *process* per simulated
thread count so timelines never interleave) and host wall-clock spans
(measured against the sink's ``perf_counter`` epoch, pid 0).

Four sinks cover the use cases:

* :class:`NullSink`   — drops everything; ``enabled`` is False so call
  sites can skip event construction entirely (the zero-overhead default);
* :class:`InMemorySink` — accumulates events in a list (tests, ad-hoc
  inspection);
* :class:`JsonlSink`  — one JSON object per line, streamed to a file;
* :class:`ChromeTraceSink` — buffers events and writes a single
  ``{"traceEvents": [...]}`` JSON document loadable in Perfetto.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError

#: Seconds -> Chrome trace microseconds.
US_PER_SECOND = 1e6


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One Chrome-trace-event-format record."""

    name: str
    phase: str  # "X" complete, "i" instant, "C" counter, "M" metadata
    ts: float  # microseconds
    dur: float = 0.0  # microseconds; only meaningful for "X"
    pid: int = 0
    tid: int = 0
    cat: str = ""
    args: Mapping[str, Any] | None = None

    def to_chrome(self) -> dict[str, Any]:
        """The dict Chrome/Perfetto expect in ``traceEvents``."""
        record: dict[str, Any] = {
            "name": self.name,
            "ph": self.phase,
            "ts": self.ts,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.phase == "X":
            record["dur"] = self.dur
        if self.cat:
            record["cat"] = self.cat
        if self.args is not None:
            record["args"] = dict(self.args)
        return record

    def to_dict(self) -> dict[str, Any]:
        """A lossless plain-dict form (cross-process snapshot shipping)."""
        return {
            "name": self.name,
            "phase": self.phase,
            "ts": self.ts,
            "dur": self.dur,
            "pid": self.pid,
            "tid": self.tid,
            "cat": self.cat,
            "args": dict(self.args) if self.args is not None else None,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "TraceEvent":
        """Rebuild an event from :meth:`to_dict` output.

        Raises ``TypeError`` / ``ValueError`` on malformed input — callers
        merging untrusted worker snapshots catch these and drop the event
        rather than corrupt the trace.
        """
        name = record["name"]
        phase = record["phase"]
        if not isinstance(name, str) or not isinstance(phase, str):
            raise TypeError("trace event name/phase must be strings")
        args = record.get("args")
        if args is not None and not isinstance(args, Mapping):
            raise TypeError("trace event args must be a mapping or None")
        return cls(
            name=name,
            phase=phase,
            ts=float(record["ts"]),
            dur=float(record.get("dur", 0.0)),
            pid=int(record.get("pid", 0)),
            tid=int(record.get("tid", 0)),
            cat=str(record.get("cat", "")),
            args=dict(args) if args is not None else None,
        )


@dataclass
class Span:
    """A wall-clock span; emits one "X" event on :meth:`end` / exit."""

    sink: "TraceSink"
    name: str
    pid: int = 0
    tid: int = 0
    cat: str = ""
    args: Mapping[str, Any] | None = None
    _start: float = field(default=0.0, repr=False)
    _done: bool = field(default=False, repr=False)

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end()

    def end(self, args: Mapping[str, Any] | None = None) -> None:
        """Close the span (idempotent); ``args`` override the initial ones."""
        if self._done:
            return
        self._done = True
        self.sink.wall_event(
            self.name,
            self._start,
            pid=self.pid,
            tid=self.tid,
            cat=self.cat,
            args=args if args is not None else self.args,
        )


class TraceSink:
    """Base sink: event construction helpers over one abstract :meth:`emit`.

    ``enabled`` lets hot paths skip event construction entirely — every
    helper here checks it, so calling them on a :class:`NullSink` is safe
    but callers holding many events should prefer testing ``sink.enabled``
    once outside their loop.
    """

    enabled: bool = True

    def __init__(self) -> None:
        #: perf_counter value all wall-clock spans are measured against.
        self.epoch = time.perf_counter()

    # -- abstract ------------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (no-op by default)."""

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- helpers -------------------------------------------------------------

    def duration(
        self,
        name: str,
        ts_us: float,
        dur_us: float,
        *,
        pid: int = 0,
        tid: int = 0,
        cat: str = "",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """A complete ("X") event at an explicit microsecond timestamp."""
        if not self.enabled:
            return
        self.emit(TraceEvent(name, "X", ts_us, dur_us, pid, tid, cat, args))

    def instant(
        self,
        name: str,
        ts_us: float,
        *,
        pid: int = 0,
        tid: int = 0,
        cat: str = "",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        if not self.enabled:
            return
        self.emit(TraceEvent(name, "i", ts_us, 0.0, pid, tid, cat, args))

    def counter_sample(
        self,
        name: str,
        ts_us: float,
        values: Mapping[str, float],
        *,
        pid: int = 0,
    ) -> None:
        if not self.enabled:
            return
        self.emit(TraceEvent(name, "C", ts_us, 0.0, pid, 0, "", dict(values)))

    def wall_event(
        self,
        name: str,
        start_perf: float,
        end_perf: float | None = None,
        *,
        pid: int = 0,
        tid: int = 0,
        cat: str = "",
        args: Mapping[str, Any] | None = None,
    ) -> None:
        """A complete event from ``perf_counter`` values (sink-epoch based)."""
        if not self.enabled:
            return
        end = time.perf_counter() if end_perf is None else end_perf
        self.duration(
            name,
            (start_perf - self.epoch) * US_PER_SECOND,
            max(end - start_perf, 0.0) * US_PER_SECOND,
            pid=pid,
            tid=tid,
            cat=cat,
            args=args,
        )

    def span(
        self,
        name: str,
        *,
        pid: int = 0,
        tid: int = 0,
        cat: str = "",
        args: Mapping[str, Any] | None = None,
    ) -> Span:
        """A wall-clock span context manager bound to this sink."""
        return Span(self, name, pid=pid, tid=tid, cat=cat, args=args)

    def set_process_name(self, pid: int, name: str) -> None:
        if not self.enabled:
            return
        self.emit(
            TraceEvent("process_name", "M", 0.0, 0.0, pid, 0, "", {"name": name})
        )

    def set_thread_name(self, pid: int, tid: int, name: str) -> None:
        if not self.enabled:
            return
        self.emit(
            TraceEvent("thread_name", "M", 0.0, 0.0, pid, tid, "", {"name": name})
        )


class NullSink(TraceSink):
    """Drops every event; the zero-overhead default."""

    enabled = False

    def __init__(self) -> None:
        # Skip the epoch perf_counter call: a NullSink never timestamps.
        self.epoch = 0.0

    def emit(self, event: TraceEvent) -> None:
        pass


class InMemorySink(TraceSink):
    """Keeps every event in :attr:`events` (tests and interactive use)."""

    def __init__(self) -> None:
        super().__init__()
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def by_phase(self, phase: str) -> list[TraceEvent]:
        return [ev for ev in self.events if ev.phase == phase]


class JsonlSink(TraceSink):
    """Streams one JSON object per event line to ``path``.

    Crash-tolerant: each event is serialized to a single ``write`` call and
    flushed immediately, so a process killed mid-run loses at most the event
    being written — every earlier line is already on disk.  A torn final
    line is valid input for the anatomy loader, which skips unparseable
    lines instead of failing.  The single-call write also keeps lines whole
    when a background :class:`~repro.obs.sampler.ResourceSampler` thread
    emits concurrently with the main thread.
    """

    def __init__(self, path: str | Path) -> None:
        super().__init__()
        self.path = Path(path)
        self._handle = self.path.open("w", encoding="utf-8")

    def emit(self, event: TraceEvent) -> None:
        if self._handle.closed:
            raise ConfigurationError(f"JsonlSink {self.path} is already closed")
        self._handle.write(json.dumps(event.to_chrome()) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class ChromeTraceSink(TraceSink):
    """Buffers events; :meth:`close` writes one Chrome trace JSON document.

    Load the output in https://ui.perfetto.dev or ``chrome://tracing``.
    Simulated thread counts map to Chrome *processes* (pid = thread count)
    and simulated threads to *tids*, so one file can hold a whole sweep.
    """

    def __init__(self, path: str | Path, metadata: Mapping[str, Any] | None = None):
        super().__init__()
        self.path = Path(path)
        if not self.path.parent.is_dir():
            raise ConfigurationError(
                f"trace output directory does not exist: {self.path.parent}"
            )
        self.metadata = dict(metadata or {})
        self._events: list[dict[str, Any]] = []
        self._written = False

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event.to_chrome())

    @property
    def n_events(self) -> int:
        return len(self._events)

    def document(self) -> dict[str, Any]:
        """The Chrome trace JSON object (without writing it anywhere)."""
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": dict(self.metadata),
        }

    def close(self) -> None:
        """Write the trace document atomically (write-temp-then-rename).

        Readers therefore never see a truncated JSON document: either the
        previous file content survives or the complete new document replaces
        it in one ``os.replace``.  Events that were buffered before an abort
        (a worker killed mid-run, a :class:`ParallelExecutionError` unwinding
        the stack) are all included — an open span simply has no event yet,
        which is valid Chrome trace JSON, not corruption.
        """
        if self._written:
            return
        self._written = True
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            json.dump(self.document(), handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
