"""The run ledger: a durable JSONL record of every mining/simulation run.

``BENCH_*.json`` files are write-only snapshots — each run overwrites the
last, so nothing ever notices a trajectory.  The ledger is the complement:
an **append-only** ``.jsonl`` file (one JSON object per line, by default
under ``.repro/runs/``) where every run adds one :class:`RunRecord`:

* a **config hash** — sha256 over the canonicalized run configuration
  (backend, algorithm, representation, schedule, min_support, options), so
  "the same experiment" is a stable 12-hex key across sessions;
* a **dataset fingerprint** — name, shape, and a content digest, so a
  regression can be told apart from a changed input;
* **cost** — wall seconds, CPU seconds, peak RSS
  (:func:`repro.obs.metrics.sample_rusage`);
* the **metrics snapshot** when the run carried an ObsContext, the itemset
  count, and the git SHA when the working tree is a repository.

Query it with :meth:`Ledger.query` / :meth:`Ledger.last`, stream it with
``python -m repro obs tail``, and diff two records with ``repro obs
compare`` (the regression gate).

**When does a run get recorded?**  Explicitly, always: pass ``ledger=`` to
``repro.mine`` / ``engine.execute`` / ``run_scalability_study``, or install
one with :func:`set_default_ledger`.  Implicitly, the CLI records every run
(opt out with ``--no-ledger``) and library calls follow the
``REPRO_LEDGER`` environment variable: unset or ``0``/``off`` means no
writes (imports must never surprise a host application with filesystem
side effects), ``1``/``on`` means the default directory, any other value
is used as the directory.  Appending never raises — a read-only filesystem
degrades to a warning, not a failed mining run.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
import uuid
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping

from repro.obs.metrics import sample_rusage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datasets.transaction_db import TransactionDatabase
    from repro.obs.context import ObsContext

#: Bumped whenever RunRecord gains/renames fields; readers keep loading
#: records from other versions (unknown fields ignored, missing defaulted)
#: so an old ledger stays queryable forever.
LEDGER_SCHEMA_VERSION = 1

#: Where the default ledger lives, relative to the working directory.
DEFAULT_LEDGER_DIR = Path(".repro") / "runs"

#: Environment switch for the *default* ledger (explicit ``ledger=`` or
#: ``set_default_ledger`` always wins): "0"/"off"/"" → disabled, "1"/"on"
#: → DEFAULT_LEDGER_DIR, anything else → that directory.
LEDGER_ENV = "REPRO_LEDGER"


def config_hash(config: Mapping[str, Any]) -> str:
    """A stable 12-hex digest of a run configuration.

    Canonical JSON (sorted keys, no whitespace) makes the hash independent
    of dict insertion order and of which layer assembled the config.
    """
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def fingerprint_database(db: "TransactionDatabase") -> dict[str, Any]:
    """Name, shape, and content digest of a transaction database."""
    digest = hashlib.sha256()
    digest.update(f"{db.n_transactions}:{db.n_items}".encode())
    for transaction in db:
        digest.update(transaction.tobytes())
    return {
        "name": db.name,
        "n_transactions": db.n_transactions,
        "n_items": db.n_items,
        "sha256": digest.hexdigest()[:12],
    }


_GIT_SHA_CACHE: dict[str, str | None] = {}


def git_sha(cwd: str | Path | None = None) -> str | None:
    """The current git HEAD SHA, or None outside a repo / without git."""
    key = str(Path(cwd).resolve()) if cwd is not None else str(Path.cwd())
    if key not in _GIT_SHA_CACHE:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=cwd, capture_output=True, text=True, timeout=5.0,
            )
            _GIT_SHA_CACHE[key] = (
                out.stdout.strip() if out.returncode == 0 else None
            )
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA_CACHE[key] = None
    return _GIT_SHA_CACHE[key]


@dataclass
class RunRecord:
    """One ledger line: everything needed to recognize and diff a run."""

    kind: str  # "mine" | "execute" | "simulate"
    config: dict[str, Any]
    dataset: dict[str, Any]
    wall_seconds: float
    cpu_seconds: float
    max_rss_bytes: float
    n_itemsets: int | None = None
    metrics: dict[str, Any] | None = None
    extra: dict[str, Any] = field(default_factory=dict)
    schema: int = LEDGER_SCHEMA_VERSION
    run_id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])
    created_unix: float = field(default_factory=time.time)
    config_hash: str = ""
    git_sha: str | None = None

    def __post_init__(self) -> None:
        if not self.config_hash:
            self.config_hash = config_hash(self.config)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "kind": self.kind,
            "created_unix": self.created_unix,
            "config": dict(self.config),
            "config_hash": self.config_hash,
            "dataset": dict(self.dataset),
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "max_rss_bytes": self.max_rss_bytes,
            "n_itemsets": self.n_itemsets,
            "metrics": self.metrics,
            "git_sha": self.git_sha,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_json_dict(cls, record: Mapping[str, Any]) -> "RunRecord":
        """Rebuild a record, tolerating other schema versions.

        Unknown fields are ignored and missing ones defaulted, so records
        written by newer code still load (their extras are simply invisible
        to this version).  The original ``schema`` stamp is preserved.
        """
        return cls(
            kind=str(record.get("kind", "unknown")),
            config=dict(record.get("config") or {}),
            dataset=dict(record.get("dataset") or {}),
            wall_seconds=float(record.get("wall_seconds", 0.0)),
            cpu_seconds=float(record.get("cpu_seconds", 0.0)),
            max_rss_bytes=float(record.get("max_rss_bytes", 0.0)),
            n_itemsets=(
                int(record["n_itemsets"])
                if record.get("n_itemsets") is not None else None
            ),
            metrics=record.get("metrics"),
            extra=dict(record.get("extra") or {}),
            schema=int(record.get("schema", LEDGER_SCHEMA_VERSION)),
            run_id=str(record.get("run_id", "")),
            created_unix=float(record.get("created_unix", 0.0)),
            config_hash=str(record.get("config_hash", "")),
            git_sha=record.get("git_sha"),
        )

    def summary_line(self) -> str:
        """One-line human form (``repro obs tail``)."""
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(self.created_unix)
        )
        dataset = self.dataset.get("name", "?")
        backend = self.config.get("backend", self.config.get("machine", "-"))
        algorithm = self.config.get("algorithm", "-")
        itemsets = "-" if self.n_itemsets is None else str(self.n_itemsets)
        return (
            f"{stamp}  {self.run_id}  {self.config_hash}  "
            f"{self.kind:<8s} {dataset:<12s} {algorithm}/{backend}  "
            f"wall={self.wall_seconds:.3f}s  itemsets={itemsets}"
        )


def _parse_record_line(line: str) -> RunRecord | None:
    """One JSONL line → a record, or None for corrupt/blank lines.

    Corrupt lines (a crash mid-append, manual edits) are skipped, not
    fatal — the ledger is telemetry, and the rest of it stays usable.
    """
    line = line.strip()
    if not line:
        return None
    try:
        parsed = json.loads(line)
        if not isinstance(parsed, Mapping):
            return None  # a JSON value, but not a record object
        return RunRecord.from_json_dict(parsed)
    except (json.JSONDecodeError, TypeError, ValueError, KeyError):
        return None


#: Bytes per backwards step of :meth:`Ledger.tail`; large enough that a
#: typical ``tail -n 10`` completes in one read, small enough that the
#: cost stays O(tail) on a ledger of any length.
_TAIL_BLOCK_BYTES = 64 * 1024


class Ledger:
    """Append-only JSONL run history under one directory."""

    FILENAME = "ledger.jsonl"

    def __init__(self, root: str | Path = DEFAULT_LEDGER_DIR) -> None:
        self.root = Path(root)

    @property
    def path(self) -> Path:
        return self.root / self.FILENAME

    def append(self, record: RunRecord) -> RunRecord:
        """Write one record as a single line; creates the directory.

        The line goes out as **one** ``os.write`` on an ``O_APPEND`` fd:
        POSIX appends are atomic per write call, so concurrent writers —
        the serve layer appends from multiple processes and threads —
        interleave whole lines, never torn fragments.  A buffered
        text-mode handle gives no such guarantee (its flush may split
        one line across several syscalls).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        data = (
            json.dumps(record.to_json_dict(), default=str) + "\n"
        ).encode("utf-8")
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        return record

    def iter_records(self) -> Iterator[RunRecord]:
        """Yield readable records lazily, in append (= chronological) order."""
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                record = _parse_record_line(line)
                if record is not None:
                    yield record

    def records(self) -> list[RunRecord]:
        """Every readable record, in append (= chronological) order."""
        return list(self.iter_records())

    def tail(self, n: int = 1) -> list[RunRecord]:
        """The most recent ``n`` readable records (oldest of them first).

        Reads the file **backwards** in fixed-size blocks from the end, so
        ``obs tail -n 10`` costs O(tail) no matter how many runs the ledger
        has accumulated — the whole point of an append-only history is that
        it grows, and the common query must not grow with it.
        """
        if n <= 0 or not self.path.exists():
            return []
        newest_first: list[RunRecord] = []
        with self.path.open("rb") as handle:
            handle.seek(0, os.SEEK_END)
            position = handle.tell()
            carry = b""
            while position > 0 and len(newest_first) < n:
                step = min(_TAIL_BLOCK_BYTES, position)
                position -= step
                handle.seek(position)
                chunk = handle.read(step) + carry
                lines = chunk.split(b"\n")
                # Unless this block starts at byte 0, its first element may
                # be the tail of a line straddling the boundary — defer it.
                carry = lines.pop(0) if position > 0 else b""
                for raw in reversed(lines):
                    record = _parse_record_line(
                        raw.decode("utf-8", "replace")
                    )
                    if record is not None:
                        newest_first.append(record)
                        if len(newest_first) == n:
                            break
        newest_first.reverse()
        return newest_first

    def follow(
        self,
        poll_seconds: float = 0.5,
        *,
        stop: "Callable[[], bool] | None" = None,
    ) -> Iterator[RunRecord]:
        """Yield records as they are appended (``repro obs tail --follow``).

        Starts at the current end of the file (use :meth:`tail` first to
        print history), polls for growth, and only consumes **complete**
        lines — a record caught mid-append is re-read whole on the next
        poll.  A truncated/rotated file restarts from the top.  ``stop`` is
        checked once per poll so tests (and the CLI's signal handling) can
        end the otherwise-infinite stream.
        """
        offset = self.path.stat().st_size if self.path.exists() else 0
        while True:
            if self.path.exists():
                size = self.path.stat().st_size
                if size < offset:
                    offset = 0  # rotation/truncation: start over
                if size > offset:
                    with self.path.open("rb") as handle:
                        handle.seek(offset)
                        while True:
                            raw = handle.readline()
                            if not raw or not raw.endswith(b"\n"):
                                break  # partial append; retry next poll
                            offset += len(raw)
                            record = _parse_record_line(
                                raw.decode("utf-8", "replace")
                            )
                            if record is not None:
                                yield record
            if stop is not None and stop():
                return
            time.sleep(poll_seconds)

    def rotate(self, keep_records: int = 500) -> int:
        """Drop all but the newest ``keep_records`` records.

        The size cap behind ``repro obs gc`` — an append-only ledger grows
        without bound otherwise.  The survivors are rewritten through a
        tmp file + ``os.replace`` so a concurrent reader never observes a
        half-rotated ledger.  Returns how many records were dropped
        (corrupt lines are dropped too, silently, as in every read path).
        """
        if keep_records < 0:
            raise ValueError(
                f"keep_records must be >= 0, got {keep_records}"
            )
        records = self.records()
        if not self.path.exists() or len(records) <= keep_records:
            return 0
        survivors = records[len(records) - keep_records:]
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            for record in survivors:
                handle.write(
                    json.dumps(record.to_json_dict(), default=str) + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        return len(records) - len(survivors)

    def query(
        self,
        *,
        config_hash: str | None = None,
        kind: str | None = None,
        dataset: str | None = None,
        backend: str | None = None,
        algorithm: str | None = None,
    ) -> list[RunRecord]:
        """Records matching every given filter, in append order."""
        out = []
        for record in self.records():
            if config_hash is not None and record.config_hash != config_hash:
                continue
            if kind is not None and record.kind != kind:
                continue
            if dataset is not None and record.dataset.get("name") != dataset:
                continue
            if backend is not None and record.config.get("backend") != backend:
                continue
            if (
                algorithm is not None
                and record.config.get("algorithm") != algorithm
            ):
                continue
            out.append(record)
        return out

    def last(self, n: int = 1) -> list[RunRecord]:
        """The most recent ``n`` records (oldest of them first); O(tail)."""
        return self.tail(n)

    def find(self, token: str) -> RunRecord | None:
        """Resolve a record by run-id prefix or negative index string.

        ``"-1"`` is the latest record, ``"-2"`` the one before, etc. —
        resolved via :meth:`tail`, so pointing at a recent run costs
        O(tail).  Anything else matches a ``run_id`` prefix (first match
        wins), scanning forward lazily.
        """
        try:
            index = int(token)
        except ValueError:
            index = None
        if index is not None and index < 0:
            records = self.tail(-index)
            return records[0] if len(records) == -index else None
        for record in self.iter_records():
            if record.run_id.startswith(token):
                return record
        return None


# --------------------------------------------------------------------------
# Default-ledger resolution and the one-call recording hook
# --------------------------------------------------------------------------

_UNSET = object()
_default_ledger: Any = _UNSET


def set_default_ledger(ledger: Ledger | None) -> None:
    """Install (or, with ``None``, remove) the process-wide default ledger.

    Overrides the :data:`LEDGER_ENV` environment resolution until reset via
    :func:`reset_default_ledger`.
    """
    global _default_ledger
    _default_ledger = ledger


def reset_default_ledger() -> None:
    """Return to environment-variable resolution (test hygiene hook)."""
    global _default_ledger
    _default_ledger = _UNSET


def default_ledger() -> Ledger | None:
    """The ledger library calls record to when none is passed explicitly."""
    if _default_ledger is not _UNSET:
        return _default_ledger
    value = os.environ.get(LEDGER_ENV, "").strip()
    if value.lower() in ("", "0", "off", "false", "no"):
        return None
    if value.lower() in ("1", "on", "true", "yes"):
        return Ledger()
    return Ledger(value)


def record_run(
    kind: str,
    *,
    db: "TransactionDatabase | None" = None,
    dataset: Mapping[str, Any] | None = None,
    config: Mapping[str, Any],
    wall_seconds: float,
    cpu_seconds: float,
    n_itemsets: int | None = None,
    obs: "ObsContext | None" = None,
    ledger: Ledger | None = None,
    extra: Mapping[str, Any] | None = None,
) -> RunRecord | None:
    """Append one run to ``ledger`` (or the default one); never raises.

    The run's dataset comes either from ``db`` (fingerprinted here) or, for
    runs that never touch the raw database — index queries serve from the
    artifact alone — from a ready-made ``dataset`` fingerprint mapping.

    Returns the written record, or ``None`` when no ledger is active or the
    write failed (an ``OSError`` degrades to a single warning — the mining
    result is never sacrificed to telemetry).
    """
    if (db is None) == (dataset is None):
        raise TypeError("record_run needs exactly one of db= or dataset=")
    target = ledger if ledger is not None else default_ledger()
    if target is None:
        return None
    record = RunRecord(
        kind=kind,
        config=dict(config),
        dataset=fingerprint_database(db) if db is not None else dict(dataset),
        wall_seconds=wall_seconds,
        cpu_seconds=cpu_seconds,
        max_rss_bytes=sample_rusage()["max_rss_bytes"],
        n_itemsets=n_itemsets,
        metrics=obs.metrics.to_dict() if obs is not None else None,
        extra=dict(extra or {}),
        git_sha=git_sha(),
    )
    try:
        return target.append(record)
    except OSError as exc:  # pragma: no cover - filesystem-dependent
        warnings.warn(
            f"run ledger append to {target.path} failed: {exc}",
            RuntimeWarning,
            stacklevel=2,
        )
        return None


def iter_summary_lines(records: Iterable[RunRecord]) -> Iterable[str]:
    """Summary lines for ``repro obs tail`` (separated for testability)."""
    for record in records:
        yield record.summary_line()
