"""Run anatomy: derived analysis over a recorded span stream.

The sinks in :mod:`repro.obs.trace` record *what happened*; this module
answers *why the run took as long as it did*.  It loads a span stream from
any sink shape (in-memory, Chrome JSON document, JSONL — including
procmerge'd per-pid worker lanes) and derives:

* **self-time attribution** — every span's self time (duration minus its
  children) lands in exactly one of five buckets: ``compute``, ``steal``
  (work-stealing rebuild), ``ipc`` (dispatch / attach / serialization),
  ``io`` and ``idle``.  Uncovered lane time is idle, so per lane the
  bucket totals sum to the lane's wall clock (within tolerance —
  ``RunAnatomy.check`` enforces the invariant).
* **critical path** — the backward last-finisher walk over the leaf task
  spans of all lanes: the chain of work (and gaps) that bounds the run's
  wall clock, with per-node contribution.  Contributions sum to the run
  wall.
* **flamegraph exports** — Brendan-Gregg collapsed-stack text and
  speedscope evented JSON (one profile per lane).
* **resource timeline summaries** — min/max/last per counter track (the
  ``"C"`` samples the :class:`repro.obs.sampler.ResourceSampler` emits).

Container spans (``engine.mine``, ``shared_memory.mine``, …) wrap a whole
run; their self time is orchestration and polling, so it buckets as
``idle`` — unless the trace holds *only* container spans (a serial run
with no inner instrumentation), in which case they count as ``compute``.
Dispatch-echo lanes (pid 0, tid > 0: the parent's per-task mirror of the
worker timeline) are reported per lane but excluded from global bucket
totals and the critical path, so parallel work is not double-counted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.trace import (
    US_PER_SECOND,
    ChromeTraceSink,
    InMemorySink,
    TraceEvent,
    TraceSink,
)

#: Version of the ``summary()`` dict recorded into ledger ``extra``.
ANATOMY_SCHEMA = 1

#: The five self-time buckets, in reporting order.
BUCKETS = ("compute", "steal", "ipc", "io", "idle")

#: Spans that wrap an entire run (orchestration, not work).
CONTAINER_NAMES = frozenset({
    "engine.mine",
    "engine.mine_out_of_core",
    "shared_memory.mine",
    "multiprocessing.mine",
})

_CAT_BUCKETS = {
    "mine": "compute",
    "task": "compute",
    "kernel": "compute",
    "steal": "steal",
    "rebuild": "steal",
    "dispatch": "ipc",
    "setup": "ipc",
    "serialize": "ipc",
    "ipc": "ipc",
    "io": "io",
    "wait": "idle",
    "idle": "idle",
}

_NAME_PREFIX_BUCKETS = (
    ("task.wait", "idle"),
    ("worker.", "ipc"),
    ("outofcore.", "io"),
)

#: Timestamp comparison slack (microseconds).
_EPS_US = 0.5

#: Backstop for the backward critical-path walk.
_MAX_CRITICAL_STEPS = 10_000


def classify_span(name: str, cat: str = "", *,
                  container_bucket: str = "idle") -> str:
    """Map one span to its self-time bucket.

    ``container_bucket`` is what run-wrapping container spans count as:
    ``"idle"`` normally (their self time is orchestration around the real
    work), ``"compute"`` when the trace has no inner spans at all.
    """
    if name in CONTAINER_NAMES or cat == "engine":
        return container_bucket
    bucket = _CAT_BUCKETS.get(cat)
    if bucket is not None:
        return bucket
    for prefix, fallback in _NAME_PREFIX_BUCKETS:
        if name.startswith(prefix):
            return fallback
    return "compute"


# ---------------------------------------------------------------------------
# Loading


def _event_from_mapping(record: Mapping[str, Any]) -> TraceEvent:
    """Build a :class:`TraceEvent` from a Chrome (``ph``) or snapshot
    (``phase``) dict.  Raises ``ValueError``/``TypeError`` on junk."""
    phase = record.get("ph", record.get("phase"))
    name = record.get("name")
    if not isinstance(phase, str) or not isinstance(name, str):
        raise ValueError(f"not a trace event record: {record!r}")
    args = record.get("args")
    if args is not None and not isinstance(args, Mapping):
        args = None
    return TraceEvent(
        name=name,
        phase=phase,
        ts=float(record.get("ts", 0.0)),
        dur=float(record.get("dur", 0.0)),
        pid=int(record.get("pid", 0)),
        tid=int(record.get("tid", 0)),
        cat=str(record.get("cat", "")),
        args=dict(args) if args is not None else None,
    )


def _events_from_records(records: Iterable[Any]) -> tuple[list[TraceEvent], int]:
    events: list[TraceEvent] = []
    dropped = 0
    for record in records:
        if isinstance(record, TraceEvent):
            events.append(record)
            continue
        if not isinstance(record, Mapping):
            dropped += 1
            continue
        try:
            events.append(_event_from_mapping(record))
        except (TypeError, ValueError):
            dropped += 1
    return events, dropped


def _load_trace_file(path: Path) -> tuple[list[TraceEvent], int]:
    text = path.read_text(encoding="utf-8")
    head = text.lstrip()[:1]
    if head == "{":
        # Either a Chrome trace document or JSONL (whose first line is an
        # object too); only a whole-file parse tells them apart.
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            pass  # JSONL: fall through to the line-wise parser
        else:
            records = document.get("traceEvents")
            if not isinstance(records, list):
                raise ValueError(
                    f"{path}: JSON object without a traceEvents list")
            return _events_from_records(records)
    elif head == "[":
        return _events_from_records(json.loads(text))
    # JSONL: one Chrome record per line.  A crash mid-write leaves a torn
    # final line; any unparseable line is counted and skipped, never fatal.
    events: list[TraceEvent] = []
    dropped = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, Mapping):
                raise ValueError("non-object line")
            events.append(_event_from_mapping(record))
        except (TypeError, ValueError):
            dropped += 1
    return events, dropped


def load_events(source: Any) -> tuple[list[TraceEvent], int]:
    """Normalize any span source into ``(events, dropped_records)``.

    Accepts an :class:`InMemorySink`, a :class:`ChromeTraceSink` (its
    buffered document), a path to a Chrome JSON or JSONL trace file, or an
    iterable of :class:`TraceEvent` / event dicts.
    """
    if isinstance(source, InMemorySink):
        return list(source.events), 0
    if isinstance(source, ChromeTraceSink):
        return _events_from_records(source.document()["traceEvents"])
    if isinstance(source, TraceSink):
        return [], 0
    if isinstance(source, (str, Path)):
        return _load_trace_file(Path(source))
    return _events_from_records(source)


# ---------------------------------------------------------------------------
# Span forest + per-lane attribution


@dataclass
class SpanNode:
    """One "X" span, nested by temporal containment within its lane."""

    event: TraceEvent
    children: list["SpanNode"] = field(default_factory=list)
    self_us: float = 0.0
    bucket: str = "compute"

    @property
    def name(self) -> str:
        return self.event.name

    @property
    def start_us(self) -> float:
        return self.event.ts

    @property
    def end_us(self) -> float:
        return self.event.ts + self.event.dur

    @property
    def dur_us(self) -> float:
        return self.event.dur


def _build_forest(spans: list[TraceEvent]) -> list[SpanNode]:
    """Nest a lane's "X" events by containment (sorted by start, longest
    first, stack-based — the usual flamegraph reconstruction)."""
    ordered = sorted(spans, key=lambda e: (e.ts, -e.dur))
    roots: list[SpanNode] = []
    stack: list[SpanNode] = []
    for event in ordered:
        node = SpanNode(event)
        while stack and event.ts >= stack[-1].end_us - _EPS_US:
            stack.pop()
        if stack:
            stack[-1].children.append(node)
        else:
            roots.append(node)
        stack.append(node)
    return roots


def _assign_self_times(node: SpanNode, container_bucket: str) -> None:
    child_total = 0.0
    for child in node.children:
        _assign_self_times(child, container_bucket)
        child_total += child.dur_us
    node.self_us = max(0.0, node.dur_us - child_total)
    node.bucket = classify_span(node.name, node.event.cat,
                                container_bucket=container_bucket)


def _union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by a set of (start, end) intervals."""
    total = 0.0
    cursor = float("-inf")
    for start, end in sorted(intervals):
        if end <= cursor:
            continue
        total += end - max(start, cursor)
        cursor = end
    return total


@dataclass
class LaneAnatomy:
    """Bucketed self-time attribution for one (pid, tid) trace lane."""

    pid: int
    tid: int
    label: str
    start_us: float
    end_us: float
    buckets: dict[str, float]  # microseconds, keyed by BUCKETS
    roots: list[SpanNode]
    n_spans: int
    mirror: bool = False  # parent-side dispatch echo of a worker lane

    @property
    def wall_us(self) -> float:
        return max(0.0, self.end_us - self.start_us)

    def check(self, *, rel_tol: float = 0.02,
              abs_tol_us: float = 2000.0) -> str | None:
        """The invariant: bucket self-times sum to lane wall clock."""
        total = sum(self.buckets.values())
        wall = self.wall_us
        if abs(total - wall) <= max(abs_tol_us, rel_tol * wall):
            return None
        return (f"lane {self.label}: bucket self-times sum to "
                f"{total / US_PER_SECOND:.6f}s but lane wall is "
                f"{wall / US_PER_SECOND:.6f}s")


def _build_lane(pid: int, tid: int, spans: list[TraceEvent], label: str,
                container_bucket: str) -> LaneAnatomy:
    roots = _build_forest(spans)
    for root in roots:
        _assign_self_times(root, container_bucket)
    start = min(event.ts for event in spans)
    end = max(event.ts + event.dur for event in spans)
    buckets = {bucket: 0.0 for bucket in BUCKETS}

    def walk(node: SpanNode) -> None:
        buckets[node.bucket] += node.self_us
        for child in node.children:
            walk(child)

    for root in roots:
        walk(root)
    covered = _union_length([(r.start_us, r.end_us) for r in roots])
    buckets["idle"] += max(0.0, (end - start) - covered)
    mirror = pid == 0 and tid != 0 and all(e.cat == "dispatch" for e in spans)
    return LaneAnatomy(pid=pid, tid=tid, label=label, start_us=start,
                       end_us=end, buckets=buckets, roots=roots,
                       n_spans=len(spans), mirror=mirror)


# ---------------------------------------------------------------------------
# Critical path


@dataclass
class CriticalStep:
    """One link of the chain bounding wall clock: a span (or a gap)."""

    name: str
    pid: int
    tid: int
    start_us: float
    end_us: float
    contribution_us: float
    bucket: str


def _critical_leaves(lanes: list[LaneAnatomy]) -> list[SpanNode]:
    """The spans eligible for the critical path: leaf work spans of real
    lanes — no containers, no dispatch mirrors.  Falls back to all leaves
    when a trace is containers-only."""

    def leaves(include_containers: bool) -> list[SpanNode]:
        out: list[SpanNode] = []

        def walk(node: SpanNode) -> None:
            if node.children:
                for child in node.children:
                    walk(child)
                return
            if node.event.cat == "dispatch":
                return
            if not include_containers and (
                    node.name in CONTAINER_NAMES or node.event.cat == "engine"):
                return
            out.append(node)

        for lane in lanes:
            if lane.mirror:
                continue
            for root in lane.roots:
                walk(root)
        return out

    return leaves(False) or leaves(True)


def _critical_path(lanes: list[LaneAnatomy], start_us: float,
                   end_us: float) -> list[CriticalStep]:
    work = _critical_leaves(lanes)
    lane_of: dict[int, tuple[int, int]] = {}
    for lane in lanes:
        stack = list(lane.roots)
        while stack:
            node = stack.pop()
            lane_of[id(node)] = (lane.pid, lane.tid)
            stack.extend(node.children)
    steps: list[CriticalStep] = []
    t = end_us
    while t > start_us + _EPS_US and len(steps) < _MAX_CRITICAL_STEPS:
        # Last-finisher walk: at time t, follow the span whose effective
        # end min(end, t) is latest; among spans still running at t, the
        # one that started earliest (the longest backward jump).
        best: SpanNode | None = None
        best_key: tuple[float, float] | None = None
        for node in work:
            if node.start_us >= t - _EPS_US:
                continue
            key = (min(node.end_us, t), -node.start_us)
            if best_key is None or key > best_key:
                best, best_key = node, key
        if best is None:
            steps.append(CriticalStep("(idle)", -1, -1, start_us, t,
                                      t - start_us, "idle"))
            break
        eff_end = min(best.end_us, t)
        if eff_end < t - _EPS_US:
            steps.append(CriticalStep("(idle)", -1, -1, eff_end, t,
                                      t - eff_end, "idle"))
            t = eff_end
        begin = max(best.start_us, start_us)
        contribution = max(0.0, eff_end - begin)
        if contribution > _EPS_US:
            pid, tid = lane_of.get(id(best), (-1, -1))
            steps.append(CriticalStep(best.name, pid, tid, begin, eff_end,
                                      contribution, best.bucket))
        t = begin
    steps.reverse()
    return steps


# ---------------------------------------------------------------------------
# Whole-run anatomy


@dataclass
class RunAnatomy:
    """The derived anatomy of one run's trace."""

    lanes: list[LaneAnatomy]
    start_us: float
    end_us: float
    critical_path: list[CriticalStep]
    counter_tracks: dict[str, dict[str, float]]
    n_events: int
    n_spans: int
    dropped: int

    @property
    def wall_seconds(self) -> float:
        return max(0.0, self.end_us - self.start_us) / US_PER_SECOND

    def buckets_seconds(self, *, include_mirrors: bool = False) -> dict[str, float]:
        """Global per-bucket self-time in seconds (mirror lanes excluded
        by default so dispatched work is not double-counted)."""
        totals = {bucket: 0.0 for bucket in BUCKETS}
        for lane in self.lanes:
            if lane.mirror and not include_mirrors:
                continue
            for bucket, us in lane.buckets.items():
                totals[bucket] += us / US_PER_SECOND
        return totals

    def critical_contributors(self, top: int = 5) -> list[tuple[str, float, str]]:
        """Critical-path contribution aggregated by span name, largest
        first: ``(name, seconds, bucket)`` tuples."""
        totals: dict[str, float] = {}
        bucket_of: dict[str, str] = {}
        for step in self.critical_path:
            totals[step.name] = totals.get(step.name, 0.0) + step.contribution_us
            bucket_of.setdefault(step.name, step.bucket)
        ranked = sorted(totals.items(), key=lambda kv: -kv[1])
        return [(name, us / US_PER_SECOND, bucket_of[name])
                for name, us in ranked[:top]]

    def check(self, *, rel_tol: float = 0.02,
              abs_tol_us: float = 2000.0) -> list[str]:
        """All invariant violations (empty means the anatomy is sound)."""
        errors = [
            err for lane in self.lanes
            if (err := lane.check(rel_tol=rel_tol, abs_tol_us=abs_tol_us))
        ]
        wall_us = max(0.0, self.end_us - self.start_us)
        path_us = sum(step.contribution_us for step in self.critical_path)
        if self.critical_path and abs(path_us - wall_us) > max(
                abs_tol_us, rel_tol * wall_us):
            errors.append(
                f"critical path sums to {path_us / US_PER_SECOND:.6f}s "
                f"but run wall is {wall_us / US_PER_SECOND:.6f}s")
        return errors

    def summary(self, top: int = 5) -> dict[str, Any]:
        """The compact dict recorded into a ledger record's ``extra``."""
        return {
            "schema": ANATOMY_SCHEMA,
            "wall_seconds": round(self.wall_seconds, 6),
            "buckets": {bucket: round(seconds, 6)
                        for bucket, seconds in self.buckets_seconds().items()},
            "critical_path": [
                {"name": name, "seconds": round(seconds, 6), "bucket": bucket}
                for name, seconds, bucket in self.critical_contributors(top)
            ],
            "n_spans": self.n_spans,
            "n_lanes": sum(1 for lane in self.lanes if not lane.mirror),
        }


def _lane_labels(events: list[TraceEvent]) -> dict[tuple[int, int], str]:
    process: dict[int, str] = {}
    thread: dict[tuple[int, int], str] = {}
    for event in events:
        if event.phase != "M" or not event.args:
            continue
        name = event.args.get("name")
        if not isinstance(name, str):
            continue
        if event.name == "process_name":
            process[event.pid] = name
        elif event.name == "thread_name":
            thread[(event.pid, event.tid)] = name
    labels: dict[tuple[int, int], str] = {}
    for event in events:
        key = (event.pid, event.tid)
        if key in labels:
            continue
        proc = process.get(event.pid, f"pid{event.pid}")
        thr = thread.get(key, f"tid{event.tid}")
        labels[key] = f"{proc}/{thr}"
    return labels


def _counter_tracks(events: list[TraceEvent]) -> dict[str, dict[str, float]]:
    tracks: dict[str, dict[str, float]] = {}
    for event in events:
        if event.phase != "C" or not event.args:
            continue
        for key, value in event.args.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            value = float(value)
            track_id = f"pid{event.pid}.{event.name}.{key}"
            track = tracks.get(track_id)
            if track is None:
                tracks[track_id] = {"n": 1.0, "min": value, "max": value,
                                    "last": value}
            else:
                track["n"] += 1.0
                track["min"] = min(track["min"], value)
                track["max"] = max(track["max"], value)
                track["last"] = value
    return tracks


def analyze(source: Any) -> RunAnatomy:
    """Load a span source and derive its full anatomy."""
    events, dropped = load_events(source)
    spans = [event for event in events if event.phase == "X"]
    all_containers = all(
        event.name in CONTAINER_NAMES or event.cat == "engine"
        for event in spans
    )
    container_bucket = "compute" if all_containers else "idle"
    labels = _lane_labels(events)
    by_lane: dict[tuple[int, int], list[TraceEvent]] = {}
    for event in spans:
        by_lane.setdefault((event.pid, event.tid), []).append(event)
    lanes = [
        _build_lane(pid, tid, lane_spans,
                    labels.get((pid, tid), f"pid{pid}/tid{tid}"),
                    container_bucket)
        for (pid, tid), lane_spans in sorted(by_lane.items())
    ]
    real = [lane for lane in lanes if not lane.mirror] or lanes
    if real:
        start = min(lane.start_us for lane in real)
        end = max(lane.end_us for lane in real)
        path = _critical_path(lanes, start, end)
    else:
        start = end = 0.0
        path = []
    return RunAnatomy(
        lanes=lanes,
        start_us=start,
        end_us=end,
        critical_path=path,
        counter_tracks=_counter_tracks(events),
        n_events=len(events),
        n_spans=len(spans),
        dropped=dropped,
    )


def anatomy_summary(source: Any, *, top: int = 5) -> dict[str, Any] | None:
    """``analyze(...).summary()`` that never raises (ledger recording)."""
    try:
        anatomy = analyze(source)
    except Exception:
        return None
    if anatomy.n_spans == 0:
        return None
    return anatomy.summary(top=top)


# ---------------------------------------------------------------------------
# Flamegraph exports


def _frame_name(text: str) -> str:
    return text.replace(";", ":").replace("\n", " ") or "(anonymous)"


def flamegraph_collapsed(anatomy: RunAnatomy) -> str:
    """Brendan-Gregg collapsed-stack text; values are self-time in
    integer microseconds (``flamegraph.pl`` / speedscope both load it)."""
    weights: dict[str, int] = {}

    def walk(node: SpanNode, stack: str) -> None:
        path = f"{stack};{_frame_name(node.name)}"
        weight = int(round(node.self_us))
        if weight > 0:
            weights[path] = weights.get(path, 0) + weight
        for child in node.children:
            walk(child, path)

    for lane in anatomy.lanes:
        base = _frame_name(lane.label)
        for root in lane.roots:
            walk(root, base)
    return "".join(f"{path} {weight}\n"
                   for path, weight in sorted(weights.items()))


def flamegraph_speedscope(anatomy: RunAnatomy, *,
                          name: str = "repro run") -> dict[str, Any]:
    """Speedscope evented-profile JSON: one profile per trace lane."""
    frames: list[dict[str, str]] = []
    frame_index: dict[str, int] = {}

    def intern(frame: str) -> int:
        index = frame_index.get(frame)
        if index is None:
            index = frame_index[frame] = len(frames)
            frames.append({"name": frame})
        return index

    profiles: list[dict[str, Any]] = []
    for lane in anatomy.lanes:
        events: list[dict[str, Any]] = []

        def emit(node: SpanNode, lo: float, hi: float) -> None:
            # Clamp into the parent's open window so the event stream
            # keeps strict stack discipline even for jittery timestamps.
            start = max(node.start_us, lo)
            end = min(node.end_us, hi)
            if end - start <= 0:
                return
            index = intern(_frame_name(node.name))
            events.append({"type": "O", "frame": index, "at": start})
            cursor = start
            for child in sorted(node.children, key=lambda n: n.start_us):
                child_end = min(child.end_us, end)
                emit(child, max(child.start_us, cursor), end)
                cursor = max(cursor, child_end)
            events.append({"type": "C", "frame": index, "at": end})

        cursor = lane.start_us
        for root in sorted(lane.roots, key=lambda n: n.start_us):
            emit(root, max(root.start_us, cursor), lane.end_us)
            cursor = max(cursor, min(root.end_us, lane.end_us))
        profiles.append({
            "type": "evented",
            "name": lane.label,
            "unit": "microseconds",
            "startValue": lane.start_us,
            "endValue": lane.end_us,
            "events": events,
        })
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": profiles,
        "name": name,
        "exporter": "repro obs flame",
        "activeProfileIndex": 0,
    }


def validate_speedscope(document: Mapping[str, Any]) -> None:
    """Structural validation of a speedscope document; raises
    ``ValueError`` listing the first violation found."""
    frames = document.get("shared", {}).get("frames")
    if not isinstance(frames, list) or not all(
            isinstance(f, Mapping) and isinstance(f.get("name"), str)
            for f in frames):
        raise ValueError("shared.frames must be a list of {name: str}")
    profiles = document.get("profiles")
    if not isinstance(profiles, list):
        raise ValueError("profiles must be a list")
    for profile in profiles:
        label = profile.get("name", "?")
        if profile.get("type") != "evented":
            raise ValueError(f"profile {label}: type must be 'evented'")
        stack: list[int] = []
        last_at = float(profile.get("startValue", 0.0))
        for event in profile.get("events", ()):
            kind = event.get("type")
            frame = event.get("frame")
            at = event.get("at")
            if not isinstance(frame, int) or not 0 <= frame < len(frames):
                raise ValueError(f"profile {label}: bad frame index {frame!r}")
            if not isinstance(at, (int, float)) or at < last_at - _EPS_US:
                raise ValueError(
                    f"profile {label}: timestamps must be non-decreasing")
            last_at = max(last_at, float(at))
            if kind == "O":
                stack.append(frame)
            elif kind == "C":
                if not stack or stack.pop() != frame:
                    raise ValueError(
                        f"profile {label}: close event does not match the "
                        f"open stack")
            else:
                raise ValueError(f"profile {label}: bad event type {kind!r}")
        if stack:
            raise ValueError(f"profile {label}: {len(stack)} unclosed span(s)")
        if last_at > float(profile.get("endValue", last_at)) + _EPS_US:
            raise ValueError(f"profile {label}: events run past endValue")


# ---------------------------------------------------------------------------
# Explain: ledger-aware anatomy diff


@dataclass
class BucketDelta:
    bucket: str
    base_s: float
    current_s: float

    @property
    def delta_s(self) -> float:
        return self.current_s - self.base_s


@dataclass
class Explanation:
    """Per-bucket attribution of the wall-clock delta between two runs."""

    base: Mapping[str, Any]
    current: Mapping[str, Any]
    wall_base_s: float
    wall_current_s: float
    deltas: list[BucketDelta]
    top: BucketDelta | None

    @property
    def wall_delta_s(self) -> float:
        return self.wall_current_s - self.wall_base_s

    def render(self, *, base_label: str = "baseline",
               current_label: str = "current") -> str:
        lines = [
            f"explain: {base_label} -> {current_label}",
            (f"wall: {self.wall_base_s:.3f}s -> {self.wall_current_s:.3f}s "
             f"(delta {self.wall_delta_s:+.3f}s)"),
            "",
            f"{'bucket':<10} {'baseline':>10} {'current':>10} {'delta':>10}",
        ]
        for delta in self.deltas:
            lines.append(
                f"{delta.bucket:<10} {delta.base_s:>9.3f}s "
                f"{delta.current_s:>9.3f}s {delta.delta_s:>+9.3f}s")
        if self.top is not None:
            lines.append("")
            lines.append(f"top contributor: {self.top.bucket} "
                         f"({self.top.delta_s:+.3f}s)")
        path = self.current.get("critical_path")
        if isinstance(path, list) and path:
            lines.append("")
            lines.append(f"critical path ({current_label}):")
            for entry in path:
                if isinstance(entry, Mapping):
                    lines.append(
                        f"  {entry.get('name', '?'):<28} "
                        f"{float(entry.get('seconds', 0.0)):>8.3f}s  "
                        f"{entry.get('bucket', '')}")
        return "\n".join(lines)


def _summary_buckets(summary: Mapping[str, Any]) -> dict[str, float]:
    buckets = summary.get("buckets")
    if not isinstance(buckets, Mapping):
        return {}
    return {str(bucket): float(seconds)
            for bucket, seconds in buckets.items()
            if isinstance(seconds, (int, float))}


def explain(base_summary: Mapping[str, Any],
            current_summary: Mapping[str, Any]) -> Explanation:
    """Attribute ``current - base`` wall-clock per phase bucket.

    The headline ``top`` contributor is the largest delta *in the
    direction of the wall-clock change* among non-idle buckets — idle is
    a symptom (someone waited), the other buckets are causes.
    """
    base_buckets = _summary_buckets(base_summary)
    current_buckets = _summary_buckets(current_summary)
    order = list(BUCKETS) + sorted(
        (set(base_buckets) | set(current_buckets)) - set(BUCKETS))
    deltas = [
        BucketDelta(bucket, base_buckets.get(bucket, 0.0),
                    current_buckets.get(bucket, 0.0))
        for bucket in order
        if bucket in base_buckets or bucket in current_buckets
    ]
    wall_base = float(base_summary.get("wall_seconds", 0.0))
    wall_current = float(current_summary.get("wall_seconds", 0.0))
    sign = 1.0 if wall_current >= wall_base else -1.0
    ranked = sorted(deltas, key=lambda d: sign * d.delta_s, reverse=True)
    top = next((d for d in ranked if d.bucket != "idle"
                and sign * d.delta_s > 0.0), None)
    if top is None and ranked and sign * ranked[0].delta_s > 0.0:
        top = ranked[0]
    return Explanation(
        base=base_summary,
        current=current_summary,
        wall_base_s=wall_base,
        wall_current_s=wall_current,
        deltas=ranked,
        top=top,
    )


# ---------------------------------------------------------------------------
# Text report


def render_anatomy(anatomy: RunAnatomy) -> str:
    """Human-readable anatomy report for ``repro obs anatomy``."""
    lines = []
    n_real = sum(1 for lane in anatomy.lanes if not lane.mirror)
    lines.append(
        f"run wall: {anatomy.wall_seconds:.3f}s across {n_real} lane(s), "
        f"{anatomy.n_spans} span(s)")
    if anatomy.dropped:
        lines.append(f"  ({anatomy.dropped} unparseable record(s) dropped)")
    totals = anatomy.buckets_seconds()
    grand = sum(totals.values()) or 1.0
    lines.append("")
    lines.append(f"{'bucket':<10} {'seconds':>10} {'share':>8}")
    for bucket in BUCKETS:
        seconds = totals[bucket]
        lines.append(f"{bucket:<10} {seconds:>9.3f}s {seconds / grand:>7.1%}")
    contributors = anatomy.critical_contributors()
    if contributors:
        lines.append("")
        lines.append("critical path (top contributors):")
        for name, seconds, bucket in contributors:
            lines.append(f"  {name:<28} {seconds:>8.3f}s  {bucket}")
    lines.append("")
    lines.append("lanes:")
    for lane in anatomy.lanes:
        mirror = "  [dispatch mirror]" if lane.mirror else ""
        busy = sum(us for bucket, us in lane.buckets.items()
                   if bucket != "idle") / US_PER_SECOND
        lines.append(
            f"  {lane.label:<24} wall {lane.wall_us / US_PER_SECOND:>7.3f}s  "
            f"busy {busy:>7.3f}s  spans {lane.n_spans}{mirror}")
    if anatomy.counter_tracks:
        lines.append("")
        lines.append("resource tracks (min / max / last):")
        for track_id in sorted(anatomy.counter_tracks):
            track = anatomy.counter_tracks[track_id]
            lines.append(
                f"  {track_id:<36} {track['min']:.4g} / {track['max']:.4g} "
                f"/ {track['last']:.4g}  ({int(track['n'])} samples)")
    return "\n".join(lines)
