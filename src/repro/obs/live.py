"""Live run introspection: progress, heartbeats, stall detection, and ETA.

Traces and ledger records only exist *after* a run returns; until then a
long mining run is a black box — exactly the wrong shape for the paper's
findings, which are all about where runtime goes (load imbalance, the
few-frequent-items ceiling).  This module is the signal plane that makes a
run observable while it is still running:

* the parent process holds one :class:`ProgressTracker` per run and writes
  a schema-versioned JSON **status file** under ``.repro/live/<run_id>.json``
  after every meaningful change (throttled, atomically replaced via
  tmp + ``os.replace`` — the same discipline as ``ChromeTraceSink.close()``,
  so a reader never sees a torn document);
* workers piggyback **heartbeats** (pid, tasks done, peak RSS via
  :func:`repro.obs.metrics.sample_rusage`, busy/wait seconds) onto every
  task outcome; the parent folds them into the status file next to the
  scheduler's own counters (outstanding / stolen / spawned tasks);
* a parent-side **watchdog** flags any worker whose heartbeat is older
  than ``stall_timeout`` seconds, asks the worker for a ``faulthandler``
  traceback dump over ``SIGUSR1`` (guarded — platforms without the signal
  simply skip the dump), records a ``stall`` event into the trace and the
  metrics (which reach the ledger), and leaves the kill/respawn decision
  to the existing per-task timeout fault path;
* the **ETA** blends observed throughput with a prior (ledger history for
  the same (config hash, dataset fingerprint), else a cost-model
  prediction)::

      eta = f * eta_throughput + (1 - f) * max(prior_total - elapsed, 0)

  where ``f = completed / total`` and ``eta_throughput = elapsed *
  (total - completed) / completed`` — the prior dominates early (when one
  completed task says nothing) and measurement dominates late.

**Progress fractions are monotone and end at 1.0.**  Work-stealing spawns
grow the task total mid-run, which would let ``completed / total`` move
backwards; the tracker clamps the published fraction to its running
maximum, and :meth:`ProgressTracker.finish` pins the terminal state to
exactly 1.0.  The property tests treat this as a contract.

**Enablement.**  The live layer is on by default (``repro.mine`` writes a
status file for every run) because a signal plane that has to be switched
on is never there when a run hangs.  ``REPRO_LIVE=0`` (or ``off``) is the
kill switch, any other value relocates the directory; writes never raise —
a read-only filesystem silently degrades to in-memory tracking.

Status file schema (``LIVE_SCHEMA_VERSION = 1``)::

    {
      "schema": 1, "run_id": "...", "kind": "mine",
      "backend": "...", "algorithm": "...", "dataset": "...",
      "state": "running" | "done" | "failed",
      "started_unix": ..., "updated_unix": ..., "elapsed_seconds": ...,
      "progress": {"completed": n, "total": n, "fraction": 0.0..1.0},
      "eta": {"eta_seconds": ... | null, "source":
              "throughput" | "history" | "model" | "blend" | null},
      "workers": [{"worker_id": n, "pid": n, "tasks_done": n,
                   "rss_bytes": ..., "busy_seconds": ..., "wait_seconds": ...,
                   "last_heartbeat_unix": ..., "stalled": bool}, ...],
      "scheduler": {"outstanding": n, "stolen": n, "spawned": n} | null,
      "stalls": n
    }

Readers keep loading other schema versions' files (unknown fields ignored)
— bump the version whenever a field is renamed or changes meaning.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from repro.obs.metrics import sample_rusage

#: Bumped whenever the status-file layout changes incompatibly.
LIVE_SCHEMA_VERSION = 1

#: Where per-run status files live, relative to the working directory.
DEFAULT_LIVE_DIR = Path(".repro") / "live"

#: Environment switch: ``0``/``off`` disables the live layer, ``1``/``on``
#: (or unset — the live layer is on by default) uses DEFAULT_LIVE_DIR,
#: anything else is used as the directory.
LIVE_ENV = "REPRO_LIVE"

#: Seconds without a worker heartbeat before the watchdog flags a stall.
DEFAULT_STALL_TIMEOUT = 10.0

#: Minimum seconds between status-file writes (forced writes ignore this).
DEFAULT_WRITE_INTERVAL = 0.25

#: Terminal states a status file can carry.
TERMINAL_STATES = ("done", "failed")


def default_live_dir() -> Path | None:
    """The status-file directory resolved from :data:`LIVE_ENV`.

    ``None`` means the live layer is disabled.  Unlike the run ledger
    (default off for library calls), live introspection defaults **on** —
    unset and ``1``/``on`` both map to :data:`DEFAULT_LIVE_DIR`.
    """
    value = os.environ.get(LIVE_ENV, "").strip()
    if value.lower() in ("0", "off", "false", "no"):
        return None
    if value.lower() in ("", "1", "on", "true", "yes"):
        return DEFAULT_LIVE_DIR
    return Path(value)


def atomic_write_json(path: Path, payload: Mapping[str, Any]) -> bool:
    """Write ``payload`` as JSON via tmp + ``os.replace``; never raises.

    Returns ``False`` when the write failed (missing permissions, read-only
    filesystem) so callers can stop trying — telemetry must never break a
    mining run.
    """
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = path.with_name(path.name + ".tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, default=str)
        os.replace(tmp_path, path)
        return True
    except OSError:
        return False


# --------------------------------------------------------------------------
# ETA estimation
# --------------------------------------------------------------------------


@dataclass
class EtaEstimator:
    """Blend observed throughput with a prior total-runtime estimate.

    ``history_seconds`` is the ledger-derived wall time of previous runs
    with the same (config hash, dataset fingerprint); ``predicted_seconds``
    is a cost-model prediction.  Measured history beats prediction when
    both exist.  See the module docstring for the blend formula.
    """

    history_seconds: float | None = None
    predicted_seconds: float | None = None

    def prior(self) -> tuple[float, str] | None:
        if self.history_seconds is not None and self.history_seconds > 0:
            return float(self.history_seconds), "history"
        if self.predicted_seconds is not None and self.predicted_seconds > 0:
            return float(self.predicted_seconds), "model"
        return None

    def estimate(
        self, elapsed: float, completed: int, total: int
    ) -> tuple[float | None, str | None]:
        """``(eta_seconds, source)`` — ``(None, None)`` when unknowable."""
        prior = self.prior()
        throughput: float | None = None
        if completed > 0 and total > completed:
            throughput = elapsed * (total - completed) / completed
        elif completed > 0 and total > 0:
            throughput = 0.0  # everything accounted for
        if throughput is None:
            if prior is None:
                return None, None
            prior_seconds, source = prior
            return max(prior_seconds - elapsed, 0.0), source
        if prior is None:
            return throughput, "throughput"
        prior_seconds, _ = prior
        fraction = completed / total if total else 1.0
        blended = (
            fraction * throughput
            + (1.0 - fraction) * max(prior_seconds - elapsed, 0.0)
        )
        return blended, "blend"


def history_seconds(
    ledger, config_hash: str, dataset_sha: str, *, scan: int = 128
) -> float | None:
    """Median wall seconds of recent ledger runs matching config + dataset.

    Scans only the ledger tail (``scan`` records) so the lookup stays
    O(tail) no matter how long the history is.  Returns ``None`` when no
    comparable run exists or the ledger is unreadable.
    """
    try:
        records = ledger.tail(scan)
    except Exception:
        return None
    walls = sorted(
        record.wall_seconds
        for record in records
        if record.config_hash == config_hash
        and record.dataset.get("sha256") == dataset_sha
        and record.wall_seconds > 0
    )
    if not walls:
        return None
    return walls[len(walls) // 2]


# --------------------------------------------------------------------------
# The parent-side tracker
# --------------------------------------------------------------------------


class ProgressTracker:
    """One run's live status: progress, heartbeats, stalls, ETA.

    The single-writer model mirrors the backends' dispatch design: only the
    orchestrating (parent) process mutates a tracker, so no locking is
    needed and every status file is internally consistent.  All update
    methods are cheap (dict writes); the only I/O is the throttled
    :meth:`write`.

    ``path=None`` keeps the tracker purely in-memory — ``repro mine
    --progress`` still renders from it when the status directory is
    disabled or unwritable.
    """

    def __init__(
        self,
        *,
        run_id: str | None = None,
        kind: str = "mine",
        backend: str = "",
        algorithm: str = "",
        dataset: str = "",
        path: str | Path | None = None,
        directory: str | Path | None = None,
        eta: EtaEstimator | None = None,
        stall_timeout: float | None = DEFAULT_STALL_TIMEOUT,
        min_write_interval: float = DEFAULT_WRITE_INTERVAL,
        on_update: Callable[[dict], None] | None = None,
    ) -> None:
        self.run_id = run_id or uuid.uuid4().hex[:12]
        self.kind = kind
        self.backend = backend
        self.algorithm = algorithm
        self.dataset = dataset
        if path is None and directory is not None:
            path = Path(directory) / f"{self.run_id}.json"
        self.path = Path(path) if path is not None else None
        self.eta = eta or EtaEstimator()
        self.stall_timeout = stall_timeout
        self.min_write_interval = min_write_interval
        self.on_update = on_update

        self._started_monotonic = time.monotonic()
        self._started_unix = time.time()
        self._total = 0
        self._completed = 0
        self._fraction = 0.0
        self._state = "running"
        self._workers: dict[int, dict[str, Any]] = {}
        self._scheduler: dict[str, int] | None = None
        self._stalls = 0
        self._last_write = float("-inf")
        self._write_failed = False

    # -- progress accounting -------------------------------------------------

    @property
    def completed(self) -> int:
        return self._completed

    @property
    def total(self) -> int:
        return self._total

    @property
    def fraction(self) -> float:
        """The published fraction: monotone, clamped to [0, 1]."""
        return self._fraction

    @property
    def state(self) -> str:
        return self._state

    @property
    def stalls(self) -> int:
        return self._stalls

    def _recompute(self) -> None:
        if self._total > 0:
            raw = min(self._completed / self._total, 1.0)
            # Spawned tasks grow the total mid-run; never publish a smaller
            # fraction than a reader has already seen.
            if raw > self._fraction:
                self._fraction = raw

    def add_total(self, n: int) -> None:
        """Grow the task total (new generation, worksteal spawns)."""
        if n <= 0:
            return
        self._total += n
        self._recompute()
        self.write()

    def task_done(self, n: int = 1, *, worker_id: int | None = None) -> None:
        if n <= 0:
            return
        self._completed += n
        if worker_id is not None:
            entry = self._worker(worker_id)
            entry["tasks_done"] = entry.get("tasks_done", 0) + n
        self._recompute()
        self.write()

    # -- heartbeats and stalls ----------------------------------------------

    def _worker(self, worker_id: int) -> dict[str, Any]:
        entry = self._workers.get(worker_id)
        if entry is None:
            entry = self._workers[worker_id] = {
                "worker_id": worker_id,
                "pid": None,
                "tasks_done": 0,
                "rss_bytes": 0.0,
                "busy_seconds": 0.0,
                "wait_seconds": 0.0,
                "last_heartbeat_unix": 0.0,
                "stalled": False,
            }
        return entry

    def heartbeat(
        self, worker_id: int, beat: Mapping[str, Any] | None = None
    ) -> None:
        """Record one worker heartbeat (see :func:`worker_heartbeat`).

        A beat clears the worker's stall flag — progress after a stall means
        the worker recovered (or was respawned), and the watchdog may flag
        it again later.  Malformed beats are dropped field-by-field; a bad
        value can cost a reading, never the run.
        """
        entry = self._worker(worker_id)
        entry["last_heartbeat_unix"] = time.time()
        entry["stalled"] = False
        if beat is None:
            self.write()
            return
        for key in ("pid", "tasks_done"):
            try:
                if beat.get(key) is not None:
                    entry[key] = int(beat[key])
            except (TypeError, ValueError):
                pass
        for key in ("rss_bytes", "busy_seconds", "wait_seconds"):
            try:
                if beat.get(key) is not None:
                    entry[key] = float(beat[key])
            except (TypeError, ValueError):
                pass
        self.write()

    def record_stall(self, worker_id: int) -> None:
        """Flag a worker as stalled; forces a status write (it's an event)."""
        entry = self._worker(worker_id)
        entry["stalled"] = True
        self._stalls += 1
        self.write(force=True)

    def scheduler_update(
        self, *, outstanding: int, stolen: int = 0, spawned: int = 0
    ) -> None:
        """Publish the scheduler's view (worksteal deques + in-flight)."""
        self._scheduler = {
            "outstanding": int(outstanding),
            "stolen": int(stolen),
            "spawned": int(spawned),
        }
        self.write()

    # -- lifecycle -----------------------------------------------------------

    def finish(self, state: str = "done") -> None:
        """Enter a terminal state; ``done`` pins the fraction to exactly 1.0."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"state must be one of {TERMINAL_STATES}")
        self._state = state
        if state == "done":
            if self._total == 0:
                # Backends without inner progress (serial, vectorized) jump
                # 0 -> 1 at completion; publish a consistent 1/1.
                self._total = self._completed = max(1, self._completed)
            else:
                self._completed = max(self._completed, self._total)
            self._fraction = 1.0
        self.write(force=True)

    # -- rendering -----------------------------------------------------------

    def elapsed_seconds(self) -> float:
        return time.monotonic() - self._started_monotonic

    def status(self) -> dict[str, Any]:
        """The schema-versioned status document (what lands in the file)."""
        elapsed = self.elapsed_seconds()
        if self._state in TERMINAL_STATES:
            eta_seconds: float | None = 0.0 if self._state == "done" else None
            source: str | None = None
        else:
            eta_seconds, source = self.eta.estimate(
                elapsed, self._completed, self._total
            )
        return {
            "schema": LIVE_SCHEMA_VERSION,
            "run_id": self.run_id,
            "kind": self.kind,
            "backend": self.backend,
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "state": self._state,
            "started_unix": self._started_unix,
            "updated_unix": time.time(),
            "elapsed_seconds": elapsed,
            "progress": {
                "completed": self._completed,
                "total": self._total,
                "fraction": self._fraction,
            },
            "eta": {"eta_seconds": eta_seconds, "source": source},
            "workers": [
                dict(self._workers[wid]) for wid in sorted(self._workers)
            ],
            "scheduler": (
                dict(self._scheduler) if self._scheduler is not None else None
            ),
            "stalls": self._stalls,
        }

    def write(self, force: bool = False) -> None:
        """Publish the current status (throttled; never raises)."""
        now = time.monotonic()
        if not force and now - self._last_write < self.min_write_interval:
            return
        self._last_write = now
        document = self.status()
        if self.path is not None and not self._write_failed:
            if not atomic_write_json(self.path, document):
                self._write_failed = True  # stop retrying a dead filesystem
        if self.on_update is not None:
            try:
                self.on_update(document)
            except Exception:
                self.on_update = None  # a broken renderer never kills a run

    def stack_dump_path(self) -> Path | None:
        """Where workers dump tracebacks on a stall (next to the status)."""
        if self.path is None:
            return None
        return self.path.with_name(self.path.stem + ".stacks.txt")


# --------------------------------------------------------------------------
# Worker-side helpers
# --------------------------------------------------------------------------


def worker_heartbeat(
    tasks_done: int, busy_seconds: float = 0.0, wait_seconds: float = 0.0
) -> dict[str, Any]:
    """The heartbeat dict a worker piggybacks onto each task outcome.

    Deliberately tiny and cheap (one ``getrusage`` call) — it rides every
    result message, so its cost must stay in the noise.
    """
    return {
        "pid": os.getpid(),
        "tasks_done": int(tasks_done),
        "rss_bytes": sample_rusage()["max_rss_bytes"],
        "busy_seconds": float(busy_seconds),
        "wait_seconds": float(wait_seconds),
    }


#: Keeps dump-file handles alive for the lifetime of the worker process
#: (``faulthandler.register`` writes through the raw fd at signal time).
_DUMP_HANDLES: list[Any] = []


def install_stack_dump_handler(path: str | Path) -> bool:
    """Register a ``faulthandler`` traceback dump on ``SIGUSR1``.

    Returns ``False`` (and installs nothing) on platforms without
    ``SIGUSR1`` / ``faulthandler.register`` (e.g. Windows) or when the dump
    file cannot be opened — stall detection then proceeds without dumps.
    """
    try:
        import faulthandler
        import signal
    except ImportError:  # pragma: no cover - faulthandler is stdlib
        return False
    if not hasattr(signal, "SIGUSR1") or not hasattr(faulthandler, "register"):
        return False  # pragma: no cover - platform-dependent
    try:
        handle = open(path, "a", encoding="utf-8")
    except OSError:
        return False
    _DUMP_HANDLES.append(handle)
    faulthandler.register(signal.SIGUSR1, file=handle, all_threads=True)
    return True


def request_stack_dump(pid: int | None) -> bool:
    """Ask a worker (by pid) to dump its stacks; best-effort, never raises."""
    if pid is None:
        return False
    try:
        import signal
    except ImportError:  # pragma: no cover
        return False
    if not hasattr(signal, "SIGUSR1"):
        return False  # pragma: no cover - platform-dependent
    try:
        os.kill(pid, signal.SIGUSR1)
        return True
    except (OSError, ProcessLookupError):
        return False


# --------------------------------------------------------------------------
# Reading status files (CLI `obs watch`, CI schema gate)
# --------------------------------------------------------------------------


def validate_status(document: Any) -> None:
    """Raise ``ValueError`` when a status document violates the schema.

    The CI smoke job runs every ``.repro/live/*.json`` a run produced
    through this — the schema is a published contract, not an internal
    detail.
    """
    problems: list[str] = []
    if not isinstance(document, Mapping):
        raise ValueError("status document must be a JSON object")
    if document.get("schema") != LIVE_SCHEMA_VERSION:
        problems.append(
            f"schema must be {LIVE_SCHEMA_VERSION}, got "
            f"{document.get('schema')!r}"
        )
    for key in ("run_id", "kind", "backend", "algorithm", "dataset", "state"):
        if not isinstance(document.get(key), str):
            problems.append(f"{key} must be a string")
    if document.get("state") not in ("running", *TERMINAL_STATES):
        problems.append(f"state {document.get('state')!r} is not valid")
    for key in ("started_unix", "updated_unix", "elapsed_seconds"):
        if not isinstance(document.get(key), (int, float)):
            problems.append(f"{key} must be a number")
    progress = document.get("progress")
    if not isinstance(progress, Mapping):
        problems.append("progress must be an object")
    else:
        for key in ("completed", "total"):
            value = progress.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(f"progress.{key} must be a non-negative int")
        fraction = progress.get("fraction")
        if not isinstance(fraction, (int, float)) or not 0.0 <= fraction <= 1.0:
            problems.append("progress.fraction must be within [0, 1]")
        elif document.get("state") == "done" and fraction != 1.0:
            problems.append("a 'done' run must report fraction == 1.0")
    eta = document.get("eta")
    if not isinstance(eta, Mapping):
        problems.append("eta must be an object")
    else:
        eta_seconds = eta.get("eta_seconds")
        if eta_seconds is not None and (
            not isinstance(eta_seconds, (int, float)) or eta_seconds < 0
        ):
            problems.append("eta.eta_seconds must be null or >= 0")
    workers = document.get("workers")
    if not isinstance(workers, list):
        problems.append("workers must be a list")
    else:
        for index, worker in enumerate(workers):
            if not isinstance(worker, Mapping):
                problems.append(f"workers[{index}] must be an object")
                continue
            if not isinstance(worker.get("worker_id"), int):
                problems.append(f"workers[{index}].worker_id must be an int")
            if not isinstance(worker.get("stalled"), bool):
                problems.append(f"workers[{index}].stalled must be a bool")
    if not isinstance(document.get("stalls"), int):
        problems.append("stalls must be an int")
    if problems:
        raise ValueError("; ".join(problems))


def read_status(path: str | Path) -> dict[str, Any] | None:
    """Load one status file; ``None`` when missing or unparseable."""
    try:
        with Path(path).open("r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return document if isinstance(document, dict) else None


def list_status_files(directory: str | Path = DEFAULT_LIVE_DIR) -> list[Path]:
    """Status files in the directory, oldest first by modification time."""
    root = Path(directory)
    if not root.is_dir():
        return []
    files = [
        path for path in root.glob("*.json") if not path.name.endswith(".tmp")
    ]
    return sorted(files, key=lambda path: (path.stat().st_mtime, path.name))


def find_status(
    token: str, directory: str | Path = DEFAULT_LIVE_DIR
) -> Path | None:
    """Resolve a status file by run-id prefix or negative index.

    ``"-1"`` is the most recently updated run, ``"-2"`` the one before;
    anything else matches a run-id (filename) prefix.
    """
    files = list_status_files(directory)
    try:
        index = int(token)
    except ValueError:
        index = None
    if index is not None and index < 0:
        return files[index] if -index <= len(files) else None
    for path in files:
        if path.stem.startswith(token):
            return path
    return None


def prune_status_files(
    directory: str | Path = DEFAULT_LIVE_DIR, *, keep: int = 50
) -> int:
    """Delete all but the newest ``keep`` status files (plus their dumps).

    Returns how many files were removed.  Part of ``repro obs gc`` — live
    status files are per-run, so without rotation the directory grows
    unboundedly just like the ledger.
    """
    if keep < 0:
        raise ValueError(f"keep must be >= 0, got {keep}")
    files = list_status_files(directory)
    removed = 0
    for path in files[: max(0, len(files) - keep)]:
        for victim in (path, path.with_name(path.stem + ".stacks.txt")):
            try:
                victim.unlink()
                removed += 1
            except OSError:
                pass
    return removed


# --------------------------------------------------------------------------
# Plain-text rendering (CLI `mine --progress`, `obs watch`)
# --------------------------------------------------------------------------


def _fmt_seconds(seconds: float | None) -> str:
    if seconds is None:
        return "?"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def _fmt_bytes(n: float) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.0f}{unit}"
        value /= 1024
    return f"{value:.0f}GiB"  # pragma: no cover - unreachable


def progress_line(document: Mapping[str, Any]) -> str:
    """One-line form for ``repro mine --progress`` (stderr-friendly)."""
    progress = document.get("progress") or {}
    eta = document.get("eta") or {}
    completed = progress.get("completed", 0)
    total = progress.get("total", 0)
    fraction = progress.get("fraction", 0.0)
    parts = [
        f"{document.get('algorithm', '?')}/{document.get('backend', '?')}",
        f"{completed}/{total}" if total else f"{completed} tasks",
        f"{fraction * 100:5.1f}%",
        f"elapsed {_fmt_seconds(document.get('elapsed_seconds'))}",
    ]
    if eta.get("eta_seconds") is not None:
        parts.append(
            f"eta ~{_fmt_seconds(eta['eta_seconds'])}"
            + (f" ({eta['source']})" if eta.get("source") else "")
        )
    if document.get("stalls"):
        parts.append(f"stalls={document['stalls']}")
    if document.get("state") in TERMINAL_STATES:
        parts.append(document["state"])
    return "  ".join(parts)


def render_status(document: Mapping[str, Any], *, width: int = 30) -> str:
    """Multi-line plain-text view for ``repro obs watch``."""
    progress = document.get("progress") or {}
    fraction = float(progress.get("fraction", 0.0) or 0.0)
    filled = int(round(min(max(fraction, 0.0), 1.0) * width))
    bar = "#" * filled + "." * (width - filled)
    lines = [
        f"run {document.get('run_id', '?')}  "
        f"{document.get('algorithm', '?')}/{document.get('backend', '?')} "
        f"on {document.get('dataset', '?')}  [{document.get('state', '?')}]",
        f"progress  [{bar}]  {progress.get('completed', 0)}"
        f"/{progress.get('total', 0)}  ({fraction * 100:.1f}%)   "
        f"elapsed {_fmt_seconds(document.get('elapsed_seconds'))}   "
        + (
            "eta ~"
            + _fmt_seconds((document.get("eta") or {}).get("eta_seconds"))
            + (
                f" ({(document.get('eta') or {}).get('source')})"
                if (document.get("eta") or {}).get("source")
                else ""
            )
            if (document.get("eta") or {}).get("eta_seconds") is not None
            else "eta ?"
        ),
    ]
    workers: Iterable[Mapping[str, Any]] = document.get("workers") or []
    for worker in workers:
        flag = "  ** STALLED **" if worker.get("stalled") else ""
        lines.append(
            f"worker {worker.get('worker_id', '?')}  "
            f"pid {worker.get('pid', '?')}  "
            f"tasks {worker.get('tasks_done', 0)}  "
            f"rss {_fmt_bytes(worker.get('rss_bytes', 0.0) or 0.0)}  "
            f"busy {_fmt_seconds(worker.get('busy_seconds', 0.0) or 0.0)}"
            f"{flag}"
        )
    scheduler = document.get("scheduler")
    if scheduler:
        lines.append(
            f"scheduler  outstanding={scheduler.get('outstanding', 0)}  "
            f"stolen={scheduler.get('stolen', 0)}  "
            f"spawned={scheduler.get('spawned', 0)}"
        )
    lines.append(f"stalls {document.get('stalls', 0)}")
    return "\n".join(lines)
