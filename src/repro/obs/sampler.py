"""Background resource timeline sampler.

A :class:`ResourceSampler` runs a daemon thread that periodically snapshots
the current process's resource usage — RSS, cumulative CPU seconds, and
I/O byte counters — and emits each snapshot as a Chrome ``"C"`` counter
event named ``"resource"`` on the owning :class:`~repro.obs.trace.TraceSink`.
The anatomy layer (:mod:`repro.obs.anatomy`) rolls those samples up into
per-track min/max/last summaries, and Perfetto renders them as counter
tracks alongside the span lanes.

The sampler is threaded through every execution surface: the engine
samples the parent process, both process backends start one per worker
(its events ride the normal procmerge snapshot path onto the worker's
pid lane), and out-of-core mining samples across partitions.  Enable it
with ``ObsContext(sample_interval=...)`` or CLI ``--sample-interval``.

On Linux the values come from ``/proc/self/statm`` and ``/proc/self/io``;
elsewhere the sampler degrades to ``resource.getrusage`` peak RSS and
``time.process_time`` with zero I/O counters.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.obs.trace import US_PER_SECOND, TraceSink

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry

#: Default sampling period in seconds.
DEFAULT_INTERVAL = 0.05

#: Counter-event name the sampler emits (one "C" event per sample).
COUNTER_NAME = "resource"

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (ValueError, OSError, AttributeError):  # pragma: no cover - exotic OS
    _PAGE_SIZE = 4096


def _rss_bytes_fallback() -> float:
    """Peak RSS via getrusage — coarse, but portable off Linux."""
    try:
        import resource

        peak = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except Exception:  # pragma: no cover - platforms without getrusage
        return 0.0
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return peak if sys.platform == "darwin" else peak * 1024.0


def sample_resources() -> dict[str, float]:
    """One point-in-time resource snapshot of this process."""
    values = {
        "rss_bytes": 0.0,
        "cpu_seconds": float(time.process_time()),
        "io_read_bytes": 0.0,
        "io_write_bytes": 0.0,
    }
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            values["rss_bytes"] = float(int(handle.read().split()[1]) * _PAGE_SIZE)
    except (OSError, ValueError, IndexError):
        values["rss_bytes"] = _rss_bytes_fallback()
    try:
        with open("/proc/self/io", encoding="ascii") as handle:
            for line in handle:
                key, _, raw = line.partition(":")
                if key == "read_bytes":
                    values["io_read_bytes"] = float(int(raw))
                elif key == "write_bytes":
                    values["io_write_bytes"] = float(int(raw))
    except (OSError, ValueError):
        pass
    return values


class ResourceSampler:
    """Daemon thread emitting periodic ``"C"`` resource samples.

    Never raises from the sampling thread; a failed sample is skipped.
    ``stop()`` joins the thread and emits one final sample so even very
    short runs get at least two points per track.
    """

    def __init__(self, sink: TraceSink, interval: float = DEFAULT_INTERVAL, *,
                 pid: int = 0, metrics: "MetricsRegistry | None" = None,
                 name: str = COUNTER_NAME):
        if not interval or interval <= 0:
            raise ConfigurationError(
                f"sample interval must be positive, got {interval!r}")
        self._sink = sink
        self._interval = float(interval)
        self._pid = pid
        self._metrics = metrics
        self._name = name
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._peak_rss = 0.0
        self.samples = 0

    def _emit_once(self) -> None:
        try:
            values = sample_resources()
            ts = (time.perf_counter() - self._sink.epoch) * US_PER_SECOND
            self._sink.counter_sample(self._name, ts, values, pid=self._pid)
            self.samples += 1
            self._peak_rss = max(self._peak_rss, values["rss_bytes"])
            if self._metrics is not None:
                self._metrics.gauge("resource.peak_rss_bytes").set(self._peak_rss)
                self._metrics.gauge("resource.samples").set(float(self.samples))
        except Exception:
            pass

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._emit_once()

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            return self
        self._emit_once()
        self._thread = threading.Thread(
            target=self._run, name="repro-resource-sampler", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=2.0)
        self._thread = None
        self._emit_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def maybe_start_sampler(obs, *, pid: int = 0,
                        interval: float | None = None) -> ResourceSampler | None:
    """Start a sampler for ``obs`` when sampling is configured.

    ``interval`` overrides ``obs.sample_interval`` (workers receive the
    interval through their init payload rather than a shared ObsContext).
    Returns ``None`` when ``obs`` is missing or no interval is set.
    """
    if obs is None:
        return None
    period = interval if interval is not None else getattr(
        obs, "sample_interval", None)
    if not period:
        return None
    sampler = ResourceSampler(obs.sink, float(period), metrics=obs.metrics)
    return sampler.start()
