"""Cross-process telemetry: worker-side snapshots, parent-side merging.

The parallel backends run their work in worker *processes*; a span recorded
there can't write to the parent's trace sink directly.  This module closes
that gap with a serialize-and-merge protocol:

* workers record spans and metrics into a :class:`WorkerTelemetry` — a
  normal :class:`~repro.obs.context.ObsContext` over an
  :class:`~repro.obs.trace.InMemorySink` — and :meth:`~WorkerTelemetry.drain`
  it into a plain-dict **snapshot** shipped back with each task result;
* the parent calls :func:`merge_snapshot`, which re-emits every event into
  its own sink on a per-worker lane (Chrome ``pid`` = the worker's OS pid)
  after remapping timestamps between the two ``perf_counter`` epochs, and
  folds counters / gauges / histogram observations into its registry.

Both ends share one clock family (``perf_counter`` is ``CLOCK_MONOTONIC``
on Linux, system-wide), so the remap ``parent_us = worker_us +
(worker_epoch - parent_epoch) * 1e6`` lines worker compute up against
parent dispatch on a single Perfetto timeline.

Fault tolerance is the design center: a snapshot from a crashed or
misbehaving worker may be missing, truncated, or garbage.  ``merge_snapshot``
validates everything and **drops** what it cannot interpret (counting drops
in ``obs.snapshots.dropped`` / ``obs.events.dropped``) instead of raising —
partial telemetry must never corrupt a trace or abort a run that the
fault-recovery machinery is about to save.

Worker-local instrument names beginning with ``worker.`` are relative: the
parent rebinds them under its per-worker prefix (``worker.busy_s`` merged
with prefix ``shared_memory.worker3`` lands as
``shared_memory.worker3.busy_s``), which is how per-worker load-balance
counters survive the trip without workers knowing their own slot.
"""

from __future__ import annotations

import os
from typing import Any, Mapping

from repro.obs.context import ObsContext
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import InMemorySink, TraceEvent, US_PER_SECOND

#: Version stamp on every snapshot; the merger ignores snapshots whose
#: schema it does not understand rather than guess at their layout.
SNAPSHOT_SCHEMA = 1

#: Worker-relative instrument prefix rebound by the parent (see module doc).
WORKER_PREFIX = "worker."


class WorkerTelemetry:
    """Worker-side span/metric recorder, drained per task into snapshots.

    ``enabled=False`` is the zero-overhead path: :attr:`obs` is ``None`` (so
    instrumented code keeps its usual ``if obs is not None`` guard) and
    :meth:`drain` returns ``None``.
    """

    def __init__(self, enabled: bool, *, pid: int | None = None) -> None:
        self.enabled = enabled
        self.pid = os.getpid() if pid is None else pid
        self.obs: ObsContext | None = (
            ObsContext(sink=InMemorySink()) if enabled else None
        )

    def drain(self) -> dict[str, Any] | None:
        """Snapshot everything recorded since the last drain, then reset.

        Events and metrics accumulate between drains, so calling this after
        every task ships exactly that task's telemetry (plus anything
        recorded before the first task, e.g. the attach span) — the parent
        can merge each snapshot as it arrives and the union over all tasks
        is the worker's complete record.
        """
        if self.obs is None:
            return None
        sink = self.obs.sink
        assert isinstance(sink, InMemorySink)
        # Swap the buffers out before serializing: a background
        # ResourceSampler thread may append events concurrently, and a
        # swap (one attribute store each) never loses a late event to a
        # copy-then-clear race.
        events, sink.events = sink.events, []
        metrics, self.obs.metrics = self.obs.metrics, MetricsRegistry()
        return snapshot(self.obs, pid=self.pid, events=events, metrics=metrics)


def remap_timestamp_us(
    ts_us: float, worker_epoch: float, parent_epoch: float
) -> float:
    """Map a worker-lane microsecond timestamp onto the parent's epoch.

    Both epochs are ``perf_counter`` values from the same monotonic clock
    family, so the remap is a pure offset: a worker event lands on the
    parent timeline exactly where it happened in wall-clock terms.
    """
    return float(ts_us) + (float(worker_epoch) - float(parent_epoch)) * US_PER_SECOND


def snapshot(
    obs: ObsContext,
    *,
    pid: int | None = None,
    events: list[TraceEvent] | None = None,
    metrics: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Serialize an ObsContext into a plain-dict snapshot (no reset).

    Only :class:`InMemorySink` events can be exported; any other sink
    contributes an empty event list (its events already live elsewhere).
    Histograms export raw observations, not summaries, so the merged
    percentiles equal a single-process run's.  ``events`` / ``metrics``
    override the context's own (``drain`` passes the buffers it swapped
    out).
    """
    sink = obs.sink
    if events is None:
        events = list(sink.events) if isinstance(sink, InMemorySink) else []
    if metrics is None:
        metrics = obs.metrics
    return {
        "schema": SNAPSHOT_SCHEMA,
        "pid": os.getpid() if pid is None else pid,
        "epoch": obs.sink.epoch,
        "events": [event.to_dict() for event in events],
        "counters": metrics.counters(),
        "gauges": metrics.gauges(),
        "histogram_values": metrics.histogram_values(),
    }


def _rebind(name: str, prefix: str | None) -> str:
    """Rebind a worker-relative instrument name under the parent's prefix."""
    if prefix is not None and name.startswith(WORKER_PREFIX):
        return f"{prefix}.{name[len(WORKER_PREFIX):]}"
    return name


def _merge_events(
    obs: ObsContext, snap: Mapping[str, Any], pid: int
) -> tuple[int, int]:
    """Re-emit snapshot events on the worker's lane; returns (kept, dropped)."""
    sink = obs.sink
    if not sink.enabled:
        return 0, 0
    raw_events = snap.get("events")
    if not isinstance(raw_events, list):
        return 0, len(raw_events) if hasattr(raw_events, "__len__") else 0
    try:
        offset_us = remap_timestamp_us(0.0, float(snap["epoch"]), sink.epoch)
    except (KeyError, TypeError, ValueError):
        return 0, len(raw_events)
    kept = dropped = 0
    for record in raw_events:
        try:
            event = TraceEvent.from_dict(record)
            sink.emit(
                TraceEvent(
                    name=event.name,
                    phase=event.phase,
                    # Metadata events are timeless; everything else moves
                    # from the worker's epoch to the parent's.
                    ts=event.ts if event.phase == "M" else event.ts + offset_us,
                    dur=event.dur,
                    pid=pid,
                    tid=event.tid,
                    cat=event.cat,
                    args=event.args,
                )
            )
            kept += 1
        except (TypeError, ValueError, KeyError):
            dropped += 1
    return kept, dropped


def merge_snapshot(
    obs: ObsContext,
    snap: Mapping[str, Any] | None,
    *,
    prefix: str | None = None,
    lane_name: str | None = None,
    seen_pids: set[int] | None = None,
) -> bool:
    """Fold one worker snapshot into the parent context.  Never raises.

    Returns ``True`` when the snapshot was merged, ``False`` when it was
    missing or unintelligible (in which case ``obs.snapshots.dropped`` is
    incremented and nothing else changes).  ``prefix`` rebinds
    ``worker.``-relative instrument names; ``lane_name`` (with a caller-held
    ``seen_pids`` set) names the worker's Chrome process lane exactly once.
    """
    if snap is None:
        return False
    if not isinstance(snap, Mapping) or snap.get("schema") != SNAPSHOT_SCHEMA:
        obs.metrics.counter("obs.snapshots.dropped").inc()
        return False
    try:
        pid = int(snap["pid"])
    except (KeyError, TypeError, ValueError):
        obs.metrics.counter("obs.snapshots.dropped").inc()
        return False

    if lane_name is not None and obs.sink.enabled:
        if seen_pids is None or pid not in seen_pids:
            obs.sink.set_process_name(pid, lane_name)
            if seen_pids is not None:
                seen_pids.add(pid)

    _kept, dropped = _merge_events(obs, snap, pid)
    if dropped:
        obs.metrics.counter("obs.events.dropped").inc(dropped)

    counters = snap.get("counters")
    if isinstance(counters, Mapping):
        for name, value in counters.items():
            try:
                amount = float(value)  # before touching the registry
                obs.metrics.counter(_rebind(str(name), prefix)).inc(amount)
            except Exception:
                obs.metrics.counter("obs.events.dropped").inc()
    gauges = snap.get("gauges")
    if isinstance(gauges, Mapping):
        for name, value in gauges.items():
            try:
                level = float(value)
                obs.metrics.gauge(_rebind(str(name), prefix)).set(level)
            except Exception:
                obs.metrics.counter("obs.events.dropped").inc()
    histogram_values = snap.get("histogram_values")
    if isinstance(histogram_values, Mapping):
        for name, values in histogram_values.items():
            try:
                obs.metrics.merge_histogram_values(
                    {_rebind(str(name), prefix): list(values)}
                )
            except Exception:
                obs.metrics.counter("obs.events.dropped").inc()
    obs.metrics.counter("obs.snapshots.merged").inc()
    return True
