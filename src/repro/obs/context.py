"""The observability context threaded through the pipeline.

Every instrumented entry point takes ``obs: ObsContext | None = None``.
``None`` is the fast path — call sites guard all emission behind a single
``if obs is not None`` so uninstrumented runs execute the exact seed code
path (byte-identical results, no sink or registry ever constructed).

An :class:`ObsContext` bundles a :class:`~repro.obs.trace.TraceSink` (span
and event stream) with a :class:`~repro.obs.metrics.MetricsRegistry`
(named instruments).  Either half can be a no-op: pass ``NullSink`` to
collect metrics without a trace, or ignore the registry to trace without
metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NullSink, TraceSink


@dataclass
class ObsContext:
    """One observation scope: a trace sink plus a metrics registry."""

    sink: TraceSink = field(default_factory=NullSink)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: When set, execution surfaces (engine, backends, out-of-core) run a
    #: background :class:`~repro.obs.sampler.ResourceSampler` at this
    #: period (seconds), emitting "C" resource tracks into the sink.
    sample_interval: float | None = None

    @property
    def tracing(self) -> bool:
        """True when the sink actually records events."""
        return self.sink.enabled

    def close(self) -> None:
        self.sink.close()

    def __enter__(self) -> "ObsContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
