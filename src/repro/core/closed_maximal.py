"""Closed and maximal itemset post-processing.

The paper mines all frequent itemsets; closed (no superset with equal
support) and maximal (no frequent superset) subsets are the standard
condensed views downstream users ask for, so the library provides them as
filters over any :class:`MiningResult`.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.itemset import Itemset
from repro.core.result import MiningResult


def _supersets_by_one(items: Itemset, candidates: dict[Itemset, int]) -> list[Itemset]:
    """Frequent supersets of ``items`` with exactly one extra item.

    Checking one-larger supersets suffices for both filters: support is
    monotone, so an equal-support superset of any size implies an
    equal-support superset one item larger (closedness), and any frequent
    superset implies a frequent one-larger superset (maximality).
    """
    found = []
    for sup_items in candidates:
        if len(sup_items) != len(items) + 1:
            continue
        it = iter(sup_items)
        if all(any(x == y for y in it) for x in items):
            found.append(sup_items)
    return found


def closed_itemsets(result: MiningResult) -> dict[Itemset, int]:
    """Frequent itemsets with no superset of equal support."""
    by_size = result.by_size()
    closed: dict[Itemset, int] = {}
    for k, level in by_size.items():
        bigger = by_size.get(k + 1, {})
        for items, support in level.items():
            if not any(
                bigger_support == support
                for sup in _supersets_by_one(items, bigger)
                for bigger_support in (bigger[sup],)
            ):
                closed[items] = support
    return closed


def maximal_itemsets(result: MiningResult) -> dict[Itemset, int]:
    """Frequent itemsets with no frequent superset at all."""
    by_size = result.by_size()
    maximal: dict[Itemset, int] = {}
    for k, level in by_size.items():
        bigger = by_size.get(k + 1, {})
        for items, support in level.items():
            if not _supersets_by_one(items, bigger):
                maximal[items] = support
    return maximal


def condensation_summary(result: MiningResult) -> dict[str, int]:
    """Counts of all / closed / maximal itemsets (reporting helper)."""
    return {
        "frequent": len(result),
        "closed": len(closed_itemsets(result)),
        "maximal": len(maximal_itemsets(result)),
    }
