"""CHARM-style closed frequent itemset mining.

Mining *all* frequent itemsets explodes on dense data; the closed subset
(no superset with equal support) is lossless and often orders of magnitude
smaller.  This module implements the core of Zaki & Hsiao's CHARM on top of
the library's tidset machinery: depth-first equivalence-class search with
the four subsumption properties —

1. ``t(X) == t(Y)``: X and Y always co-occur; replace both with X∪Y;
2. ``t(X) ⊂ t(Y)``: X implies Y; extend X's closure with Y's item but keep
   Y for its own class;
3/4. the symmetric/neither cases keep both candidates.

plus a final closedness check against already-found closed sets (a hash on
support buckets).  The result matches filtering the full lattice through
:func:`repro.core.closed_maximal.closed_itemsets`, which is exactly what
the tests assert — but CHARM never materializes the non-closed sets.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.itemset import Itemset
from repro.core.result import MiningResult, resolve_min_support
from repro.datasets.transaction_db import TransactionDatabase
from repro.representations.tidset import TIDSET_DTYPE, intersect_sorted


class _ClosedStore:
    """Closed sets found so far, bucketed by support for subsumption tests."""

    def __init__(self) -> None:
        self._by_support: dict[int, list[tuple[frozenset, tuple]]] = defaultdict(list)

    def is_subsumed(self, items: frozenset, support: int) -> bool:
        """True when a known closed superset has the same support."""
        return any(items <= other for other, _ in self._by_support[support])

    def add(self, items: frozenset, support: int, tids: tuple) -> None:
        self._by_support[support].append((items, tids))

    def results(self) -> list[tuple[frozenset, int]]:
        return [
            (items, support)
            for support, bucket in self._by_support.items()
            for items, _ in bucket
        ]


def _charm_extend(
    class_members: list[tuple[frozenset, np.ndarray]],
    min_sup: int,
    store: _ClosedStore,
) -> None:
    """One CHARM equivalence class (members sorted by ascending support)."""
    i = 0
    while i < len(class_members):
        items_i, tids_i = class_members[i]
        new_class: list[tuple[frozenset, np.ndarray]] = []
        j = i + 1
        while j < len(class_members):
            items_j, tids_j = class_members[j]
            tids_ij = intersect_sorted(tids_i, tids_j)
            if tids_ij.size >= min_sup:
                union = items_i | items_j
                if tids_ij.size == tids_i.size == tids_j.size:
                    # Property 1: X and Y co-occur everywhere — replace X
                    # with X∪Y everywhere it already appeared (including
                    # the candidates generated so far) and drop Y.
                    delta = items_j - items_i
                    items_i = union
                    class_members[i] = (items_i, tids_i)
                    new_class = [(m | delta, t) for m, t in new_class]
                    del class_members[j]
                    continue
                if tids_ij.size == tids_i.size:
                    # Property 2: X implies Y — X's closure (and every
                    # candidate already derived from X) gains Y's items;
                    # Y keeps its own class.
                    delta = items_j - items_i
                    items_i = union
                    class_members[i] = (items_i, tids_i)
                    new_class = [(m | delta, t) for m, t in new_class]
                else:
                    # Properties 3/4: genuine new candidate.
                    new_class.append((union, tids_ij))
            j += 1

        if new_class:
            new_class.sort(key=lambda m: m[1].size)
            _charm_extend(new_class, min_sup, store)

        support = int(tids_i.size)
        if not store.is_subsumed(items_i, support):
            store.add(items_i, support, ())
        i += 1


def charm(
    db: TransactionDatabase,
    min_support: float | int,
) -> MiningResult:
    """Closed frequent itemsets via CHARM.

    Returns a :class:`MiningResult` whose ``itemsets`` map contains exactly
    the closed frequent itemsets.
    """
    min_sup = resolve_min_support(db, min_support)
    result = MiningResult(
        dataset=db.name,
        algorithm="charm",
        representation="tidset",
        min_support=min_sup,
        n_transactions=db.n_transactions,
    )

    members: list[tuple[frozenset, np.ndarray]] = []
    for item, tids in enumerate(db.tidlists()):
        if tids.size >= min_sup:
            members.append((frozenset((item,)), tids.astype(TIDSET_DTYPE)))
    if not members:
        return result

    # Ascending support: rare items first (the CHARM heuristic that makes
    # property-1/2 merges fire early).
    members.sort(key=lambda m: m[1].size)
    store = _ClosedStore()
    _charm_extend(members, min_sup, store)

    for items, support in store.results():
        result.add(tuple(sorted(items)), support)
    return result


def closed_itemsets_via_charm(
    db: TransactionDatabase, min_support: float | int
) -> dict[Itemset, int]:
    """Deprecated alias for ``repro.mine(..., algorithm="charm")``.

    Charm is a first-class engine algorithm now; this wrapper predates the
    registration and survives only as a shim.
    """
    import warnings

    warnings.warn(
        "closed_itemsets_via_charm() is deprecated; use repro.mine(db, "
        "algorithm='charm', min_support=...).itemsets instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.engine import mine

    return dict(
        mine(db, algorithm="charm", min_support=min_support).itemsets
    )
