"""GenMax-style maximal frequent itemset mining.

The maximal frequent itemsets (no frequent superset) are the smallest
condensed representation that still determines *frequency* (though not
supports).  This implements the core of Gouda & Zaki's GenMax on the
library's tidset machinery: depth-first class search with

* **progressive focusing** — a candidate subtree is pruned when the union
  of its prefix with all remaining class items is subsumed by an
  already-found maximal set (the superset check), and
* **PEP (parent equivalence pruning)** — an extension whose tidset equals
  the prefix's is absorbed into the prefix directly.

Results are validated against filtering the full lattice through
:func:`repro.core.closed_maximal.maximal_itemsets`.
"""

from __future__ import annotations

import numpy as np

from repro.core.itemset import Itemset
from repro.core.result import MiningResult, resolve_min_support
from repro.datasets.transaction_db import TransactionDatabase
from repro.representations.tidset import TIDSET_DTYPE, intersect_sorted


class _MaximalStore:
    """Maximal sets found so far, with a superset test."""

    def __init__(self) -> None:
        self.sets: list[tuple[frozenset, int]] = []

    def subsumes(self, items: frozenset) -> bool:
        return any(items <= found for found, _ in self.sets)

    def add(self, items: frozenset, support: int) -> None:
        # Keep the store thin: drop any previous set the new one covers.
        self.sets = [
            (found, s) for found, s in self.sets if not found < items
        ]
        self.sets.append((items, support))


def _genmax(
    prefix: frozenset,
    prefix_tids: np.ndarray,
    class_items: list[tuple[int, np.ndarray]],
    min_sup: int,
    store: _MaximalStore,
) -> None:
    """Expand one prefix with its candidate extension items."""
    # Progressive focusing: if prefix + every remaining item is already
    # inside a known maximal set, nothing new can come from this subtree.
    ceiling = prefix | {item for item, _ in class_items}
    if store.subsumes(ceiling):
        return

    # Build the frequent extensions, applying PEP.
    extensions: list[tuple[int, np.ndarray]] = []
    absorbed = set()
    for item, tids in class_items:
        joined = intersect_sorted(prefix_tids, tids) if prefix else tids
        if joined.size < min_sup:
            continue
        if joined.size == prefix_tids.size and prefix:
            # PEP: the extension loses nothing — fold it into the prefix.
            absorbed.add(item)
        else:
            extensions.append((item, joined))
    prefix = prefix | absorbed

    if not extensions:
        if prefix and not store.subsumes(prefix):
            store.add(prefix, int(prefix_tids.size))
        return

    # Ascending support keeps classes small (the GenMax/Eclat heuristic).
    extensions.sort(key=lambda e: e[1].size)
    for i, (item, tids) in enumerate(extensions):
        _genmax(
            prefix | {item},
            tids,
            extensions[i + 1 :],
            min_sup,
            store,
        )


def genmax(
    db: TransactionDatabase,
    min_support: float | int,
) -> MiningResult:
    """Maximal frequent itemsets via GenMax."""
    min_sup = resolve_min_support(db, min_support)
    result = MiningResult(
        dataset=db.name,
        algorithm="genmax",
        representation="tidset",
        min_support=min_sup,
        n_transactions=db.n_transactions,
    )
    items = [
        (item, tids.astype(TIDSET_DTYPE))
        for item, tids in enumerate(db.tidlists())
        if tids.size >= min_sup
    ]
    if not items:
        return result

    store = _MaximalStore()
    all_tids = np.arange(db.n_transactions, dtype=TIDSET_DTYPE)
    _genmax(frozenset(), all_tids, items, min_sup, store)

    for found, support in store.sets:
        result.add(tuple(sorted(found)), support)
    return result


def maximal_itemsets_via_genmax(
    db: TransactionDatabase, min_support: float | int
) -> dict[Itemset, int]:
    """Convenience wrapper returning a plain dict."""
    return dict(genmax(db, min_support).itemsets)
