"""The ``Queryable`` protocol: one query surface over mined answers.

The repo grew two ways to hold "the answers": a fresh
:class:`~repro.core.result.MiningResult` straight out of ``repro.mine()``
and the persisted closed-itemset artifact behind
:class:`repro.index.ItemsetIndex`.  Callers should not care which one they
are holding — "what is frequent at 30%?", "how often does {2, 5} occur?",
"which rules clear 0.8 confidence?" are the same questions either way.

``Queryable`` pins that contract.  Both implementations answer **exactly**
(same itemsets, same absolute supports) for any threshold at or above
their :attr:`query_floor`; below the floor the answer would be a silent
lie, so both raise :class:`~repro.errors.ConfigurationError` instead.

Implementations:

* :class:`repro.core.result.MiningResult` — floor is the ``min_support``
  it was mined at; queries filter the in-memory map.
* :class:`repro.index.ItemsetIndex` — floor is the build-time support
  floor; queries run restore rules over the closed-itemset lattice
  without touching the original database.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.itemset import Itemset
    from repro.core.result import MiningResult
    from repro.rules.generation import AssociationRule


@runtime_checkable
class Queryable(Protocol):
    """Anything that answers itemset queries at supports >= its floor.

    ``min_support`` arguments follow the library-wide convention: a float
    in ``(0, 1]`` is relative to :attr:`n_transactions`, an int >= 1 is an
    absolute count.  ``None`` means "at the floor".
    """

    #: Transaction count of the underlying database (for relative supports).
    n_transactions: int

    @property
    def query_floor(self) -> int:
        """Lowest absolute support this source can answer exactly."""
        ...  # pragma: no cover - protocol

    def frequent_at(self, min_support: float | int) -> "MiningResult":
        """All frequent itemsets (with exact supports) at ``min_support``."""
        ...  # pragma: no cover - protocol

    def support_of(self, items: Iterable[int]) -> int | None:
        """Exact absolute support of ``items``, or ``None`` when it is not
        frequent at the floor (i.e. its support is below
        :attr:`query_floor` — the source cannot distinguish finer)."""
        ...  # pragma: no cover - protocol

    def top_k(
        self, k: int, *, min_support: float | int | None = None
    ) -> "list[tuple[Itemset, int]]":
        """The ``k`` most frequent itemsets at ``min_support`` (floor when
        omitted), ordered by descending support then lexicographically."""
        ...  # pragma: no cover - protocol

    def rules(
        self,
        *,
        min_support: float | int | None = None,
        min_confidence: float = 0.5,
        min_lift: float | None = None,
    ) -> "list[AssociationRule]":
        """Association rules over the itemsets frequent at ``min_support``."""
        ...  # pragma: no cover - protocol
