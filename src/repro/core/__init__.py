"""Core frequent itemset mining algorithms."""

from repro.core.itemset import Itemset, canonical, is_subset, join, share_prefix
from repro.core.queryable import Queryable
from repro.core.result import (
    MiningResult,
    from_mapping,
    resolve_min_support,
    resolve_support_count,
)
from repro.core.candidate_gen import CandidateJoin, generate_candidates
from repro.core.level_table import Level, LevelTable
from repro.core.apriori import AprioriRun, apriori, execute_apriori, run_apriori
from repro.core.eclat import EclatRun, eclat, execute_eclat, run_eclat
from repro.core.fpgrowth import fpgrowth
from repro.core.brute_force import brute_force
from repro.core.apriori_horizontal import (
    HorizontalAprioriRun,
    apriori_horizontal,
    run_apriori_horizontal,
)
from repro.core.charm import charm, closed_itemsets_via_charm
from repro.core.genmax import genmax, maximal_itemsets_via_genmax
from repro.core.closed_maximal import (
    closed_itemsets,
    condensation_summary,
    maximal_itemsets,
)

__all__ = [
    "Itemset",
    "canonical",
    "is_subset",
    "join",
    "share_prefix",
    "MiningResult",
    "Queryable",
    "from_mapping",
    "resolve_min_support",
    "resolve_support_count",
    "CandidateJoin",
    "generate_candidates",
    "Level",
    "LevelTable",
    "AprioriRun",
    "apriori",
    "execute_apriori",
    "run_apriori",
    "EclatRun",
    "eclat",
    "execute_eclat",
    "run_eclat",
    "fpgrowth",
    "brute_force",
    "apriori_horizontal",
    "run_apriori_horizontal",
    "HorizontalAprioriRun",
    "charm",
    "closed_itemsets_via_charm",
    "genmax",
    "maximal_itemsets_via_genmax",
    "closed_itemsets",
    "maximal_itemsets",
    "condensation_summary",
]
