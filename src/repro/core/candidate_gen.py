"""Apriori candidate generation (prefix join + downward-closure pruning).

Given the frequent (k-1)-itemsets, generation k candidates are formed by
joining every pair that shares its first k-2 items (Algorithm 1, the
``candidate_generation`` step) and pruned when any (k-1)-subset is
infrequent — the a-priori property.  Each emitted candidate carries the
indices of its two parents so the miner can combine their vertical data and
the machine simulator can locate where those parents live in memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.itemset import Itemset


@dataclass(frozen=True, slots=True)
class CandidateJoin:
    """One generated candidate and the parent rows that produced it."""

    items: Itemset
    left_parent: int
    right_parent: int


def generate_candidates(
    frequent: list[Itemset],
    *,
    prune: bool = True,
) -> list[CandidateJoin]:
    """Join + prune one generation of candidates.

    Parameters
    ----------
    frequent:
        The frequent (k-1)-itemsets in lexicographic order (the miners
        maintain this invariant; it makes the prefix blocks contiguous).
    prune:
        Apply the downward-closure subset check.  Benchmarks can disable it
        to measure the pruning pay-off.

    Returns
    -------
    Candidates in lexicographic order, each with parent indices into
    ``frequent``.
    """
    if not frequent:
        return []
    k_minus_1 = len(frequent[0])
    frequent_set = set(frequent) if prune else None

    candidates: list[CandidateJoin] = []
    n = len(frequent)
    block_start = 0
    while block_start < n:
        prefix = frequent[block_start][:-1]
        block_end = block_start
        while block_end < n and frequent[block_end][:-1] == prefix:
            block_end += 1
        # Join every ordered pair inside the prefix block.
        for i in range(block_start, block_end):
            for j in range(i + 1, block_end):
                items = frequent[i] + (frequent[j][-1],)
                if prune and k_minus_1 >= 2 and not _all_subsets_frequent(
                    items, frequent_set  # type: ignore[arg-type]
                ):
                    continue
                candidates.append(CandidateJoin(items, i, j))
        block_start = block_end
    return candidates


def _all_subsets_frequent(items: Itemset, frequent_set: set[Itemset]) -> bool:
    """Downward-closure test.

    The two subsets obtained by dropping the last or second-to-last item are
    the join parents themselves and need not be re-checked; every other
    (k-1)-subset must be present.
    """
    k = len(items)
    for drop in range(k - 2):
        subset = items[:drop] + items[drop + 1 :]
        if subset not in frequent_set:
            return False
    return True


def candidate_generation_ops(frequent_count: int, candidate_count: int, k: int) -> int:
    """Element-operation estimate for the serial join+prune phase.

    Used by the machine model: the paper parallelizes support counting only,
    so candidate generation contributes a serial term per generation.  Each
    emitted candidate costs ~k hash probes for pruning plus the join
    comparison; each frequent itemset is touched once to delimit prefix
    blocks.
    """
    return frequent_count * k + candidate_count * max(1, k)
