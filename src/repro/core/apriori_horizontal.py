"""Horizontal Apriori — the pre-vertical baseline (Section III's foil).

The original Apriori counted candidate supports by scanning every
transaction per generation, incrementing shared counters.  The paper keeps
it only as the motivation for going vertical: each pass re-reads the whole
database, and a parallel version must protect every counter increment with
locks/atomics.  We implement it faithfully over
:class:`~repro.representations.horizontal.HorizontalCounter` so that

* the benchmark suite can quantify the "order of magnitude of performance
  gain" the paper attributes to vertical formats, and
* the contended-increment count gives the lock-pressure figure a parallel
  horizontal implementation would face.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.candidate_gen import generate_candidates
from repro.core.result import MiningResult, resolve_min_support
from repro.datasets.transaction_db import TransactionDatabase
from repro.representations.base import OpCost
from repro.representations.horizontal import HorizontalCounter


@dataclass
class HorizontalAprioriRun:
    """Result plus the scan-cost profile of one horizontal Apriori run."""

    result: MiningResult
    #: One full-database scan per generation.
    n_database_scans: int
    total_cost: OpCost = field(default_factory=OpCost)
    #: Shared-counter increments a parallel version would have to protect.
    contended_increments: int = 0


def run_apriori_horizontal(
    db: TransactionDatabase,
    min_support: float | int,
    max_generations: int | None = None,
) -> HorizontalAprioriRun:
    """Level-wise mining with per-generation database scans."""
    min_sup = resolve_min_support(db, min_support)
    result = MiningResult(
        dataset=db.name,
        algorithm="apriori-horizontal",
        representation="horizontal",
        min_support=min_sup,
        n_transactions=db.n_transactions,
    )
    counter = HorizontalCounter(db)
    total_cost = OpCost()
    increments = 0

    # Generation 1 straight from the item-support scan.
    supports = db.item_supports()
    total_cost += OpCost(
        cpu_ops=int(sum(t.size for t in db)),
        bytes_read=int(sum(t.size for t in db)) * 4,
    )
    increments += int(supports.sum())
    frequent = [
        (int(item),) for item in np.nonzero(supports >= min_sup)[0]
    ]
    for items in frequent:
        result.add(items, int(supports[items[0]]))

    scans = 1
    generation = 1
    while frequent:
        if max_generations is not None and generation >= max_generations:
            break
        generation += 1
        candidates = generate_candidates(frequent)
        if not candidates:
            break
        counted = counter.count([c.items for c in candidates])
        scans += 1
        total_cost += counted.cost
        increments += counted.contended_increments

        frequent = []
        for join, support in zip(candidates, counted.supports):
            if support >= min_sup:
                result.add(join.items, int(support))
                frequent.append(join.items)

    return HorizontalAprioriRun(
        result=result,
        n_database_scans=scans,
        total_cost=total_cost,
        contended_increments=increments,
    )


def apriori_horizontal(
    db: TransactionDatabase,
    min_support: float | int,
    **kwargs,
) -> MiningResult:
    """Frequent itemsets via horizontal Apriori (scan-based counting)."""
    return run_apriori_horizontal(db, min_support, **kwargs).result
