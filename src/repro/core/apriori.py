"""Apriori (Algorithm 1) over any vertical representation.

The level-wise loop iterates candidate generation, support counting, and
pruning until no candidate survives.  Support counting is the parallel
region in the paper (the outer loop over candidates), so each counting step
is surfaced to an optional :class:`AprioriSink` as an independent *task*
with its parents and measured :class:`OpCost` — that trace is what the
machine simulator schedules.

The serial phases (candidate generation and pruning) are also surfaced,
because on the real machine they bound scalability via Amdahl's law.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.core.candidate_gen import candidate_generation_ops, generate_candidates
from repro.core.level_table import Level, LevelTable
from repro.core.result import MiningResult, resolve_min_support
from repro.datasets.transaction_db import TransactionDatabase
from repro.representations import Representation, get_representation
from repro.representations.base import OpCost

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import ObsContext


class AprioriSink(Protocol):
    """Observer for the per-task cost trace of one Apriori run."""

    def on_singletons(self, level: Level, build_cost: OpCost) -> None:
        """Generation 1 built (the horizontal-to-vertical pass)."""

    def on_count_task(
        self,
        generation: int,
        candidate_index: int,
        left_parent: int,
        right_parent: int,
        cost: OpCost,
        payload_bytes: int,
    ) -> None:
        """One support-counting task (one iteration of the parallel loop).

        ``left_parent``/``right_parent`` index the *frequent survivors* of
        the previous generation, in survivor order — the simulator maps them
        to memory homes via the previous generation's schedule.
        """

    def on_generation_done(self, level: Level, candidate_gen_ops: int) -> None:
        """A generation finished counting+pruning; ``candidate_gen_ops`` is
        the element cost of the serial join/prune phase that produced it."""


class _NullSink:
    def on_singletons(self, level: Level, build_cost: OpCost) -> None:
        pass

    def on_count_task(self, *args, **kwargs) -> None:
        pass

    def on_generation_done(self, level: Level, candidate_gen_ops: int) -> None:
        pass


@dataclass
class AprioriRun:
    """Everything one Apriori execution produced."""

    result: MiningResult
    table: LevelTable
    total_cost: OpCost
    n_generations: int


def _record_level_metrics(
    obs: "ObsContext", level: Level, cost_delta: OpCost, n_combines: int
) -> None:
    """Per-level candidate volumes + kernel traffic into the registry."""
    n_candidates = int(level.supports.size)
    n_frequent = int(level.kept.sum())
    prefix = f"apriori.level{level.generation}"
    metrics = obs.metrics
    metrics.counter(f"{prefix}.candidates").inc(n_candidates)
    metrics.counter(f"{prefix}.frequent").inc(n_frequent)
    metrics.counter(f"{prefix}.pruned").inc(n_candidates - n_frequent)
    if n_combines:
        metrics.counter("mine.intersections").inc(n_combines)
        metrics.counter("mine.intersection_read_bytes").inc(cost_delta.bytes_read)
        metrics.counter("mine.bytes_written").inc(cost_delta.bytes_written)


def execute_apriori(
    db: TransactionDatabase,
    min_support: float | int,
    representation: Representation | str = "tidset",
    *,
    sink: AprioriSink | None = None,
    prune: bool = True,
    max_generations: int | None = None,
    obs: "ObsContext | None" = None,
) -> AprioriRun:
    """Execute Apriori and return the result plus its level table and trace.

    This is the miner implementation the engine's serial backend runs;
    prefer :func:`repro.mine` (results only) or :func:`repro.engine.execute`
    (full run object) as entry points — they add validation and
    representation resolution.

    Parameters
    ----------
    db:
        The transaction database.
    min_support:
        Relative (float) or absolute (int) threshold.
    representation:
        A :class:`Representation` instance or its registry name.
    sink:
        Optional cost-trace observer (used by the parallel simulator).
    prune:
        Toggle downward-closure pruning (ablation hook).
    max_generations:
        Optional cap on the number of generations (for bounded experiments).
    obs:
        Optional :class:`repro.obs.ObsContext`; records per-level candidate
        counters and one wall-clock span per generation.  ``None`` (the
        default) runs the exact uninstrumented code path.
    """
    rep = (
        get_representation(representation)
        if isinstance(representation, str)
        else representation
    )
    sink = sink or _NullSink()
    min_sup = resolve_min_support(db, min_support)

    result = MiningResult(
        dataset=db.name,
        algorithm="apriori",
        representation=rep.name,
        min_support=min_sup,
        n_transactions=db.n_transactions,
    )
    table = LevelTable()
    total_cost = OpCost()

    # --- Generation 1: one row per item ------------------------------------
    wall_start = time.perf_counter() if obs is not None else 0.0
    level = table.new_singleton_level(db.n_items)
    singletons = rep.build_singletons(db, min_support=min_sup)
    build_cost = rep.singleton_build_cost(db)
    total_cost += build_cost
    level.verticals = singletons
    level.supports = np.asarray([v.support for v in singletons], np.int64)
    level.kept = level.supports >= min_sup
    sink.on_singletons(level, build_cost)
    sink.on_generation_done(level, candidate_gen_ops=0)
    if obs is not None:
        _record_level_metrics(obs, level, OpCost(), n_combines=0)
        obs.sink.wall_event(
            "apriori.gen1", wall_start, cat="mine",
            args={"candidates": db.n_items, "frequent": int(level.kept.sum())},
        )

    for row in level.kept_positions():
        result.add(level.itemsets[row], int(level.supports[row]))

    frequent_itemsets = level.frequent_itemsets()
    frequent_verticals = level.frequent_verticals()

    # --- Generations 2.. ----------------------------------------------------
    generation = 1
    while frequent_itemsets:
        if max_generations is not None and generation >= max_generations:
            break
        generation += 1
        wall_start = time.perf_counter() if obs is not None else 0.0
        cost_before = total_cost
        candidates = generate_candidates(frequent_itemsets, prune=prune)
        if not candidates:
            break
        gen_ops = candidate_generation_ops(
            len(frequent_itemsets), len(candidates), generation
        )
        level = table.new_level(generation, candidates)
        assert level.verticals is not None

        for idx, cand in enumerate(candidates):
            left = frequent_verticals[cand.left_parent]
            right = frequent_verticals[cand.right_parent]
            vertical, cost = rep.combine(left, right)
            total_cost += cost
            level.verticals.append(vertical)
            level.supports[idx] = vertical.support
            sink.on_count_task(
                generation,
                idx,
                cand.left_parent,
                cand.right_parent,
                cost,
                rep.payload_bytes(vertical),
            )

        level.kept = level.supports >= min_sup
        sink.on_generation_done(level, candidate_gen_ops=gen_ops)
        if obs is not None:
            delta = OpCost(
                total_cost.cpu_ops - cost_before.cpu_ops,
                total_cost.bytes_read - cost_before.bytes_read,
                total_cost.bytes_written - cost_before.bytes_written,
            )
            _record_level_metrics(obs, level, delta, n_combines=len(candidates))
            obs.sink.wall_event(
                f"apriori.gen{generation}", wall_start, cat="mine",
                args={
                    "candidates": len(candidates),
                    "frequent": int(level.kept.sum()),
                },
            )

        for row in level.kept_positions():
            result.add(level.itemsets[row], int(level.supports[row]))

        # The previous generation's payloads are no longer needed.
        table[generation - 1].release_verticals()
        frequent_itemsets = level.frequent_itemsets()
        frequent_verticals = level.frequent_verticals()

    if len(table) and table[len(table)].verticals is not None:
        table[len(table)].release_verticals()

    return AprioriRun(
        result=result,
        table=table,
        total_cost=total_cost,
        n_generations=len(table),
    )


def run_apriori(
    db: TransactionDatabase,
    min_support: float | int,
    representation: Representation | str = "tidset",
    sink: AprioriSink | None = None,
    prune: bool = True,
    max_generations: int | None = None,
    obs: "ObsContext | None" = None,
) -> AprioriRun:
    """Deprecated alias for :func:`repro.engine.execute` (full run object).

    Kept for backwards compatibility; forwards to the engine and returns the
    identical :class:`AprioriRun`.
    """
    warnings.warn(
        "run_apriori() is deprecated; use repro.engine.execute(db, "
        "algorithm='apriori', min_support=..., ...) or repro.mine() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.engine import execute

    return execute(
        db,
        algorithm="apriori",
        min_support=min_support,
        representation=representation,
        sink=sink,
        prune=prune,
        max_generations=max_generations,
        obs=obs,
    )


def apriori(
    db: TransactionDatabase,
    min_support: float | int,
    representation: Representation | str = "tidset",
    **kwargs,
) -> MiningResult:
    """Frequent itemsets via Apriori (engine-routed convenience wrapper)."""
    from repro.engine import execute

    return execute(
        db,
        algorithm="apriori",
        min_support=min_support,
        representation=representation,
        **kwargs,
    ).result
