"""Level-table candidate storage (the paper's trie-as-table, Section II-A).

The classic Apriori implementations store candidates in a trie; the paper
flattens the trie into "a table that stores the nodes associated with each
level of the tree" to suit the OpenMP loop model.  :class:`LevelTable` is
that structure: one :class:`Level` per generation, holding parallel arrays
of candidate itemsets, parent indices, supports, and (while the generation
is live) the vertical payloads.

The parallel-Apriori instrumentation reads this table to reconstruct where
each parent's payload lives (which simulated thread first touched it), so it
must preserve candidate order exactly as generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.candidate_gen import CandidateJoin
from repro.core.itemset import Itemset
from repro.errors import MiningError
from repro.representations.base import Vertical


@dataclass
class Level:
    """One generation of candidates.

    ``itemsets``/``left_parent``/``right_parent``/``supports`` are parallel
    arrays over the *generated* candidates (pre-pruning).  ``kept`` marks the
    frequent survivors; ``kept_positions`` maps each survivor to its row so
    the next generation's parent indices can be translated back.
    """

    generation: int
    itemsets: list[Itemset] = field(default_factory=list)
    left_parent: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    right_parent: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    supports: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))
    kept: np.ndarray = field(default_factory=lambda: np.empty(0, bool))
    verticals: list[Vertical] | None = None

    @property
    def n_candidates(self) -> int:
        return len(self.itemsets)

    @property
    def n_frequent(self) -> int:
        return int(self.kept.sum()) if self.kept.size else 0

    def kept_positions(self) -> np.ndarray:
        """Row indices of the frequent survivors, in order."""
        return np.nonzero(self.kept)[0]

    def frequent_itemsets(self) -> list[Itemset]:
        return [self.itemsets[i] for i in self.kept_positions()]

    def frequent_verticals(self) -> list[Vertical]:
        if self.verticals is None:
            raise MiningError(
                f"generation {self.generation} verticals were already released"
            )
        return [self.verticals[i] for i in self.kept_positions()]

    def release_verticals(self) -> None:
        """Drop payloads once the next generation has consumed them."""
        self.verticals = None


class LevelTable:
    """The per-level candidate tables for one Apriori run."""

    def __init__(self) -> None:
        self._levels: list[Level] = []

    def __len__(self) -> int:
        return len(self._levels)

    def __getitem__(self, generation: int) -> Level:
        """Level for 1-based generation number ``generation``."""
        if generation < 1 or generation > len(self._levels):
            raise MiningError(f"no level for generation {generation}")
        return self._levels[generation - 1]

    def levels(self) -> list[Level]:
        return list(self._levels)

    def new_level(
        self,
        generation: int,
        candidates: list[CandidateJoin],
    ) -> Level:
        """Append the table for one generation of joined candidates."""
        if generation != len(self._levels) + 1:
            raise MiningError(
                f"levels must be appended in order; expected generation "
                f"{len(self._levels) + 1}, got {generation}"
            )
        level = Level(
            generation=generation,
            itemsets=[c.items for c in candidates],
            left_parent=np.asarray([c.left_parent for c in candidates], np.int64),
            right_parent=np.asarray([c.right_parent for c in candidates], np.int64),
            supports=np.zeros(len(candidates), np.int64),
            kept=np.zeros(len(candidates), bool),
            verticals=[],
        )
        self._levels.append(level)
        return level

    def new_singleton_level(self, n_items: int) -> Level:
        """Generation-1 table: one row per item, no parents."""
        if self._levels:
            raise MiningError("singleton level must be the first level")
        level = Level(
            generation=1,
            itemsets=[(item,) for item in range(n_items)],
            left_parent=np.full(n_items, -1, np.int64),
            right_parent=np.full(n_items, -1, np.int64),
            supports=np.zeros(n_items, np.int64),
            kept=np.zeros(n_items, bool),
            verticals=[],
        )
        self._levels.append(level)
        return level

    def total_candidates(self) -> int:
        return sum(level.n_candidates for level in self._levels)

    def total_frequent(self) -> int:
        return sum(level.n_frequent for level in self._levels)
