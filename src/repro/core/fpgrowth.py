"""FP-growth — the third classic FIM algorithm the paper names.

The paper's introduction lists Apriori, Eclat, and FP-growth as the three
popular algorithms and evaluates the first two; FP-growth is implemented
here as the candidate-generation-free baseline so the library covers the
whole family and the test suite gains an independent oracle.

Implementation: a standard FP-tree (prefix tree ordered by descending item
frequency, with per-item header chains) mined by recursive conditional
pattern-base projection.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.itemset import Itemset, canonical
from repro.core.result import MiningResult, resolve_min_support
from repro.datasets.transaction_db import TransactionDatabase


@dataclass
class _Node:
    """One FP-tree node: an item, its count, and tree links."""

    item: int
    count: int = 0
    parent: "_Node | None" = None
    children: dict[int, "_Node"] = field(default_factory=dict)
    #: Next node carrying the same item (the header chain).
    link: "_Node | None" = None


class FPTree:
    """Frequency-ordered prefix tree with header chains."""

    def __init__(self) -> None:
        self.root = _Node(item=-1)
        self.header: dict[int, _Node] = {}
        self._header_tail: dict[int, _Node] = {}

    def insert(self, items: list[int], count: int) -> None:
        """Insert one (already frequency-ordered) transaction ``count`` times."""
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _Node(item=item, parent=node)
                node.children[item] = child
                if item in self._header_tail:
                    self._header_tail[item].link = child
                else:
                    self.header[item] = child
                self._header_tail[item] = child
            child.count += count
            node = child

    def item_nodes(self, item: int):
        """Iterate the header chain for ``item``."""
        node = self.header.get(item)
        while node is not None:
            yield node
            node = node.link

    def prefix_path(self, node: _Node) -> list[int]:
        """Items on the path from ``node``'s parent up to the root."""
        path: list[int] = []
        cur = node.parent
        while cur is not None and cur.item != -1:
            path.append(cur.item)
            cur = cur.parent
        path.reverse()
        return path

    def is_single_path(self) -> list[tuple[int, int]] | None:
        """If the tree is one chain, return its (item, count) list, else None.

        Single-path trees terminate the recursion: every subset of the chain
        is frequent with the minimum count along its members.
        """
        path: list[tuple[int, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            (node,) = node.children.values()
            path.append((node.item, node.count))
        return path


def _build_tree(
    weighted_transactions: list[tuple[list[int], int]],
    item_counts: dict[int, int],
    min_sup: int,
) -> FPTree:
    """Filter infrequent items, frequency-order, and build the tree."""
    frequent = {i for i, c in item_counts.items() if c >= min_sup}
    # Descending count, item id as tiebreak, gives the canonical FP order.
    order = {
        item: rank
        for rank, item in enumerate(
            sorted(frequent, key=lambda i: (-item_counts[i], i))
        )
    }
    tree = FPTree()
    for items, count in weighted_transactions:
        kept = sorted(
            (i for i in items if i in frequent), key=order.__getitem__
        )
        if kept:
            tree.insert(kept, count)
    return tree


def _mine_tree(
    tree: FPTree,
    suffix: Itemset,
    item_counts: dict[int, int],
    min_sup: int,
    result: MiningResult,
) -> None:
    single = tree.is_single_path()
    if single is not None:
        _emit_single_path(single, suffix, min_sup, result)
        return

    # Mine items from least to most frequent (bottom of the order).
    for item in sorted(
        tree.header, key=lambda i: (item_counts[i], -i)
    ):
        support = item_counts[item]
        if support < min_sup:
            continue
        new_suffix = canonical(suffix + (item,))
        result.add(new_suffix, support)

        # Conditional pattern base: prefix paths of every node of `item`.
        conditional: list[tuple[list[int], int]] = []
        cond_counts: dict[int, int] = defaultdict(int)
        for node in tree.item_nodes(item):
            path = tree.prefix_path(node)
            if path:
                conditional.append((path, node.count))
                for p in path:
                    cond_counts[p] += node.count
        if not conditional:
            continue
        cond_tree = _build_tree(conditional, cond_counts, min_sup)
        if cond_tree.header:
            _mine_tree(cond_tree, new_suffix, cond_counts, min_sup, result)


def _emit_single_path(
    path: list[tuple[int, int]],
    suffix: Itemset,
    min_sup: int,
    result: MiningResult,
) -> None:
    """Emit every combination along a single-path tree.

    The support of a combination is the count of its deepest member (counts
    are non-increasing along the path).
    """
    frequent_path = [(item, count) for item, count in path if count >= min_sup]
    n = len(frequent_path)
    for mask in range(1, 1 << n):
        items: list[int] = []
        support = None
        for bit in range(n):
            if mask >> bit & 1:
                item, count = frequent_path[bit]
                items.append(item)
                support = count  # deepest selected member
        result.add(canonical(suffix + tuple(items)), int(support))  # type: ignore[arg-type]


def fpgrowth(
    db: TransactionDatabase,
    min_support: float | int,
) -> MiningResult:
    """Frequent itemsets via FP-growth."""
    min_sup = resolve_min_support(db, min_support)
    result = MiningResult(
        dataset=db.name,
        algorithm="fpgrowth",
        representation="fptree",
        min_support=min_sup,
        n_transactions=db.n_transactions,
    )
    transactions = [(t.tolist(), 1) for t in db]
    counts: dict[int, int] = defaultdict(int)
    for items, _ in transactions:
        for i in items:
            counts[i] += 1

    for item, count in counts.items():
        if count >= min_sup:
            result.add((item,), count)

    tree = _build_tree(transactions, counts, min_sup)
    if tree.header:
        # Top-level mining emits (item,) again with identical support and
        # all longer itemsets; re-adding singletons is idempotent.
        _mine_tree(tree, (), counts, min_sup, result)
    return result
