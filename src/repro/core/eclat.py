"""Eclat (Algorithm 2) over any vertical representation.

Eclat explores the candidate space by equivalence classes: the frequent
itemsets sharing a prefix form a class, and every ordered pair inside a
class joins into a candidate one item longer.  The serial miner here walks
classes depth-first (the textbook formulation); the *parallel structure* it
exposes through :class:`EclatSink` follows the paper's Algorithm 2, whose
recursive call (line 10) sits outside the pair loops: execution is
**level-synchronous**, and the parallel loop at line 3 runs over all
frequent i-itemsets of the current generation.  One loop iteration — one
*task* — takes a class member ``c_i`` and joins it with every later sibling
``c_k``, producing the next generation's members with prefix ``c_i``.

That task decomposition is what the trace records: every combine is
attributed to ``(depth, left member)``, every frequent child gets a global
index at its depth and remembers which task created it.  The machine
simulator replays each depth as one OpenMP ``schedule(dynamic, 1)`` region,
with the child verticals first-touched by their creating task — the
"generated data each thread reuses" of Section IV.

Item-processing order is configurable: ``"support"`` (ascending, the
standard Eclat convention from Zaki — smaller intermediates, balanced
classes) or ``"id"`` (raw item-number order).  Both orders mine identical
itemsets.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

from repro.core.itemset import Itemset
from repro.core.result import MiningResult, resolve_min_support
from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import ConfigurationError
from repro.representations import Representation, get_representation
from repro.representations.base import OpCost, Vertical

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import ObsContext


class EclatSink(Protocol):
    """Observer for the per-task cost trace of one Eclat run."""

    def on_singletons(
        self,
        n_frequent: int,
        build_cost: OpCost,
        payload_bytes: list[int] | None = None,
    ) -> None:
        """Generation-1 members built during the (serial) database load.

        ``payload_bytes[i]`` is the payload size of depth-1 member ``i`` in
        processing order.
        """

    def on_combine(
        self,
        depth: int,
        left_index: int,
        right_index: int,
        cost: OpCost,
        child_payload_bytes: int,
        child_index: int,
    ) -> None:
        """One candidate combined.

        ``left_index``/``right_index`` are global indices of the parents
        among the frequent ``depth``-itemsets (processing order);
        ``child_index`` is the child's global index among the frequent
        ``depth+1``-itemsets, or ``-1`` if the candidate was infrequent.
        The task owning this combine is ``(depth, left_index)``.
        """


class _NullSink:
    def on_singletons(self, n_frequent, build_cost, payload_bytes=None) -> None:
        pass

    def on_combine(self, *args, **kwargs) -> None:
        pass


@dataclass
class EclatRun:
    """Everything one Eclat execution produced."""

    result: MiningResult
    total_cost: OpCost
    n_toplevel_tasks: int
    max_depth: int


@dataclass
class _State:
    """Mutable recursion state shared across the depth-first walk."""

    rep: Representation
    min_sup: int
    result: MiningResult
    sink: "EclatSink | _NullSink"
    obs: "ObsContext | None" = None
    #: Next global index to hand out per depth (1-based depths).
    counters: dict[int, int] = field(default_factory=dict)
    total_cost: OpCost = field(default_factory=OpCost)
    max_depth: int = 1

    def next_index(self, depth: int) -> int:
        idx = self.counters.get(depth, 0)
        self.counters[depth] = idx + 1
        return idx


@dataclass(slots=True)
class _Member:
    """One class member: itemset (processing order), vertical, global index."""

    items: Itemset
    vertical: Vertical
    index: int


def _mine_class(state: _State, class_members: list[_Member], depth: int) -> None:
    """Mine one equivalence class of ``depth``-itemsets (lines 3-10)."""
    state.max_depth = max(state.max_depth, depth)
    obs = state.obs
    for i, left in enumerate(class_members):
        # At depth 1 each left member is one top-level task of the paper's
        # dynamic schedule: wrap its whole recursive subtree in a span.
        wall_start = (
            time.perf_counter() if obs is not None and depth == 1 else 0.0
        )
        n_combines = 0
        n_frequent = 0
        read_bytes = 0
        written_bytes = 0
        next_class: list[_Member] = []
        for right in class_members[i + 1 :]:
            candidate = left.items + (right.items[-1],)
            vertical, cost = state.rep.combine(left.vertical, right.vertical)
            state.total_cost += cost
            if obs is not None:
                n_combines += 1
                read_bytes += cost.bytes_read
                written_bytes += cost.bytes_written
            if vertical.support >= state.min_sup:
                child_index = state.next_index(depth + 1)
                n_frequent += 1
                # `candidate` is in processing order; results are canonical.
                state.result.add(tuple(sorted(candidate)), vertical.support)
                next_class.append(_Member(candidate, vertical, child_index))
            else:
                child_index = -1
            state.sink.on_combine(
                depth,
                left.index,
                right.index,
                cost,
                state.rep.payload_bytes(vertical),
                child_index,
            )
        if next_class:
            _mine_class(state, next_class, depth + 1)
        if obs is not None:
            if n_combines:
                prefix = f"eclat.depth{depth}"
                metrics = obs.metrics
                metrics.counter(f"{prefix}.combines").inc(n_combines)
                metrics.counter(f"{prefix}.frequent").inc(n_frequent)
                metrics.counter("mine.intersections").inc(n_combines)
                metrics.counter("mine.intersection_read_bytes").inc(read_bytes)
                metrics.counter("mine.bytes_written").inc(written_bytes)
            if depth == 1:
                # The span closes after the recursion above, so it covers
                # the task's entire subtree, matching the simulated task.
                obs.sink.wall_event(
                    f"eclat.task{left.index}", wall_start, cat="mine",
                    args={"prefix_item": left.items[0], "combines": n_combines},
                )


def execute_eclat(
    db: TransactionDatabase,
    min_support: float | int,
    representation: Representation | str = "tidset",
    *,
    sink: EclatSink | None = None,
    item_order: str = "support",
    obs: "ObsContext | None" = None,
) -> EclatRun:
    """Execute Eclat and return the result plus its cost trace.

    This is the miner implementation the engine's serial backend runs;
    prefer :func:`repro.mine` (results only) or :func:`repro.engine.execute`
    (full run object) as entry points — they add validation and
    representation resolution.

    Parameters
    ----------
    item_order:
        ``"support"`` (default) processes rarest items first; ``"id"`` keeps
        raw item-number order.  Identical results, different cost profile.
    obs:
        Optional :class:`repro.obs.ObsContext`; records per-depth combine
        counters and one wall-clock span per top-level subtree.  ``None``
        (the default) runs the exact uninstrumented code path.
    """
    rep = (
        get_representation(representation)
        if isinstance(representation, str)
        else representation
    )
    if item_order not in ("support", "id"):
        raise ConfigurationError(
            f"item_order must be 'support' or 'id', got {item_order!r}"
        )
    snk: EclatSink | _NullSink = sink or _NullSink()
    min_sup = resolve_min_support(db, min_support)

    result = MiningResult(
        dataset=db.name,
        algorithm="eclat",
        representation=rep.name,
        min_support=min_sup,
        n_transactions=db.n_transactions,
    )

    singletons = rep.build_singletons(db, min_support=min_sup)
    build_cost = rep.singleton_build_cost(db)
    frequent: list[tuple[int, Vertical]] = [
        (item, v) for item, v in enumerate(singletons) if v.support >= min_sup
    ]
    if item_order == "support":
        frequent.sort(key=lambda entry: (entry[1].support, entry[0]))
    members = []
    for index, (item, vertical) in enumerate(frequent):
        result.add((item,), vertical.support)
        members.append(_Member((item,), vertical, index))
    snk.on_singletons(
        len(members),
        build_cost,
        payload_bytes=[m.vertical.payload.nbytes for m in members],
    )

    state = _State(rep=rep, min_sup=min_sup, result=result, sink=snk, obs=obs)
    state.total_cost += build_cost
    if obs is not None:
        obs.metrics.counter("eclat.toplevel.tasks").inc(len(members))

    if members:
        _mine_class(state, members, 1)

    return EclatRun(
        result=result,
        total_cost=state.total_cost,
        n_toplevel_tasks=len(members),
        max_depth=state.max_depth,
    )


def run_eclat(
    db: TransactionDatabase,
    min_support: float | int,
    representation: Representation | str = "tidset",
    sink: EclatSink | None = None,
    item_order: str = "support",
    obs: "ObsContext | None" = None,
) -> EclatRun:
    """Deprecated alias for :func:`repro.engine.execute` (full run object).

    Kept for backwards compatibility; forwards to the engine and returns the
    identical :class:`EclatRun`.
    """
    warnings.warn(
        "run_eclat() is deprecated; use repro.engine.execute(db, "
        "algorithm='eclat', min_support=..., ...) or repro.mine() instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.engine import execute

    return execute(
        db,
        algorithm="eclat",
        min_support=min_support,
        representation=representation,
        sink=sink,
        item_order=item_order,
        obs=obs,
    )


def eclat(
    db: TransactionDatabase,
    min_support: float | int,
    representation: Representation | str = "tidset",
    **kwargs,
) -> MiningResult:
    """Frequent itemsets via Eclat (engine-routed convenience wrapper)."""
    from repro.engine import execute

    return execute(
        db,
        algorithm="eclat",
        min_support=min_support,
        representation=representation,
        **kwargs,
    ).result
