"""Brute-force frequent itemset enumeration — the test oracle.

Counts every subset (up to a size cap) of every transaction in a hash map,
then filters by the threshold.  Exponential in transaction length, so it
guards against misuse; it exists purely so the property-based tests can
check Apriori/Eclat/FP-growth against an implementation too simple to be
wrong.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations

from repro.core.result import MiningResult, resolve_min_support
from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import ConfigurationError


#: Refuse transactions longer than this (2^length subsets each).
MAX_TRANSACTION_LENGTH = 20


def brute_force(
    db: TransactionDatabase,
    min_support: float | int,
    max_size: int | None = None,
) -> MiningResult:
    """Enumerate-and-count frequent itemsets.

    Parameters
    ----------
    max_size:
        Optional cap on itemset cardinality; ``None`` enumerates every
        subset of every transaction.
    """
    longest = max((t.size for t in db), default=0)
    if max_size is None and longest > MAX_TRANSACTION_LENGTH:
        raise ConfigurationError(
            f"brute force without max_size on transactions of length "
            f"{longest} would enumerate 2^{longest} subsets; pass max_size"
        )

    min_sup = resolve_min_support(db, min_support)
    counts: dict[tuple[int, ...], int] = defaultdict(int)
    for transaction in db:
        items = tuple(int(i) for i in transaction)
        top = len(items) if max_size is None else min(max_size, len(items))
        for k in range(1, top + 1):
            for subset in combinations(items, k):
                counts[subset] += 1

    result = MiningResult(
        dataset=db.name,
        algorithm="brute_force",
        representation="horizontal",
        min_support=min_sup,
        n_transactions=db.n_transactions,
    )
    for items, support in counts.items():
        if support >= min_sup:
            result.add(items, support)
    return result
