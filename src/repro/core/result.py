"""Mining result container and support-threshold resolution."""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.core.itemset import Itemset, canonical, is_subset
from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import ConfigurationError


def resolve_support_count(n_transactions: int, min_support: float | int) -> int:
    """Turn a relative (float in (0, 1]) or absolute (int >= 1) threshold
    into an absolute count over ``n_transactions``.

    The paper quotes thresholds relative to the transaction count
    (``chess@0.2`` means 20% of transactions); benchmarks pass floats.
    A relative threshold is rounded up so that ``support >= min_support``
    matches the relative definition exactly.
    """
    if isinstance(min_support, bool):
        raise ConfigurationError("min_support must be a number, not bool")
    if isinstance(min_support, float):
        if not 0.0 < min_support <= 1.0:
            raise ConfigurationError(
                f"relative min_support must be in (0, 1], got {min_support}"
            )
        # Epsilon guards against float noise like 0.3 * 10 == 3.0000000000000004
        # flipping the ceiling up a whole transaction.
        return max(1, math.ceil(min_support * n_transactions - 1e-9))
    if min_support < 1:
        raise ConfigurationError(
            f"absolute min_support must be >= 1, got {min_support}"
        )
    return int(min_support)


def resolve_min_support(db: TransactionDatabase, min_support: float | int) -> int:
    """:func:`resolve_support_count` against a database's transaction count."""
    return resolve_support_count(db.n_transactions, min_support)


@dataclass
class MiningResult:
    """All frequent itemsets with their absolute supports.

    Attributes
    ----------
    dataset:
        Name of the mined database.
    algorithm / representation:
        Which miner and vertical format produced the result.
    min_support:
        The absolute threshold applied.
    n_transactions:
        Transaction count of the database (for relative supports).
    itemsets:
        Mapping from canonical itemset tuple to absolute support.  The empty
        itemset is never included.
    backend:
        Which execution backend produced the result ("serial",
        "multiprocessing", "vectorized", ...).  The engine normalizes this;
        results built directly by a miner default to "serial".
    """

    dataset: str
    algorithm: str
    representation: str
    min_support: int
    n_transactions: int
    itemsets: dict[Itemset, int] = field(default_factory=dict)
    backend: str = "serial"

    def __len__(self) -> int:
        return len(self.itemsets)

    def __contains__(self, items: Iterable[int]) -> bool:
        return canonical(items) in self.itemsets

    def __iter__(self) -> Iterator[Itemset]:
        return iter(self.itemsets)

    def support(self, items: Iterable[int]) -> int:
        """Absolute support of a frequent itemset (KeyError if infrequent)."""
        return self.itemsets[canonical(items)]

    def relative_support(self, items: Iterable[int]) -> float:
        """Support as a fraction of the transaction count."""
        if self.n_transactions == 0:
            return 0.0
        return self.support(items) / self.n_transactions

    def add(self, items: Itemset, support: int) -> None:
        """Record one frequent itemset (assumes canonical input)."""
        self.itemsets[items] = support

    # -- the Queryable protocol ----------------------------------------------
    #
    # MiningResult and repro.index.ItemsetIndex answer the same four
    # questions through repro.core.queryable.Queryable, so callers write
    # one code path whether the answers came from a fresh mine or from a
    # persisted artifact.

    @property
    def query_floor(self) -> int:
        """Lowest support this result can answer exactly: its own threshold."""
        return self.min_support

    def frequent_at(self, min_support: float | int) -> "MiningResult":
        """The itemsets frequent at ``min_support``, as a new result view.

        ``min_support`` must be at or above :attr:`query_floor`; anything
        lower would need itemsets this result never recorded.
        """
        count = resolve_support_count(self.n_transactions, min_support)
        if count < self.min_support:
            raise ConfigurationError(
                f"cannot answer at support {count}: this result was mined "
                f"at min_support={self.min_support} (its query floor)"
            )
        view = MiningResult(
            dataset=self.dataset,
            algorithm=self.algorithm,
            representation=self.representation,
            min_support=count,
            n_transactions=self.n_transactions,
            backend=self.backend,
        )
        for items, support in self.itemsets.items():
            if support >= count:
                view.itemsets[items] = support
        return view

    def support_of(self, items: Iterable[int]) -> int | None:
        """Exact support of ``items``, or ``None`` when not frequent here."""
        return self.itemsets.get(canonical(items))

    def top_k(
        self, k: int, *, min_support: float | int | None = None
    ) -> list[tuple[Itemset, int]]:
        """The ``k`` most frequent itemsets, descending support then lex."""
        if k < 0:
            raise ConfigurationError(f"top_k needs k >= 0, got {k}")
        source = (
            self.itemsets
            if min_support is None
            else self.frequent_at(min_support).itemsets
        )
        return sorted(source.items(), key=lambda kv: (-kv[1], kv[0]))[:k]

    def rules(
        self,
        *,
        min_support: float | int | None = None,
        min_confidence: float = 0.5,
        min_lift: float | None = None,
    ):
        """Association rules over the itemsets frequent at ``min_support``."""
        # Imported here: repro.rules imports this module at load time.
        from repro.rules.generation import generate_rules

        source = self if min_support is None else self.frequent_at(min_support)
        return generate_rules(
            source, min_confidence=min_confidence, min_lift=min_lift
        )

    # -- views ---------------------------------------------------------------

    def by_size(self) -> dict[int, dict[Itemset, int]]:
        """Frequent itemsets grouped by cardinality (generation)."""
        grouped: dict[int, dict[Itemset, int]] = defaultdict(dict)
        for items, support in self.itemsets.items():
            grouped[len(items)][items] = support
        return dict(grouped)

    def k_itemsets(self, k: int) -> dict[Itemset, int]:
        """All frequent itemsets of exactly ``k`` items."""
        return {i: s for i, s in self.itemsets.items() if len(i) == k}

    def max_size(self) -> int:
        """Largest frequent itemset cardinality (0 when empty)."""
        return max((len(i) for i in self.itemsets), default=0)

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        sizes = self.by_size()
        per_size = ", ".join(f"|L{k}|={len(v)}" for k, v in sorted(sizes.items()))
        return (
            f"{self.algorithm}/{self.representation} on {self.dataset} "
            f"(min_support={self.min_support}/{self.n_transactions}): "
            f"{len(self)} frequent itemsets [{per_size}]"
        )

    # -- comparisons -----------------------------------------------------------

    def same_itemsets(self, other: "MiningResult") -> bool:
        """True when both results found identical itemset->support maps.

        This is the cross-algorithm correctness check: two miners agree iff
        this holds, regardless of which algorithm or format produced them.
        """
        return self.itemsets == other.itemsets

    def difference(self, other: "MiningResult") -> dict[str, dict[Itemset, object]]:
        """Diagnostic diff against another result (for test failure output)."""
        only_self = {i: s for i, s in self.itemsets.items() if i not in other.itemsets}
        only_other = {
            i: s for i, s in other.itemsets.items() if i not in self.itemsets
        }
        support_mismatch = {
            i: (s, other.itemsets[i])
            for i, s in self.itemsets.items()
            if i in other.itemsets and other.itemsets[i] != s
        }
        return {
            "only_self": only_self,
            "only_other": only_other,
            "support_mismatch": support_mismatch,
        }


def from_mapping(
    mapping: Mapping[Iterable[int], int],
    *,
    dataset: str = "unnamed",
    algorithm: str = "manual",
    representation: str = "none",
    min_support: int = 1,
    n_transactions: int = 0,
) -> MiningResult:
    """Build a result from a plain mapping (test convenience)."""
    result = MiningResult(
        dataset=dataset,
        algorithm=algorithm,
        representation=representation,
        min_support=min_support,
        n_transactions=n_transactions,
    )
    for items, support in mapping.items():
        result.add(canonical(items), int(support))
    return result
