"""Canonical itemset utilities.

Every itemset in the library is a sorted tuple of non-negative ints (the
paper's standing assumption: "all items in the itemset are sorted according
to item number").  These helpers enforce that invariant and implement the
prefix tests both miners' candidate generation relies on.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Sequence

Itemset = tuple[int, ...]


def canonical(items: Iterable[int]) -> Itemset:
    """Sorted, duplicate-free tuple form of an itemset."""
    return tuple(sorted(set(int(i) for i in items)))


def is_canonical(items: Sequence[int]) -> bool:
    """True when ``items`` is already sorted and duplicate-free."""
    return all(items[i] < items[i + 1] for i in range(len(items) - 1))


def share_prefix(a: Itemset, b: Itemset) -> bool:
    """True when two equal-length itemsets agree on all but the last item.

    This is the join condition of both Apriori's candidate generation and
    Eclat's equivalence classes (Algorithm 2, line 5).
    """
    if len(a) != len(b) or not a:
        return False
    return a[:-1] == b[:-1]


def join(a: Itemset, b: Itemset) -> Itemset:
    """Join two prefix-sharing itemsets into their (k+1)-item child.

    The caller must ensure ``share_prefix(a, b)`` and ``a[-1] < b[-1]``.
    """
    return a + (b[-1],)


def subsets_of_size(items: Itemset, k: int) -> Iterator[Itemset]:
    """All size-``k`` subsets, in lexicographic order."""
    return combinations(items, k)


def proper_subsets(items: Itemset) -> Iterator[Itemset]:
    """All (k-1)-item subsets of a k-itemset (downward-closure check set)."""
    return combinations(items, len(items) - 1)


def is_subset(small: Itemset, big: Itemset) -> bool:
    """Subset test for canonical tuples (merge scan, O(|big|))."""
    it = iter(big)
    return all(any(x == y for y in it) for x in small)
