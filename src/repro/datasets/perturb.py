"""Database perturbation utilities: sampling, splitting, noise.

Robustness experiments need controlled variations of a database — "does
the diffset advantage survive 5% noise?", "is the speedup shape stable
under transaction sampling?".  All operations are deterministic given a
seed and preserve the item universe, so supports stay comparable.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import ConfigurationError


def sample_transactions(
    db: TransactionDatabase, fraction: float, seed: int = 0
) -> TransactionDatabase:
    """A uniform random sample of transactions (without replacement)."""
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError("fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    n_keep = max(1, int(round(db.n_transactions * fraction)))
    keep = np.sort(rng.choice(db.n_transactions, size=n_keep, replace=False))
    return TransactionDatabase(
        [db[int(t)].tolist() for t in keep],
        n_items=db.n_items,
        name=f"{db.name}-sample{fraction:g}",
    )


def split(
    db: TransactionDatabase, fraction: float, seed: int = 0
) -> tuple[TransactionDatabase, TransactionDatabase]:
    """Disjoint random split into (first, second) partitions.

    ``fraction`` is the share of transactions in the first partition.
    Useful for train/validate rule evaluation.
    """
    if not 0.0 < fraction < 1.0:
        raise ConfigurationError("fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(db.n_transactions)
    cut = max(1, int(round(db.n_transactions * fraction)))
    cut = min(cut, db.n_transactions - 1)
    first = np.sort(order[:cut])
    second = np.sort(order[cut:])
    return (
        TransactionDatabase(
            [db[int(t)].tolist() for t in first],
            n_items=db.n_items,
            name=f"{db.name}-a",
        ),
        TransactionDatabase(
            [db[int(t)].tolist() for t in second],
            n_items=db.n_items,
            name=f"{db.name}-b",
        ),
    )


def add_noise(
    db: TransactionDatabase,
    drop_probability: float = 0.0,
    insert_probability: float = 0.0,
    seed: int = 0,
) -> TransactionDatabase:
    """Item-level noise: drop each item occurrence and/or insert a random
    absent item per transaction with the given probabilities."""
    if not 0.0 <= drop_probability < 1.0:
        raise ConfigurationError("drop_probability must be in [0, 1)")
    if not 0.0 <= insert_probability < 1.0:
        raise ConfigurationError("insert_probability must be in [0, 1)")
    if db.n_items == 0:
        return db
    rng = np.random.default_rng(seed)
    transactions: list[list[int]] = []
    for t in db:
        items = t.tolist()
        if drop_probability:
            items = [i for i in items if rng.random() >= drop_probability]
        if insert_probability and rng.random() < insert_probability:
            candidate = int(rng.integers(0, db.n_items))
            if candidate not in items:
                items.append(candidate)
        transactions.append(items)
    return TransactionDatabase(
        transactions, n_items=db.n_items, name=f"{db.name}-noisy"
    )


def support_drift(
    original: TransactionDatabase, perturbed: TransactionDatabase
) -> float:
    """Mean absolute relative-support change per item (robustness metric)."""
    if original.n_items != perturbed.n_items:
        raise ConfigurationError("databases must share an item universe")
    if original.n_items == 0:
        return 0.0
    a = original.item_supports() / max(original.n_transactions, 1)
    b = perturbed.item_supports() / max(perturbed.n_transactions, 1)
    return float(np.abs(a - b).mean())
