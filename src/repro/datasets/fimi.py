"""Reader/writer for the FIMI repository text format.

The Frequent Itemset Mining Implementations repository (fimi.cs.helsinki.fi)
distributes every benchmark dataset (chess, mushroom, pumsb, ...) as plain
text: one transaction per line, items as whitespace-separated non-negative
integers.  This module parses and emits that format so the real files can be
dropped into the benchmark harness when available; the surrogates in
:mod:`repro.datasets.benchmark_suite` are used otherwise.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, TextIO

from repro.errors import DatasetError
from repro.datasets.transaction_db import TransactionDatabase


def parse_fimi(text: str, name: str = "fimi") -> TransactionDatabase:
    """Parse FIMI-format text into a :class:`TransactionDatabase`.

    Blank lines are treated as empty transactions (they count toward the
    transaction total, matching how the FIMI tools behave).  Anything that is
    not a non-negative integer raises :class:`DatasetError` with the line
    number.
    """
    return read_fimi(io.StringIO(text), name=name)


def read_fimi(source: TextIO | str | Path, name: str | None = None) -> TransactionDatabase:
    """Read a FIMI ``.dat`` file (path or open text handle)."""
    if isinstance(source, (str, Path)):
        path = Path(source)
        with path.open("r", encoding="ascii") as handle:
            return read_fimi(handle, name=name or path.stem)
    transactions: list[list[int]] = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            transactions.append([])
            continue
        try:
            items = [int(tok) for tok in line.split()]
        except ValueError as exc:
            raise DatasetError(f"line {lineno}: non-integer token ({exc})") from exc
        if any(i < 0 for i in items):
            raise DatasetError(f"line {lineno}: negative item id")
        transactions.append(items)
    # Trailing blank lines are an artifact of text files, not transactions.
    while transactions and not transactions[-1]:
        transactions.pop()
    return TransactionDatabase(transactions, name=name or "fimi")


def write_fimi(db: TransactionDatabase, target: TextIO | str | Path) -> None:
    """Write a database in FIMI format (round-trips with :func:`read_fimi`)."""
    if isinstance(target, (str, Path)):
        with Path(target).open("w", encoding="ascii") as handle:
            write_fimi(db, handle)
        return
    for transaction in db:
        target.write(" ".join(str(int(i)) for i in transaction))
        target.write("\n")


def dumps_fimi(db: TransactionDatabase) -> str:
    """FIMI text for a database (convenience wrapper over :func:`write_fimi`)."""
    buf = io.StringIO()
    write_fimi(db, buf)
    return buf.getvalue()


def load_any(paths: Iterable[str | Path]) -> list[TransactionDatabase]:
    """Load several FIMI files, skipping paths that do not exist."""
    out = []
    for p in paths:
        p = Path(p)
        if p.exists():
            out.append(read_fimi(p))
    return out
