"""Reader/writer for the FIMI repository text format.

The Frequent Itemset Mining Implementations repository (fimi.cs.helsinki.fi)
distributes every benchmark dataset (chess, mushroom, pumsb, ...) as plain
text: one transaction per line, items as whitespace-separated non-negative
integers.  This module parses and emits that format so the real files can be
dropped into the benchmark harness when available; the surrogates in
:mod:`repro.datasets.benchmark_suite` are used otherwise.

Real-world mirrors are not always clean ASCII: files arrive with a UTF-8
byte-order mark, or with stray high bytes from a re-encoding accident.  The
readers therefore decode **UTF-8, BOM-tolerant**, and every decode failure
is reported as a :class:`~repro.errors.DatasetError` carrying the line
number — never a bare ``UnicodeDecodeError``.  Paths are read in binary and
decoded line-by-line so the reported line number is exact.

:mod:`repro.datasets.streaming` builds on the same line-level primitives to
read files of any size in bounded memory; :func:`read_fimi` here is the
small-file convenience that materializes the whole database at once.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import IO, Iterable, Iterator, TextIO

from repro.errors import DatasetError
from repro.datasets.transaction_db import TransactionDatabase

#: The UTF-8 byte-order mark some FIMI mirrors prepend; tolerated (and
#: stripped) on the first line only, like ``encoding="utf-8-sig"``.
UTF8_BOM = b"\xef\xbb\xbf"


def decode_line(raw: bytes, lineno: int) -> str:
    """Decode one raw line as UTF-8, wrapping failures in DatasetError."""
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise DatasetError(
            f"line {lineno}: not valid UTF-8 "
            f"({exc.reason} at byte {exc.start})"
        ) from exc


def parse_items(line: str, lineno: int) -> list[int]:
    """Parse one stripped FIMI line into its item list (typed errors)."""
    try:
        items = [int(tok) for tok in line.split()]
    except ValueError as exc:
        raise DatasetError(f"line {lineno}: non-integer token ({exc})") from exc
    if any(i < 0 for i in items):
        raise DatasetError(f"line {lineno}: negative item id")
    return items


def iter_fimi_lines(source: IO) -> Iterator[tuple[int, str]]:
    """Yield ``(lineno, stripped_line)`` from a text or binary handle.

    Binary handles (how paths are opened here and in the streaming reader)
    are decoded line-by-line, so a bad byte is attributed to its exact
    line; a leading UTF-8 BOM is stripped.  Text handles were decoded by
    the caller's ``open()`` — a decode failure surfacing mid-iteration is
    still wrapped, attributed to the line being read when it fired.
    """
    iterator = iter(source)
    lineno = 0
    while True:
        lineno += 1
        try:
            line = next(iterator)
        except StopIteration:
            return
        except UnicodeDecodeError as exc:
            raise DatasetError(
                f"line {lineno}: not valid UTF-8 "
                f"({exc.reason} at byte {exc.start})"
            ) from exc
        if isinstance(line, bytes):
            if lineno == 1 and line.startswith(UTF8_BOM):
                line = line[len(UTF8_BOM):]
            line = decode_line(line, lineno)
        elif lineno == 1 and line.startswith("﻿"):
            line = line.lstrip("﻿")
        yield lineno, line.strip()


def iter_fimi_transactions(source: IO) -> Iterator[tuple[int, list[int]]]:
    """Yield ``(lineno, items)`` per transaction, in file order.

    Interior blank lines are yielded as empty transactions (they count
    toward the transaction total, matching the FIMI tools); **trailing**
    blank lines are an artifact of text files and are never yielded.
    Memory use is O(longest run of blank lines), not O(file).
    """
    pending_blanks: list[int] = []
    for lineno, line in iter_fimi_lines(source):
        if not line:
            pending_blanks.append(lineno)
            continue
        for blank_lineno in pending_blanks:
            yield blank_lineno, []
        pending_blanks.clear()
        yield lineno, parse_items(line, lineno)


def parse_fimi(text: str, name: str = "fimi") -> TransactionDatabase:
    """Parse FIMI-format text into a :class:`TransactionDatabase`.

    Blank lines are treated as empty transactions (they count toward the
    transaction total, matching how the FIMI tools behave).  Anything that is
    not a non-negative integer raises :class:`DatasetError` with the line
    number.
    """
    return read_fimi(io.StringIO(text), name=name)


def read_fimi(source: TextIO | str | Path, name: str | None = None) -> TransactionDatabase:
    """Read a FIMI ``.dat`` file (path or open text handle).

    Paths are read in binary and decoded UTF-8 (BOM-tolerant) line by
    line; malformed bytes raise :class:`DatasetError` naming the exact
    line, never a bare ``UnicodeDecodeError``.
    """
    if isinstance(source, (str, Path)):
        path = Path(source)
        with path.open("rb") as handle:
            return read_fimi(handle, name=name or path.stem)
    transactions = [items for _, items in iter_fimi_transactions(source)]
    return TransactionDatabase(transactions, name=name or "fimi")


def write_fimi(db: TransactionDatabase, target: TextIO | str | Path) -> None:
    """Write a database in FIMI format (round-trips with :func:`read_fimi`)."""
    if isinstance(target, (str, Path)):
        with Path(target).open("w", encoding="utf-8") as handle:
            write_fimi(db, handle)
        return
    for transaction in db:
        target.write(" ".join(str(int(i)) for i in transaction))
        target.write("\n")


def dumps_fimi(db: TransactionDatabase) -> str:
    """FIMI text for a database (convenience wrapper over :func:`write_fimi`)."""
    buf = io.StringIO()
    write_fimi(db, buf)
    return buf.getvalue()


def load_any(paths: Iterable[str | Path]) -> list[TransactionDatabase]:
    """Load several FIMI files, skipping paths that do not exist."""
    out = []
    for p in paths:
        p = Path(p)
        if p.exists():
            out.append(read_fimi(p))
    return out
