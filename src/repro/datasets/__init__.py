"""Transaction database substrate: containers, parsers, and generators."""

from repro.datasets.transaction_db import DatasetStats, TransactionDatabase
from repro.datasets.fimi import dumps_fimi, parse_fimi, read_fimi, write_fimi
from repro.datasets.streaming import (
    StreamStats,
    partition_chunk_size,
    scan_fimi,
    stream_fimi_chunks,
)
from repro.datasets.synthetic import (
    DenseAttributeGenerator,
    QuestGenerator,
    split_domains,
)
from repro.datasets.benchmark_suite import (
    PAPER_STATS,
    load_all_benchmark_datasets,
    load_benchmark_dataset,
    make_chess,
    make_mushroom,
    make_pumsb,
    make_pumsb_star,
)
from repro.datasets.perturb import (
    add_noise,
    sample_transactions,
    split,
    support_drift,
)
from repro.datasets.registry import (
    available_datasets,
    clear_cache,
    get_dataset,
    register_dataset,
)

__all__ = [
    "DatasetStats",
    "TransactionDatabase",
    "parse_fimi",
    "read_fimi",
    "write_fimi",
    "dumps_fimi",
    "StreamStats",
    "scan_fimi",
    "stream_fimi_chunks",
    "partition_chunk_size",
    "QuestGenerator",
    "DenseAttributeGenerator",
    "split_domains",
    "PAPER_STATS",
    "make_chess",
    "make_mushroom",
    "make_pumsb",
    "make_pumsb_star",
    "load_benchmark_dataset",
    "load_all_benchmark_datasets",
    "available_datasets",
    "sample_transactions",
    "split",
    "add_noise",
    "support_drift",
    "get_dataset",
    "register_dataset",
    "clear_cache",
]
