"""Bounded-memory streaming reader for FIMI transaction files.

:func:`repro.datasets.fimi.read_fimi` materializes the entire horizontal
database — one ``list`` of numpy arrays — which is exactly what out-of-core
mining cannot afford.  This module provides the streaming contract the SON
two-phase driver (:mod:`repro.outofcore`) is built on:

* :func:`scan_fimi` — one sequential pass that validates the whole file and
  returns :class:`StreamStats` (transaction count, universe size, token
  count, byte size, sha256) while holding only a single line in memory.
  The stats pin the *global* universe ``n_items`` so every later chunk is
  built against the same item-id space, and the sha256 lets the run ledger
  fingerprint a dataset it never fully loads.
* :func:`stream_fimi_chunks` — sequential :class:`TransactionDatabase`
  chunks of a caller-chosen transaction count.  Peak memory is one chunk,
  never the file.  Concatenating the chunks in order reproduces
  ``read_fimi(path)`` transaction-for-transaction (the property tests pin
  this), so any chunk-wise algorithm that is union/sum-decomposable gets
  bit-identical results to the in-memory path.

Both functions share :func:`repro.datasets.fimi.iter_fimi_transactions`,
so parse semantics (UTF-8 BOM tolerance, interior blank lines as empty
transactions, trailing blank lines dropped, ``DatasetError`` with line
numbers) are identical to the in-memory reader by construction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.errors import DatasetError
from repro.datasets.fimi import iter_fimi_transactions
from repro.datasets.transaction_db import TransactionDatabase


@dataclass(frozen=True)
class StreamStats:
    """What one validating scan learns about a FIMI file.

    ``total_items`` counts raw tokens (before per-transaction dedup), so
    ``4 * total_items`` bounds the horizontal in-memory item payload.
    ``sha256`` hashes the raw file bytes — the fingerprint for ledger
    records of runs that never hold the full database.
    """

    path: str
    n_transactions: int
    n_items: int
    total_items: int
    file_bytes: int
    sha256: str

    @property
    def avg_length(self) -> float:
        if self.n_transactions == 0:
            return 0.0
        return self.total_items / self.n_transactions

    def fingerprint(self) -> dict:
        """Ledger-ready dataset fingerprint (mirrors fingerprint_database)."""
        return {
            "name": Path(self.path).stem,
            "n_transactions": self.n_transactions,
            "n_items": self.n_items,
            "avg_length": round(self.avg_length, 6),
            "sha256": self.sha256,
            "file_bytes": self.file_bytes,
        }


def scan_fimi(path: str | Path) -> StreamStats:
    """Validate a FIMI file in one bounded-memory pass and return its stats.

    Raises :class:`DatasetError` (with the line number) on the first
    malformed line, exactly like :func:`read_fimi` would — a file that
    scans clean is guaranteed to stream clean.
    """
    path = Path(path)
    hasher = hashlib.sha256()
    file_bytes = 0
    n_transactions = 0
    max_item = -1
    total_items = 0
    with path.open("rb") as handle:

        def hashed_lines() -> Iterator[bytes]:
            nonlocal file_bytes
            for raw in handle:
                hasher.update(raw)
                file_bytes += len(raw)
                yield raw

        for _, items in iter_fimi_transactions(hashed_lines()):
            n_transactions += 1
            total_items += len(items)
            if items:
                largest = max(items)
                if largest > max_item:
                    max_item = largest
    return StreamStats(
        path=str(path),
        n_transactions=n_transactions,
        n_items=max_item + 1,
        total_items=total_items,
        file_bytes=file_bytes,
        sha256=hasher.hexdigest(),
    )


def stream_fimi_chunks(
    path: str | Path,
    chunk_transactions: int,
    *,
    n_items: int | None = None,
    name: str | None = None,
) -> Iterator[TransactionDatabase]:
    """Yield a FIMI file as sequential ``TransactionDatabase`` chunks.

    Every chunk holds at most ``chunk_transactions`` transactions; only the
    final chunk may be smaller, and an empty file yields nothing.  Pass the
    global universe size from :func:`scan_fimi` as ``n_items`` so item ids
    index identically across chunks (required by the packed-bitvector
    counting kernels) — without it each chunk would infer its own, smaller
    universe from the items it happens to contain.
    """
    if chunk_transactions <= 0:
        raise DatasetError(
            f"chunk_transactions must be positive, got {chunk_transactions}"
        )
    path = Path(path)
    base = name or path.stem
    with path.open("rb") as handle:
        buffered: list[list[int]] = []
        index = 0
        for _, items in iter_fimi_transactions(handle):
            buffered.append(items)
            if len(buffered) >= chunk_transactions:
                yield TransactionDatabase(
                    buffered, n_items=n_items, name=f"{base}[chunk{index}]"
                )
                index += 1
                buffered = []
        if buffered:
            yield TransactionDatabase(
                buffered, n_items=n_items, name=f"{base}[chunk{index}]"
            )


def partition_chunk_size(n_transactions: int, n_partitions: int) -> int:
    """Chunk size that splits ``n_transactions`` into ``n_partitions`` pieces.

    Ceil division: the first ``n_partitions - 1`` chunks are equal and the
    last takes the remainder, so :func:`stream_fimi_chunks` yields exactly
    ``min(n_partitions, n_transactions)`` non-empty chunks.
    """
    if n_partitions <= 0:
        raise DatasetError(f"n_partitions must be positive, got {n_partitions}")
    if n_transactions <= 0:
        return 1
    return -(-n_transactions // n_partitions)
