"""Synthetic transaction data generators.

Two families are provided:

* :class:`QuestGenerator` — a from-scratch implementation of the IBM Quest
  market-basket generator (Agrawal & Srikant, VLDB'94) that produced the
  classic ``T..I..D..`` datasets such as T40I10D100K, which the paper tested
  and found non-scalable once the thread count exceeds the number of
  (frequent) items.

* :class:`DenseAttributeGenerator` — a dense, attribute-valued generator used
  to build surrogates for the UCI-derived FIMI datasets (chess, mushroom,
  pumsb, pumsb_star).  Those datasets are discretized attribute tables: every
  transaction has exactly one item per attribute, so the average transaction
  length equals the attribute count and the data is extremely dense — the
  regime where diffsets shine.  The generator models inter-attribute
  correlation through latent classes so that large frequent itemsets exist.

Both generators are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.datasets.transaction_db import TransactionDatabase


# ---------------------------------------------------------------------------
# IBM Quest-style generator
# ---------------------------------------------------------------------------


@dataclass
class QuestGenerator:
    """IBM Quest-style synthetic basket generator.

    Parameters mirror the classic naming: a dataset ``T{t}I{i}D{d}`` has
    average transaction length ``t``, average potentially-frequent-pattern
    length ``i`` and ``d`` transactions.

    Attributes
    ----------
    n_items:
        Universe size ``N``.
    avg_transaction_length:
        ``T`` — mean of the Poisson transaction length.
    avg_pattern_length:
        ``I`` — mean of the Poisson pattern length.
    n_patterns:
        ``L`` — size of the pool of potentially frequent itemsets.
    correlation:
        Fraction of each pattern's items drawn from the previous pattern
        (Quest default 0.5); creates overlapping patterns.
    mean_corruption:
        Mean of the per-pattern corruption level (Quest default 0.5): items
        are dropped from a pattern instance while a uniform draw stays below
        the level, making patterns appear partially.
    seed:
        RNG seed; the generator is fully deterministic.
    """

    n_items: int = 1000
    avg_transaction_length: float = 10.0
    avg_pattern_length: float = 4.0
    n_patterns: int = 200
    correlation: float = 0.5
    mean_corruption: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_items <= 0:
            raise ConfigurationError("n_items must be positive")
        if self.avg_transaction_length <= 0 or self.avg_pattern_length <= 0:
            raise ConfigurationError("average lengths must be positive")
        if not 0.0 <= self.correlation <= 1.0:
            raise ConfigurationError("correlation must be in [0, 1]")

    def _build_pattern_pool(
        self, rng: np.random.Generator
    ) -> tuple[list[np.ndarray], np.ndarray, np.ndarray]:
        """The pool of potentially frequent itemsets with weights and
        corruption levels."""
        # Item popularity is skewed (Zipf-like) as in Quest.
        ranks = np.arange(1, self.n_items + 1, dtype=np.float64)
        popularity = 1.0 / ranks
        popularity /= popularity.sum()

        patterns: list[np.ndarray] = []
        previous: np.ndarray | None = None
        for _ in range(self.n_patterns):
            size = max(1, int(rng.poisson(self.avg_pattern_length)))
            size = min(size, self.n_items)
            chosen: set[int] = set()
            if previous is not None and previous.size:
                n_carry = int(round(self.correlation * min(size, previous.size)))
                if n_carry:
                    carry = rng.choice(previous, size=n_carry, replace=False)
                    chosen.update(int(c) for c in carry)
            while len(chosen) < size:
                chosen.add(int(rng.choice(self.n_items, p=popularity)))
            pattern = np.asarray(sorted(chosen), dtype=np.int64)
            patterns.append(pattern)
            previous = pattern

        weights = rng.exponential(scale=1.0, size=self.n_patterns)
        weights /= weights.sum()
        corruption = np.clip(
            rng.normal(self.mean_corruption, 0.1, size=self.n_patterns), 0.0, 0.95
        )
        return patterns, weights, corruption

    def generate(self, n_transactions: int, name: str | None = None) -> TransactionDatabase:
        """Generate ``n_transactions`` baskets."""
        if n_transactions < 0:
            raise ConfigurationError("n_transactions must be non-negative")
        rng = np.random.default_rng(self.seed)
        patterns, weights, corruption = self._build_pattern_pool(rng)

        transactions: list[list[int]] = []
        for _ in range(n_transactions):
            target_len = max(1, int(rng.poisson(self.avg_transaction_length)))
            basket: set[int] = set()
            # Fill the basket from weighted patterns until the target length
            # is reached; oversized final patterns are kept half the time
            # (the Quest rule).
            guard = 0
            while len(basket) < target_len and guard < 64:
                guard += 1
                idx = int(rng.choice(self.n_patterns, p=weights))
                pattern = patterns[idx]
                level = corruption[idx]
                kept = pattern[rng.random(pattern.size) >= level]
                if kept.size == 0:
                    continue
                if len(basket) + kept.size > target_len and basket:
                    if rng.random() < 0.5:
                        break
                basket.update(int(i) for i in kept)
            transactions.append(sorted(basket))

        label = name or (
            f"T{int(self.avg_transaction_length)}"
            f"I{int(self.avg_pattern_length)}"
            f"D{n_transactions}"
        )
        return TransactionDatabase(transactions, n_items=self.n_items, name=label)


# ---------------------------------------------------------------------------
# Dense attribute-valued generator (UCI surrogate substrate)
# ---------------------------------------------------------------------------


@dataclass
class DenseAttributeGenerator:
    """Dense attribute-table generator.

    Models a discretized relational table: ``n_attributes`` columns, column
    ``j`` having ``domain_sizes[j]`` possible values.  Every row (transaction)
    contains exactly one item per column, so the transaction length is the
    attribute count, as in chess/mushroom/pumsb.

    Correlation is induced by ``n_classes`` latent classes: each class has a
    preferred value per attribute, picked with probability ``peak``; the
    remaining mass is spread over the domain with a Zipf profile.  Dense
    frequent itemsets then arise from class-consistent value combinations —
    the same mechanism that makes the UCI datasets pathologically dense for
    tidset-based miners.

    Attributes
    ----------
    domain_sizes:
        Per-attribute domain cardinality.  Item ids are allocated
        contiguously per attribute.
    n_classes:
        Number of latent classes.
    peak:
        Probability that an attribute takes its class-preferred value.
    zipf_s:
        Zipf exponent for the non-preferred mass.
    n_shared_attributes:
        The first this-many attributes are *shared*: they take one
        class-independent dominant value with a per-attribute probability
        drawn from a linear ladder between ``shared_peak`` (first
        attribute) and ``shared_floor`` (last).  Deviations are independent
        and rare at the top of the ladder, so itemsets over the dominant
        values lose only a sliver of support per added item — the property
        of real census/endgame tables that makes deep diffsets orders of
        magnitude smaller than the corresponding tidsets.  pumsb_star is
        produced by stripping the >= 80%-support items this creates.
    shared_peak / shared_floor:
        Top and bottom of the dominance ladder.
    seed:
        RNG seed.
    """

    domain_sizes: tuple[int, ...] = (2, 2, 2)
    n_classes: int = 2
    peak: float = 0.7
    zipf_s: float = 1.2
    n_shared_attributes: int = 0
    shared_peak: float = 0.95
    shared_floor: float = 0.74
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.domain_sizes or any(d <= 0 for d in self.domain_sizes):
            raise ConfigurationError("domain_sizes must be positive")
        if self.n_classes <= 0:
            raise ConfigurationError("n_classes must be positive")
        if not 0.0 <= self.peak < 1.0:
            raise ConfigurationError("peak must be in [0, 1)")
        if not 0 <= self.n_shared_attributes <= len(self.domain_sizes):
            raise ConfigurationError(
                "n_shared_attributes must be within the attribute count"
            )
        if not 0.0 <= self.shared_peak < 1.0:
            raise ConfigurationError("shared_peak must be in [0, 1)")
        if not 0.0 <= self.shared_floor <= self.shared_peak:
            raise ConfigurationError(
                "shared_floor must be in [0, shared_peak]"
            )

    @property
    def n_attributes(self) -> int:
        return len(self.domain_sizes)

    @property
    def n_items(self) -> int:
        return int(sum(self.domain_sizes))

    def _item_offsets(self) -> np.ndarray:
        return np.concatenate([[0], np.cumsum(self.domain_sizes)[:-1]]).astype(np.int64)

    def generate(self, n_transactions: int, name: str = "dense") -> TransactionDatabase:
        """Generate ``n_transactions`` rows."""
        if n_transactions < 0:
            raise ConfigurationError("n_transactions must be non-negative")
        rng = np.random.default_rng(self.seed)
        offsets = self._item_offsets()

        # Class priors: mildly skewed so some classes dominate (creates very
        # frequent value combinations, as in chess endgame tables).
        priors = rng.dirichlet(np.full(self.n_classes, 2.0))

        # Preferred value per (class, attribute) and base Zipf profile per
        # attribute.
        preferred = [
            rng.integers(0, d, size=self.n_classes) for d in self.domain_sizes
        ]
        zipf_profiles = []
        for d in self.domain_sizes:
            ranks = np.arange(1, d + 1, dtype=np.float64)
            profile = ranks ** (-self.zipf_s)
            profile /= profile.sum()
            zipf_profiles.append(profile)

        classes = rng.choice(self.n_classes, size=n_transactions, p=priors)
        # Dominance ladder for the shared attributes: attribute j keeps its
        # dominant value with probability descending from shared_peak to
        # shared_floor, deviations independent across attributes and rows.
        n_shared = self.n_shared_attributes
        if n_shared > 1:
            # Concave descent: most shared attributes sit near the peak
            # (real census tables have many near-constant columns), with a
            # short tail down to the floor.
            frac = np.linspace(0.0, 1.0, n_shared)
            ladder = self.shared_floor + (self.shared_peak - self.shared_floor) * np.sqrt(
                1.0 - frac
            )
        else:
            ladder = np.full(n_shared, self.shared_peak)
        columns: list[np.ndarray] = []
        for j, d in enumerate(self.domain_sizes):
            zipf_vals = rng.choice(d, size=n_transactions, p=zipf_profiles[j])
            if j < n_shared:
                dominant = int(rng.integers(0, d))
                keep = rng.random(n_transactions) < ladder[j]
                values = np.where(keep, dominant, zipf_vals)
            else:
                class_vals = preferred[j][classes]
                use_peak = rng.random(n_transactions) < self.peak
                values = np.where(use_peak, class_vals, zipf_vals)
            columns.append(values + offsets[j])
        matrix = np.stack(columns, axis=1).astype(np.int32)

        # Rows are strictly increasing by construction (one value per
        # attribute, contiguous id ranges), so the canonical fast path holds.
        return TransactionDatabase(
            list(matrix), n_items=self.n_items, name=name, assume_canonical=True
        )


def split_domains(n_attributes: int, n_items: int, seed: int = 0) -> tuple[int, ...]:
    """Partition ``n_items`` values across ``n_attributes`` domains.

    Used by the benchmark-suite surrogates to hit an exact Table I item
    count: every attribute gets at least two values and the remainder is
    spread deterministically.
    """
    if n_attributes <= 0:
        raise ConfigurationError("n_attributes must be positive")
    if n_items < 2 * n_attributes:
        raise ConfigurationError("need at least two values per attribute")
    base = n_items // n_attributes
    extra = n_items - base * n_attributes
    rng = np.random.default_rng(seed)
    sizes = np.full(n_attributes, base, dtype=np.int64)
    bump = rng.choice(n_attributes, size=extra, replace=False)
    sizes[bump] += 1
    return tuple(int(s) for s in sizes)
