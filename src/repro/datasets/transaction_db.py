"""Horizontal transaction database container.

This is the substrate every miner and every vertical representation is built
from.  A :class:`TransactionDatabase` stores one sorted, duplicate-free
``numpy`` item array per transaction (the paper's "horizontal format",
Figure 1a) and exposes the dataset statistics the paper summarizes in
Table I (item count, average transaction length, transaction count, size).

Items are dense non-negative integers.  The *universe size* ``n_items`` is
``max(item) + 1`` unless a larger universe is given explicitly (a dataset may
legitimately never use some item ids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import DatasetError

ITEM_DTYPE = np.int32
TID_DTYPE = np.int64


@dataclass(frozen=True)
class DatasetStats:
    """The Table I summary row for one dataset."""

    name: str
    n_items: int
    avg_length: float
    n_transactions: int
    size_bytes: int
    density: float

    def row(self) -> tuple[str, int, float, int, str]:
        """Return the row exactly as Table I lays it out."""
        return (
            self.name,
            self.n_items,
            round(self.avg_length, 2),
            self.n_transactions,
            _human_size(self.size_bytes),
        )


def _human_size(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}M"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.0f}K"
    return f"{n}B"


def _normalize_transaction(raw: Iterable[int]) -> np.ndarray:
    arr = np.asarray(sorted(set(int(i) for i in raw)), dtype=ITEM_DTYPE)
    if arr.size and arr[0] < 0:
        raise DatasetError(f"negative item id {arr[0]} in transaction")
    return arr


class TransactionDatabase:
    """An immutable horizontal transaction database.

    Parameters
    ----------
    transactions:
        Iterable of item iterables.  Each transaction is deduplicated and
        sorted; empty transactions are kept (they contribute to the
        transaction count but to no support).
    n_items:
        Optional universe size.  Must be strictly greater than the largest
        item id present.
    name:
        Optional label used in tables and reprs.
    """

    __slots__ = ("_transactions", "_n_items", "_name", "_item_supports")

    def __init__(
        self,
        transactions: Iterable[Iterable[int]],
        n_items: int | None = None,
        name: str = "unnamed",
        assume_canonical: bool = False,
    ) -> None:
        if assume_canonical:
            # Fast path for generators that already emit sorted, unique,
            # non-negative int32 rows (they are responsible for the claim).
            txs = [np.asarray(t, dtype=ITEM_DTYPE) for t in transactions]
        else:
            txs = [_normalize_transaction(t) for t in transactions]
        max_item = max((int(t[-1]) for t in txs if t.size), default=-1)
        if n_items is None:
            n_items = max_item + 1
        elif n_items <= max_item:
            raise DatasetError(
                f"n_items={n_items} but item {max_item} appears in the data"
            )
        self._transactions: list[np.ndarray] = txs
        self._n_items = int(n_items)
        self._name = name
        self._item_supports: np.ndarray | None = None

    # -- construction -----------------------------------------------------

    @classmethod
    def from_lists(
        cls,
        transactions: Sequence[Sequence[int]],
        n_items: int | None = None,
        name: str = "unnamed",
    ) -> "TransactionDatabase":
        """Build a database from plain Python lists (test-friendly)."""
        return cls(transactions, n_items=n_items, name=name)

    # -- basic accessors ---------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def n_items(self) -> int:
        """Universe size (largest item id + 1, or the explicit override)."""
        return self._n_items

    @property
    def n_transactions(self) -> int:
        return len(self._transactions)

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._transactions)

    def __getitem__(self, tid: int) -> np.ndarray:
        return self._transactions[tid]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransactionDatabase(name={self._name!r}, "
            f"n_transactions={self.n_transactions}, n_items={self.n_items})"
        )

    # -- statistics --------------------------------------------------------

    @property
    def avg_length(self) -> float:
        if not self._transactions:
            return 0.0
        return sum(t.size for t in self._transactions) / len(self._transactions)

    @property
    def density(self) -> float:
        """Fraction of the item-transaction matrix that is set."""
        if self._n_items == 0 or not self._transactions:
            return 0.0
        return self.avg_length / self._n_items

    def item_supports(self) -> np.ndarray:
        """Absolute support of each item id (length ``n_items``), cached."""
        if self._item_supports is None:
            counts = np.zeros(self._n_items, dtype=TID_DTYPE)
            for t in self._transactions:
                counts[t] += 1
            self._item_supports = counts
        return self._item_supports

    def size_bytes(self) -> int:
        """Approximate on-disk size in FIMI text format.

        Each item costs its decimal digits plus a separator; each transaction
        a newline.  This mirrors how the paper quotes dataset sizes.
        """
        total = 0
        for t in self._transactions:
            if t.size:
                # digits of each item + one separator per item (space/newline)
                total += int(np.char.str_len(t.astype("U")).sum()) + t.size
            else:
                total += 1
        return total

    def stats(self) -> DatasetStats:
        """Table I row for this database."""
        return DatasetStats(
            name=self._name,
            n_items=self._n_items,
            avg_length=self.avg_length,
            n_transactions=self.n_transactions,
            size_bytes=self.size_bytes(),
            density=self.density,
        )

    # -- vertical views ----------------------------------------------------

    def tidlists(self) -> list[np.ndarray]:
        """Vertical tidset view: one sorted tid array per item id.

        This is the Figure 1(b) transformation and the entry point for every
        vertical representation.  Implemented as one grouped sort over the
        flattened (item, tid) pairs — the Python-loop version is an order of
        magnitude slower on census-scale data.
        """
        if not self._transactions:
            return [np.empty(0, dtype=TID_DTYPE) for _ in range(self._n_items)]
        lengths = np.asarray([t.size for t in self._transactions], dtype=np.int64)
        items = np.concatenate(
            [t for t in self._transactions if t.size]
            or [np.empty(0, dtype=ITEM_DTYPE)]
        ).astype(np.int64)
        tids = np.repeat(np.arange(len(self._transactions), dtype=TID_DTYPE), lengths)
        # Stable sort by item keeps tids ascending inside each bucket.
        order = np.argsort(items, kind="stable")
        items_sorted = items[order]
        tids_sorted = tids[order]
        boundaries = np.searchsorted(items_sorted, np.arange(self._n_items + 1))
        return [
            tids_sorted[boundaries[i] : boundaries[i + 1]]
            for i in range(self._n_items)
        ]

    def support_of(self, itemset: Sequence[int]) -> int:
        """Direct (scan-based) support count; O(DB) — used as a test oracle."""
        items = _normalize_transaction(itemset)
        if items.size == 0:
            return self.n_transactions
        count = 0
        for t in self._transactions:
            if np.isin(items, t, assume_unique=True).all():
                count += 1
        return count

    # -- transforms ----------------------------------------------------------

    def without_items(self, items: Iterable[int]) -> "TransactionDatabase":
        """A new database with the given item ids removed from every
        transaction (universe size preserved)."""
        drop = set(int(i) for i in items)
        txs = [[i for i in t.tolist() if i not in drop] for t in self._transactions]
        return TransactionDatabase(txs, n_items=self._n_items, name=self._name)

    def frequency_capped(self, max_relative_support: float) -> "TransactionDatabase":
        """Drop every item whose relative support is >= the cap.

        This is exactly how pumsb_star was derived from pumsb (no item with
        support of 80% or more).
        """
        if not 0.0 < max_relative_support <= 1.0:
            raise DatasetError("max_relative_support must be in (0, 1]")
        threshold = max_relative_support * self.n_transactions
        too_frequent = np.nonzero(self.item_supports() >= threshold)[0]
        return self.without_items(too_frequent.tolist())

    def head(self, n: int) -> "TransactionDatabase":
        """The first ``n`` transactions (used to scale surrogates down)."""
        return TransactionDatabase(
            [t.tolist() for t in self._transactions[:n]],
            n_items=self._n_items,
            name=self._name,
        )
