"""Named dataset registry.

A single lookup point for everything the benchmarks and examples load:
the four Table I surrogates plus the Quest-style sparse datasets the paper
mentions in passing (T40I10D100K-style, ``accidents``-style).  Entries are
constructed lazily and cached, because the pumsb surrogates are not free to
build.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets import benchmark_suite
from repro.datasets.synthetic import QuestGenerator
from repro.datasets.transaction_db import TransactionDatabase

_CACHE: dict[str, TransactionDatabase] = {}


def _quest_t10(scale: int = 2_000) -> TransactionDatabase:
    """A T10I4-style sparse basket dataset (scaled from D100K)."""
    gen = QuestGenerator(
        n_items=500, avg_transaction_length=10, avg_pattern_length=4, seed=101
    )
    return gen.generate(scale, name="T10I4")


def _accidents(scale: int = 5_000) -> TransactionDatabase:
    """An accidents-style dense surrogate (scaled from 340,183 rows).

    The FIMI accidents dataset (Belgian traffic accident records) has 468
    items and ~33.8 items per row; like the Quest data, the paper found it
    does not scale once threads outnumber its (frequent) items.
    """
    from repro.datasets.synthetic import DenseAttributeGenerator, split_domains

    gen = DenseAttributeGenerator(
        domain_sizes=split_domains(34, 468, seed=303),
        n_classes=3,
        peak=0.75,
        zipf_s=1.2,
        n_shared_attributes=8,
        shared_peak=0.95,
        shared_floor=0.8,
        seed=303,
    )
    return gen.generate(scale, name="accidents")


def _quest_t40(scale: int = 1_000) -> TransactionDatabase:
    """A T40I10-style sparse basket dataset (scaled from D100K).

    The paper reports this family does not scale once threads outnumber the
    (frequent) items, which experiment E7 reproduces.
    """
    gen = QuestGenerator(
        n_items=400, avg_transaction_length=40, avg_pattern_length=10, seed=202
    )
    return gen.generate(scale, name="T40I10")


_BUILDERS: dict[str, Callable[[], TransactionDatabase]] = {
    "chess": benchmark_suite.make_chess,
    "mushroom": benchmark_suite.make_mushroom,
    "pumsb": benchmark_suite.make_pumsb,
    "pumsb_star": benchmark_suite.make_pumsb_star,
    "T10I4": _quest_t10,
    "T40I10": _quest_t40,
    "accidents": _accidents,
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`get_dataset`."""
    return sorted(_BUILDERS)


def get_dataset(name: str, refresh: bool = False) -> TransactionDatabase:
    """Load a registered dataset by name (cached across calls)."""
    if name not in _BUILDERS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        )
    if refresh or name not in _CACHE:
        _CACHE[name] = _BUILDERS[name]()
    return _CACHE[name]


def register_dataset(name: str, builder: Callable[[], TransactionDatabase]) -> None:
    """Register a custom dataset builder (overwrites any existing name)."""
    _BUILDERS[name] = builder
    _CACHE.pop(name, None)


def clear_cache() -> None:
    """Drop all cached datasets (tests use this to control memory)."""
    _CACHE.clear()
