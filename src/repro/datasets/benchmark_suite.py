"""Surrogates for the four FIMI benchmark datasets of Table I.

The paper evaluates on chess, mushroom, pumsb, and pumsb_star from the FIMI
repository.  Those exact files are UCI-derived and not redistributable here,
so this module builds *surrogates* with the same structural character:

* every dataset is a dense discretized attribute table (one item per
  attribute per transaction, hence avg length == attribute count);
* item counts and attribute counts match Table I;
* transaction counts match Table I (the pumsb pair is generated at the
  full 49,046 rows so that bitvector widths and diffset/tidset size ratios
  keep their real proportions);
* pumsb_star is derived from pumsb exactly as the original was: by removing
  every item with relative support >= 80%.

If you have the real FIMI files, load them with
:func:`repro.datasets.fimi.read_fimi` and pass them to the same harnesses;
every miner and benchmark works on either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets.synthetic import DenseAttributeGenerator, split_domains
from repro.datasets.transaction_db import TransactionDatabase


@dataclass(frozen=True)
class PaperDatasetInfo:
    """Table I as printed in the paper, plus our scaling factor."""

    name: str
    n_items: int
    avg_length: float
    n_transactions: int
    size_label: str
    surrogate_transactions: int


PAPER_STATS: dict[str, PaperDatasetInfo] = {
    "chess": PaperDatasetInfo("chess", 75, 37.0, 3_196, "334K", 3_196),
    "mushroom": PaperDatasetInfo("mushroom", 119, 23.0, 8_124, "557K", 8_124),
    "pumsb": PaperDatasetInfo("pumsb", 2_113, 74.0, 49_046, "16.3M", 49_046),
    "pumsb_star": PaperDatasetInfo("pumsb_star", 2_088, 50.5, 49_046, "11.0M", 49_046),
}


def make_chess(n_transactions: int | None = None, seed: int = 11) -> TransactionDatabase:
    """Chess surrogate: 37 attributes over 75 items, 3,196 rows.

    The original is the UCI king-rook-vs-king-pawn endgame table — mostly
    binary attributes, extremely dense, long frequent itemsets even at high
    support.  A small latent-class count and a high peak reproduce that.
    """
    info = PAPER_STATS["chess"]
    gen = DenseAttributeGenerator(
        domain_sizes=split_domains(37, info.n_items, seed=seed),
        n_classes=2,
        peak=0.82,
        zipf_s=1.0,
        n_shared_attributes=12,
        shared_peak=0.975,
        shared_floor=0.78,
        seed=seed,
    )
    return gen.generate(n_transactions or info.surrogate_transactions, name="chess")


def make_mushroom(n_transactions: int | None = None, seed: int = 23) -> TransactionDatabase:
    """Mushroom surrogate: 23 attributes over 119 items, 8,124 rows.

    The original describes mushroom species by 22 nominal attributes plus the
    edible/poisonous class; moderately dense with a handful of dominant
    values per attribute.
    """
    info = PAPER_STATS["mushroom"]
    gen = DenseAttributeGenerator(
        domain_sizes=split_domains(23, info.n_items, seed=seed),
        n_classes=4,
        peak=0.72,
        zipf_s=1.1,
        n_shared_attributes=12,
        shared_peak=0.99,
        shared_floor=0.72,
        seed=seed,
    )
    return gen.generate(n_transactions or info.surrogate_transactions, name="mushroom")


def make_pumsb(n_transactions: int | None = None, seed: int = 47) -> TransactionDatabase:
    """Pumsb surrogate: 74 attributes over 2,113 items, 49,046 rows.

    PUMS census data: many attributes with large domains, several of which
    are dominated by one value with >= 80% support (which is precisely what
    pumsb_star strips out).
    """
    info = PAPER_STATS["pumsb"]
    gen = DenseAttributeGenerator(
        domain_sizes=split_domains(74, info.n_items, seed=seed),
        n_classes=3,
        peak=0.86,
        zipf_s=1.3,
        n_shared_attributes=28,
        shared_peak=0.995,
        shared_floor=0.74,
        seed=seed,
    )
    return gen.generate(n_transactions or info.surrogate_transactions, name="pumsb")


def make_pumsb_star(
    n_transactions: int | None = None, seed: int = 47
) -> TransactionDatabase:
    """Pumsb_star surrogate: pumsb with every >= 80%-support item removed.

    Derived from :func:`make_pumsb` by the same restriction the original
    dataset applied, so the transaction count matches pumsb and the average
    length drops below the attribute count.
    """
    base = make_pumsb(n_transactions=n_transactions, seed=seed)
    star = base.frequency_capped(0.80)
    return TransactionDatabase(
        [t.tolist() for t in star], n_items=star.n_items, name="pumsb_star"
    )


DATASET_BUILDERS: dict[str, Callable[[], TransactionDatabase]] = {
    "chess": make_chess,
    "mushroom": make_mushroom,
    "pumsb": make_pumsb,
    "pumsb_star": make_pumsb_star,
}


def load_benchmark_dataset(name: str) -> TransactionDatabase:
    """Load one of the four Table I surrogates by name."""
    try:
        return DATASET_BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown benchmark dataset {name!r}; "
            f"choose from {sorted(DATASET_BUILDERS)}"
        ) from None


def load_all_benchmark_datasets() -> dict[str, TransactionDatabase]:
    """All four Table I surrogates, keyed by name."""
    return {name: builder() for name, builder in DATASET_BUILDERS.items()}
