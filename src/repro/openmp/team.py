"""Thread team: topology + cost model + parallel-region composition.

:class:`ThreadTeam` is the object the instrumented parallel miners talk to.
It bundles the NUMA layout of ``n_threads`` pinned threads with the machine
cost model, and composes one *parallel region's* simulated time from its
three bottlenecks:

``region = max(schedule makespan, busiest-link serialization) + fork/join``

The max-composition expresses that compute/dispatch and interconnect
transfer pipeline against each other — the region cannot finish before the
slowest thread is done, nor before the busiest blade link has moved its
bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine.blacklight import BLACKLIGHT, MachineSpec
from repro.machine.cost_model import CostModel
from repro.machine.topology import NumaTopology
from repro.openmp.schedule import ScheduleSpec
from repro.openmp.simulator import ParallelForOutcome, simulate_parallel_for


@dataclass
class RegionResult:
    """Simulated time of one parallel region, with its breakdown."""

    time: float
    makespan: float
    link_bound: float
    fork_join: float
    outcome: ParallelForOutcome

    @property
    def link_limited(self) -> bool:
        """True when the interconnect, not compute, set the region's pace."""
        return self.link_bound > self.makespan


@dataclass
class ThreadTeam:
    """``n_threads`` pinned threads on a machine."""

    n_threads: int
    machine: MachineSpec = BLACKLIGHT
    topology: NumaTopology = field(init=False)
    cost_model: CostModel = field(init=False)

    def __post_init__(self) -> None:
        self.topology = NumaTopology(
            n_threads=self.n_threads, cores_per_blade=self.machine.cores_per_blade
        )
        self.cost_model = CostModel(self.machine)

    def run_region(
        self,
        durations: np.ndarray,
        schedule: ScheduleSpec,
        per_blade_link_bytes: np.ndarray | None = None,
        total_remote_bytes: float = 0.0,
        collect_events: bool = False,
        sink=None,
        region: str = "region",
        ts_offset: float = 0.0,
    ) -> RegionResult:
        """Simulate one parallel-for over the given per-iteration durations.

        ``sink``/``region``/``ts_offset`` forward the chunk trace to an
        observability sink (see :func:`simulate_parallel_for`); the trace
        pid is the team's thread count.
        """
        outcome = simulate_parallel_for(
            durations,
            self.n_threads,
            schedule,
            machine=self.machine,
            collect_events=collect_events,
            sink=sink,
            region=region,
            pid=self.n_threads,
            ts_offset=ts_offset,
        )
        link_bound = (
            self.cost_model.link_serialization_time(per_blade_link_bytes)
            if per_blade_link_bytes is not None
            else 0.0
        )
        link_bound = max(
            link_bound, self.cost_model.bisection_time(total_remote_bytes)
        )
        fork_join = self.cost_model.fork_join_time(self.n_threads)
        time = max(outcome.makespan, link_bound) + fork_join
        return RegionResult(
            time=time,
            makespan=outcome.makespan,
            link_bound=link_bound,
            fork_join=fork_join,
            outcome=outcome,
        )

    def reader_blades(self, iteration_thread: np.ndarray) -> np.ndarray:
        """Blade on which each iteration executed."""
        return np.asarray(
            self.topology.blade_of_thread(iteration_thread), dtype=np.int64
        )
