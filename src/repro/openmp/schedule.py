"""OpenMP 3.0 loop-schedule semantics: static, dynamic, guided, worksteal.

The paper's implementations hang everything on the OpenMP scheduler:
parallel Apriori uses ``schedule(static)`` (Section III — "the static
scheduling can partition the workload as there [are] enough iterations"),
parallel Eclat uses ``schedule(dynamic, 1)`` (Section IV — "we choose the
chunksize to as small as possible ... so that the load imbalance can be
minimized").  This module reproduces how each schedule carves an iteration
space into chunks and, for static, which thread owns each chunk.

``worksteal`` is our extension beyond OpenMP 3.0 (after Kambadur et al.,
*Extending Task Parallelism for Frequent Pattern Mining*): iterations
become stealable tasks on per-thread deques instead of chunks pulled from
one contended queue.  It shares the :class:`ScheduleSpec` syntax so the
backends and the simulator can select it exactly like the standard kinds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.errors import ConfigurationError

ScheduleKind = Literal["static", "dynamic", "guided", "worksteal"]


@dataclass(frozen=True)
class ScheduleSpec:
    """An OpenMP ``schedule(kind[, chunk])`` clause."""

    kind: ScheduleKind = "static"
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("static", "dynamic", "guided", "worksteal"):
            raise ConfigurationError(f"unknown schedule kind {self.kind!r}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")

    def __str__(self) -> str:
        chunk = "" if self.chunk_size is None else f",{self.chunk_size}"
        return f"schedule({self.kind}{chunk})"


#: The clauses the paper actually uses.
APRIORI_SCHEDULE = ScheduleSpec("static", 1)
ECLAT_SCHEDULE = ScheduleSpec("dynamic", 1)

#: Our extension: deque-based work stealing with single-task granularity.
WORKSTEAL_SCHEDULE = ScheduleSpec("worksteal", 1)


def static_assignment(
    n_iterations: int, n_threads: int, chunk_size: int | None = None
) -> np.ndarray:
    """Thread owning each iteration under ``schedule(static[, chunk])``.

    Without a chunk size, iterations split into ``n_threads`` contiguous
    blocks of near-equal size (leading blocks one larger, the libgomp rule).
    With a chunk size, fixed-size chunks are dealt round-robin.
    """
    if n_iterations < 0 or n_threads < 1:
        raise ConfigurationError("need n_iterations >= 0 and n_threads >= 1")
    if n_iterations == 0:
        return np.empty(0, dtype=np.int64)
    if chunk_size is None:
        # Threads [0, extra) own (base+1)-size blocks, the rest base-size.
        base = n_iterations // n_threads
        extra = n_iterations % n_threads
        sizes = np.full(n_threads, base, dtype=np.int64)
        sizes[:extra] += 1
        return np.repeat(np.arange(n_threads, dtype=np.int64), sizes)
    iters = np.arange(n_iterations, dtype=np.int64)
    return (iters // chunk_size) % n_threads


def chunk_boundaries(
    n_iterations: int, n_threads: int, spec: ScheduleSpec
) -> list[tuple[int, int]]:
    """Chunks ``[start, end)`` in dispatch order for any schedule kind.

    * static (no chunk): one contiguous block per thread;
    * static/dynamic with chunk ``c``: fixed-size chunks in order;
    * guided: chunk ~ ``remaining / (2 * n_threads)``, exponentially
      shrinking, never below the clause chunk (default 1) except the last
      (the OpenMP rule; the divisor is implementation-defined and 2T is the
      common libgomp choice);
    * worksteal: fixed-size tasks like dynamic — with no clause chunk the
      size defaults to ``ceil(n / (8 * n_threads))`` so every thread sees
      ~8 stealable tasks (enough granularity for steal-half to balance,
      coarse enough to amortize the per-steal cost).  For worksteal the
      returned order is *seeding* order (dealt round-robin to deques), not
      execution order — execution order emerges from pops and steals.
    """
    if n_iterations == 0:
        return []
    if spec.kind == "worksteal":
        chunk = (
            spec.chunk_size if spec.chunk_size is not None
            else max(1, -(-n_iterations // (8 * n_threads)))
        )
        return [
            (s, min(s + chunk, n_iterations)) for s in range(0, n_iterations, chunk)
        ]
    if spec.kind == "static" and spec.chunk_size is None:
        assignment = static_assignment(n_iterations, n_threads)
        bounds: list[tuple[int, int]] = []
        start = 0
        for i in range(1, n_iterations + 1):
            if i == n_iterations or assignment[i] != assignment[start]:
                bounds.append((start, i))
                start = i
        return bounds
    if spec.kind in ("static", "dynamic"):
        chunk = spec.chunk_size if spec.chunk_size is not None else 1
        return [
            (s, min(s + chunk, n_iterations)) for s in range(0, n_iterations, chunk)
        ]
    # guided
    min_chunk = spec.chunk_size if spec.chunk_size is not None else 1
    bounds = []
    start = 0
    while start < n_iterations:
        remaining = n_iterations - start
        size = max(min_chunk, -(-remaining // (2 * n_threads)))
        size = min(size, remaining)
        bounds.append((start, start + size))
        start += size
    return bounds


def validate_assignment(assignment: np.ndarray, n_threads: int) -> None:
    """Raise if any iteration maps outside the team (test helper)."""
    if assignment.size == 0:
        return
    if assignment.min() < 0 or assignment.max() >= n_threads:
        raise ConfigurationError(
            f"assignment uses threads outside [0, {n_threads})"
        )
