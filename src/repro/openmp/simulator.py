"""Deterministic makespan simulation of one OpenMP parallel-for.

Given per-iteration durations (priced by :class:`repro.machine.CostModel`
from measured operation counts), this module replays the loop under a
:class:`ScheduleSpec` on a simulated thread team:

* **static** — ownership is fixed up front, so a thread's finish time is the
  sum of its iterations (plus nothing: static scheduling has no runtime
  dispatch cost);
* **dynamic / guided** — chunks are dispatched in order to the earliest
  available thread through a contended queue: each dequeue holds a global
  lock for ``dynamic_dequeue_cost`` seconds, which is what makes chunk-1
  dynamic scheduling expensive for tiny tasks on many threads;
* **worksteal** — chunks are dealt round-robin onto per-thread deques; a
  thread pops its own deque (LIFO, free — no shared lock) and steals half
  the fullest deque when empty, paying ``steal_attempt_cost`` per steal
  event.  Unlike dynamic, contention is charged only when stealing
  actually happens, so balanced loops run at static cost while skewed
  loops rebalance.  (Flat loops have no spawning; the nested task-tree
  variant is :mod:`repro.parallel.worksteal_sim`.)

The simulation is event-free list scheduling — exact for static, and the
standard greedy model for dynamic — so results are deterministic and fast
enough to sweep 1..1024 threads inside a benchmark.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError
from repro.machine.blacklight import BLACKLIGHT, MachineSpec
from repro.openmp.events import ChunkEvent
from repro.openmp.schedule import ScheduleSpec, chunk_boundaries, static_assignment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import TraceSink


@dataclass
class ParallelForOutcome:
    """Result of simulating one parallel loop."""

    makespan: float
    iteration_thread: np.ndarray
    thread_busy: np.ndarray
    n_chunks: int
    events: list[ChunkEvent] | None = None

    @property
    def total_busy(self) -> float:
        return float(self.thread_busy.sum())

    @property
    def imbalance(self) -> float:
        """max busy / mean busy - 1 (0 == perfectly balanced)."""
        mean = self.thread_busy.mean() if self.thread_busy.size else 0.0
        if mean == 0.0:
            return 0.0
        return float(self.thread_busy.max() / mean - 1.0)


def simulate_parallel_for(
    durations: np.ndarray,
    n_threads: int,
    schedule: ScheduleSpec,
    machine: MachineSpec = BLACKLIGHT,
    collect_events: bool = False,
    sink: "TraceSink | None" = None,
    region: str = "region",
    pid: int = 0,
    ts_offset: float = 0.0,
) -> ParallelForOutcome:
    """Replay a parallel-for and return its makespan and assignment.

    When ``sink`` is an enabled :class:`repro.obs.TraceSink`, every
    :class:`ChunkEvent` is also forwarded to it as one Chrome duration
    event — simulated thread ids become trace tids, chunk execution
    windows become "X" events offset by ``ts_offset`` simulated seconds,
    and ``pid`` groups the region under one trace process (callers use
    the simulated thread count).
    """
    durations = np.asarray(durations, dtype=np.float64)
    if durations.ndim != 1:
        raise SimulationError("durations must be a 1-D array")
    if durations.size and durations.min() < 0:
        raise SimulationError("durations must be non-negative")
    if n_threads < 1:
        raise SimulationError("n_threads must be >= 1")

    tracing = sink is not None and sink.enabled
    collect = collect_events or tracing
    n = durations.size
    if n == 0:
        return ParallelForOutcome(
            makespan=0.0,
            iteration_thread=np.empty(0, np.int64),
            thread_busy=np.zeros(n_threads),
            n_chunks=0,
            events=[] if collect_events else None,
        )

    if schedule.kind == "static":
        outcome = _simulate_static(durations, n_threads, schedule, collect)
    elif schedule.kind == "worksteal":
        outcome = _simulate_worksteal(durations, n_threads, schedule, machine, collect)
    else:
        outcome = _simulate_queued(durations, n_threads, schedule, machine, collect)
    if tracing:
        assert sink is not None and outcome.events is not None
        emit_chunk_events(sink, outcome.events, region, pid, ts_offset)
        if not collect_events:
            outcome.events = None
    return outcome


def emit_chunk_events(
    sink: "TraceSink",
    events: list[ChunkEvent],
    region: str,
    pid: int,
    ts_offset: float = 0.0,
) -> None:
    """Forward simulator :class:`ChunkEvent` records into a trace sink.

    Each chunk becomes one "X" event named after its region, carrying the
    iteration range in ``args`` so traces can be cross-checked against the
    raw chunk trace (see ``repro.openmp.events.check_trace``).
    """
    us = 1e6  # simulated seconds -> trace microseconds
    for ev in events:
        sink.duration(
            region,
            (ts_offset + ev.start_time) * us,
            ev.duration * us,
            pid=pid,
            tid=ev.thread,
            cat="chunk",
            args={"start": ev.start_iteration, "end": ev.end_iteration},
        )


def _simulate_static(
    durations: np.ndarray,
    n_threads: int,
    schedule: ScheduleSpec,
    collect_events: bool,
) -> ParallelForOutcome:
    assignment = static_assignment(durations.size, n_threads, schedule.chunk_size)
    thread_busy = np.bincount(
        assignment, weights=durations, minlength=n_threads
    ).astype(np.float64)

    events: list[ChunkEvent] | None = None
    n_chunks = len(chunk_boundaries(durations.size, n_threads, schedule))
    if collect_events:
        events = []
        clock = np.zeros(n_threads, dtype=np.float64)
        for start, end in chunk_boundaries(durations.size, n_threads, schedule):
            thread = int(assignment[start])
            begin = clock[thread]
            finish = begin + float(durations[start:end].sum())
            clock[thread] = finish
            events.append(ChunkEvent(thread, start, end, begin, finish))

    return ParallelForOutcome(
        makespan=float(thread_busy.max()),
        iteration_thread=assignment,
        thread_busy=thread_busy,
        n_chunks=n_chunks,
        events=events,
    )


def _simulate_worksteal(
    durations: np.ndarray,
    n_threads: int,
    schedule: ScheduleSpec,
    machine: MachineSpec,
    collect_events: bool,
) -> ParallelForOutcome:
    """Flat-loop work stealing: round-robin deques, LIFO pop, steal-half.

    Event-driven: when a thread's deque empties it steals ceil(half) of
    the currently fullest deque (FIFO end), paying ``steal_attempt_cost``
    once per steal event; with nothing left to steal it retires (flat
    loops never spawn, so an empty system stays empty).  The greedy
    earliest-finishing-thread order makes the replay deterministic.
    """
    bounds = chunk_boundaries(durations.size, n_threads, schedule)
    # Per-thread deques of chunk indices: index -1 is the LIFO top.
    deques: list[list[int]] = [[] for _ in range(n_threads)]
    for position, _ in enumerate(bounds):
        deques[position % n_threads].append(position)

    heap: list[tuple[float, int]] = [(0.0, t) for t in range(n_threads)]
    heapq.heapify(heap)
    assignment = np.empty(durations.size, dtype=np.int64)
    thread_busy = np.zeros(n_threads, dtype=np.float64)
    events: list[ChunkEvent] | None = [] if collect_events else None
    makespan = 0.0

    while heap:
        available, thread = heapq.heappop(heap)
        own = deques[thread]
        overhead = 0.0
        if own:
            chunk_id = own.pop()
        else:
            victim = max(
                (t for t in range(n_threads) if deques[t]),
                key=lambda t: len(deques[t]),
                default=None,
            )
            if victim is None:
                makespan = max(makespan, available)
                continue  # nothing anywhere: this thread retires
            pending = deques[victim]
            count = (len(pending) + 1) // 2
            batch = [pending.pop(0) for _ in range(count)]
            chunk_id = batch[0]
            own.extend(reversed(batch[1:]))
            overhead = machine.steal_attempt_cost
        start, end = bounds[chunk_id]
        work = float(durations[start:end].sum())
        begin = available + overhead
        finish = begin + work
        assignment[start:end] = thread
        thread_busy[thread] += work + overhead
        makespan = max(makespan, finish)
        heapq.heappush(heap, (finish, thread))
        if events is not None:
            events.append(ChunkEvent(thread, start, end, begin, finish))

    return ParallelForOutcome(
        makespan=float(makespan),
        iteration_thread=assignment,
        thread_busy=thread_busy,
        n_chunks=len(bounds),
        events=events,
    )


def _simulate_queued(
    durations: np.ndarray,
    n_threads: int,
    schedule: ScheduleSpec,
    machine: MachineSpec,
    collect_events: bool,
) -> ParallelForOutcome:
    """Dynamic/guided: greedy dispatch through a contended queue lock."""
    bounds = chunk_boundaries(durations.size, n_threads, schedule)
    dequeue = machine.dynamic_dequeue_cost

    heap: list[tuple[float, int]] = [(0.0, t) for t in range(n_threads)]
    heapq.heapify(heap)
    lock_free = 0.0
    assignment = np.empty(durations.size, dtype=np.int64)
    thread_busy = np.zeros(n_threads, dtype=np.float64)
    events: list[ChunkEvent] | None = [] if collect_events else None

    for start, end in bounds:
        available, thread = heapq.heappop(heap)
        # Grab the queue lock: wait for whoever holds it, pay the dequeue.
        acquire = max(available, lock_free)
        begin = acquire + dequeue
        lock_free = begin
        work = float(durations[start:end].sum())
        finish = begin + work
        assignment[start:end] = thread
        thread_busy[thread] += work + dequeue  # lock *wait* time is idle, not busy
        heapq.heappush(heap, (finish, thread))
        if events is not None:
            events.append(ChunkEvent(thread, start, end, begin, finish))

    makespan = max(t for t, _ in heap)
    return ParallelForOutcome(
        makespan=float(makespan),
        iteration_thread=assignment,
        thread_busy=thread_busy,
        n_chunks=len(bounds),
        events=events,
    )
