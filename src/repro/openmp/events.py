"""Execution-trace events emitted by the parallel-for simulator.

The simulator can optionally record a :class:`ChunkEvent` per dispatched
chunk.  Tests use the trace to check scheduling invariants (every iteration
executed exactly once, threads never overlap themselves, dynamic dispatch
order respects availability); examples use it to visualize load balance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


@dataclass(frozen=True, slots=True)
class ChunkEvent:
    """One chunk's execution record."""

    thread: int
    start_iteration: int
    end_iteration: int  # exclusive
    start_time: float
    end_time: float

    @property
    def n_iterations(self) -> int:
        return self.end_iteration - self.start_iteration

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


def check_trace(events: list[ChunkEvent], n_iterations: int) -> None:
    """Validate a trace: full coverage, no overlap per thread.

    Raises :class:`SimulationError` on the first violation; used as a
    self-check by tests and available to callers who extend the simulator.
    """
    covered = np.zeros(n_iterations, dtype=np.int64)
    for ev in events:
        if ev.start_iteration < 0 or ev.end_iteration > n_iterations:
            raise SimulationError(f"chunk {ev} outside the iteration space")
        if ev.end_time < ev.start_time:
            raise SimulationError(f"chunk {ev} ends before it starts")
        covered[ev.start_iteration : ev.end_iteration] += 1
    missing = np.nonzero(covered == 0)[0]
    if missing.size:
        raise SimulationError(f"iterations never executed: {missing[:10].tolist()}")
    doubled = np.nonzero(covered > 1)[0]
    if doubled.size:
        raise SimulationError(f"iterations executed twice: {doubled[:10].tolist()}")

    by_thread: dict[int, list[ChunkEvent]] = {}
    for ev in events:
        by_thread.setdefault(ev.thread, []).append(ev)
    for thread, evs in by_thread.items():
        evs.sort(key=lambda e: e.start_time)
        for prev, cur in zip(evs, evs[1:]):
            if cur.start_time < prev.end_time - 1e-12:
                raise SimulationError(
                    f"thread {thread} overlaps itself: {prev} then {cur}"
                )


def load_balance_summary(events: list[ChunkEvent], n_threads: int) -> dict[str, float]:
    """Busy-time statistics across threads (imbalance diagnostics).

    ``idle_fraction`` is the share of thread-seconds spent idle relative to
    the trace makespan (latest chunk end time): 0 means every thread was
    busy the whole region, 1 - 1/T is a fully serial region on T threads.
    """
    busy = np.zeros(n_threads, dtype=np.float64)
    for ev in events:
        busy[ev.thread] += ev.duration
    if busy.max() == 0.0:
        return {
            "max_busy": 0.0,
            "min_busy": 0.0,
            "mean_busy": 0.0,
            "imbalance": 0.0,
            "idle_fraction": 0.0,
        }
    makespan = max(ev.end_time for ev in events)
    return {
        "max_busy": float(busy.max()),
        "min_busy": float(busy.min()),
        "mean_busy": float(busy.mean()),
        "imbalance": float(busy.max() / busy.mean() - 1.0),
        "idle_fraction": (
            float(1.0 - busy.sum() / (n_threads * makespan)) if makespan else 0.0
        ),
    }
