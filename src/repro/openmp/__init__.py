"""OpenMP-style loop scheduling and parallel-region simulation."""

from repro.openmp.schedule import (
    APRIORI_SCHEDULE,
    ECLAT_SCHEDULE,
    WORKSTEAL_SCHEDULE,
    ScheduleSpec,
    chunk_boundaries,
    static_assignment,
)
from repro.openmp.simulator import ParallelForOutcome, simulate_parallel_for
from repro.openmp.team import RegionResult, ThreadTeam
from repro.openmp.events import ChunkEvent, check_trace, load_balance_summary

__all__ = [
    "ScheduleSpec",
    "APRIORI_SCHEDULE",
    "ECLAT_SCHEDULE",
    "WORKSTEAL_SCHEDULE",
    "static_assignment",
    "chunk_boundaries",
    "ParallelForOutcome",
    "simulate_parallel_for",
    "ThreadTeam",
    "RegionResult",
    "ChunkEvent",
    "check_trace",
    "load_balance_summary",
]
