"""Serial execution backend — the reference every other backend matches.

The implementation now lives in the engine (``repro.mine(...,
backend="serial")``); :func:`mine_serial` remains as a deprecated,
signature-compatible shim.
"""

from __future__ import annotations

import warnings

from repro.core.result import MiningResult
from repro.datasets.transaction_db import TransactionDatabase


def mine_serial(
    db: TransactionDatabase,
    min_support: float | int,
    algorithm: str = "eclat",
    representation: str = "tidset",
    **kwargs,
) -> MiningResult:
    """Deprecated alias for ``repro.mine(..., backend="serial")``."""
    warnings.warn(
        "mine_serial() is deprecated; use repro.mine(db, algorithm=..., "
        "representation=..., backend='serial', min_support=...) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.engine import mine

    return mine(
        db,
        algorithm=algorithm,
        representation=representation,
        backend="serial",
        min_support=min_support,
        **kwargs,
    )
