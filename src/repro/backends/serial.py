"""Serial execution backend — the reference every other backend matches."""

from __future__ import annotations

from repro.core.apriori import apriori
from repro.core.eclat import eclat
from repro.core.result import MiningResult
from repro.datasets.transaction_db import TransactionDatabase
from repro.errors import ConfigurationError

_ALGORITHMS = {"apriori": apriori, "eclat": eclat}


def mine_serial(
    db: TransactionDatabase,
    min_support: float | int,
    algorithm: str = "eclat",
    representation: str = "tidset",
    **kwargs,
) -> MiningResult:
    """Mine on the calling thread with the requested algorithm/format."""
    try:
        fn = _ALGORITHMS[algorithm]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(_ALGORITHMS)}"
        ) from None
    return fn(db, min_support, representation, **kwargs)
